#!/usr/bin/env python3
"""Docstring-coverage lint for the plan and core layers.

Walks ``src/repro/plan``, ``src/repro/core`` and ``src/repro/cache`` and
checks that public
functions, methods, and classes (names not starting with ``_``, excluding
dunders except ``__init__`` which is exempt — the class docstring covers
construction) carry docstrings. Fails when coverage drops below
``THRESHOLD``, listing every undocumented definition so the failure is
actionable.

Pure AST analysis — nothing is imported, so the lint runs without
``PYTHONPATH`` and without executing package code.

Usage: python tools/check_docstrings.py [repo_root]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

PACKAGES = ("src/repro/plan", "src/repro/core", "src/repro/cache")
THRESHOLD = 0.95


def is_public(name: str) -> bool:
    return not name.startswith("_")


def public_definitions(tree: ast.Module):
    """Yield (qualified_name, node) for public defs, classes, and methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if is_public(node.name):
                yield node.name, node
        elif isinstance(node, ast.ClassDef):
            if not is_public(node.name):
                continue
            yield node.name, node
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if is_public(member.name):
                        yield f"{node.name}.{member.name}", member


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    total, documented, missing = 0, 0, []
    for package in PACKAGES:
        for path in sorted((root / package).rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            relative = path.relative_to(root)
            if ast.get_docstring(tree) is None:
                missing.append(f"{relative}: module docstring")
                total += 1
            else:
                total += 1
                documented += 1
            for name, node in public_definitions(tree):
                total += 1
                if ast.get_docstring(node) is None:
                    missing.append(f"{relative}:{node.lineno}: {name}")
                else:
                    documented += 1
    coverage = documented / total if total else 1.0
    status = "ok" if coverage >= THRESHOLD else "FAIL"
    print(
        f"docstrings {status}: {documented}/{total} public definitions "
        f"documented ({coverage:.1%}, threshold {THRESHOLD:.0%}) "
        f"across {', '.join(PACKAGES)}"
    )
    if coverage < THRESHOLD:
        print("undocumented public definitions:", file=sys.stderr)
        for entry in missing:
            print(f"  {entry}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
