#!/usr/bin/env python3
"""Validate a ``bench_e22_resilience.py`` JSON trajectory entry.

Reads one JSON document from stdin (or a file given as argv[1]) and checks
the chaos-smoke contract CI relies on:

* **containment** — zero crashed (unhandled-exception) requests in every
  scenario;
* **availability** — the hard-down scenario stayed above the bench's own
  acceptance floor, and strictly above the legacy (no-resilience) arm;
* **breaker lifecycle** — the flap-recover-flap scenario's transition log
  shows the breaker opening, half-opening after cooldown, closing on the
  recovery window, and *re*-opening on the second flap;
* **semantics** — every scenario that degraded also ran its differential
  check against the statically demoted collection.

Exit 0 when well-formed, 1 with a report of every violation otherwise.

Usage: python tools/check_chaos.py BENCH_resilience.json
"""

from __future__ import annotations

import json
import sys
from typing import List


def validate(payload: object) -> List[str]:
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected object"]
    if payload.get("bench") != "e22_resilience":
        problems.append(f"bench is {payload.get('bench')!r}, "
                        "expected 'e22_resilience'")
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        return problems + ["no scenarios section"]

    for name, outcome in scenarios.items():
        crashed = outcome.get("crashed_requests")
        if crashed != 0:
            problems.append(f"{name}: {crashed} crashed requests (want 0)")
        terminal = sum(
            outcome.get(status, 0)
            for status in ("ok", "timeout", "rejected", "error")
        )
        if terminal != outcome.get("requests"):
            problems.append(
                f"{name}: {terminal} terminal statuses for "
                f"{outcome.get('requests')} requests"
            )
        if outcome.get("degraded", 0) and not outcome.get(
            "differential_checks", 0
        ):
            problems.append(f"{name}: degraded but never checked against "
                            "the demoted semantics")

    acceptance = payload.get("acceptance", {})
    floor = acceptance.get("availability_floor", 0.95)
    hard = scenarios.get("hard_down", {}).get("availability", 0.0)
    legacy = scenarios.get("hard_down_legacy", {}).get("availability", 1.0)
    if hard < floor:
        problems.append(f"hard_down availability {hard} < floor {floor}")
    if hard <= legacy:
        problems.append(
            f"resilient availability {hard} not above legacy {legacy}"
        )

    flap = scenarios.get("flap_recover_flap", {}).get("transitions", {})
    for edge, minimum in (
        ("opened", 2), ("half_opened", 1), ("closed", 1), ("reopened", 1),
    ):
        if flap.get(edge, 0) < minimum:
            problems.append(
                f"flap_recover_flap: {edge} = {flap.get(edge, 0)} < "
                f"{minimum} (breaker lifecycle incomplete)"
            )
    if not acceptance.get("passed", False):
        problems.append(
            f"bench did not self-accept: {acceptance.get('failures')}"
        )
    return problems


def main() -> int:
    raw = (
        open(sys.argv[1]).read() if len(sys.argv) > 1 else sys.stdin.read()
    )
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        print(f"invalid JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate(payload)
    if problems:
        for problem in problems:
            print(f"chaos-smoke violation: {problem}", file=sys.stderr)
        return 1
    print("chaos smoke OK: zero crashes, availability floor met, "
          "breaker lifecycle complete")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
