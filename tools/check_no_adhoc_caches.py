#!/usr/bin/env python3
"""Ban new ad-hoc module-level cache dicts outside ``repro.cache``.

Every shared cache must be an ``LRUMemo`` enrolled in the process
``CacheRegistry`` (see ``docs/caching.md``): that is what puts it under
the global byte budget, the invalidation bus, and the uniform stats tree.
Before the cache runtime existed the repo accumulated seven separate
hand-rolled ``OrderedDict`` caches, each with its own eviction constant
and its own (sometimes absent) locking — this lint keeps that from
happening again.

Mechanics: AST-parse every ``src/repro/**/*.py`` outside ``repro/cache/``
and flag module-level (top-level or ``if``-nested) assignments whose value
is a ``dict``/``OrderedDict`` display or constructor call. Genuinely
static tables (operator maps, command dispatch) are not caches; waive
them with an explicit trailing comment on the assignment's first line::

    _OPS = {  # adhoc-cache-ok: static operator table, not a cache

The waiver must carry a reason after the colon. Exit 0 when clean, 1 with
one line per violation otherwise.

Usage: python tools/check_no_adhoc_caches.py [ROOT]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

WAIVER = "adhoc-cache-ok:"

#: Constructor names whose module-level result we treat as a cache store.
BANNED_CALLS = {"dict", "OrderedDict", "defaultdict"}


def module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level statements, descending into module-level ``if`` blocks
    (e.g. ``if TYPE_CHECKING:`` or version guards) but not into functions
    or classes — instance and local dicts are some object's business."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.If):
            stack.extend(node.body)
            stack.extend(node.orelse)
        else:
            yield node


def is_dict_value(value: ast.expr) -> bool:
    if isinstance(value, ast.Dict):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in BANNED_CALLS
    return False


def check_file(path: Path) -> List[Tuple[int, str]]:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [(exc.lineno or 0, f"unparseable: {exc.msg}")]
    problems: List[Tuple[int, str]] = []
    for node in module_level_statements(tree):
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not is_dict_value(value):
            continue
        first_line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        if WAIVER in first_line:
            reason = first_line.split(WAIVER, 1)[1].strip()
            if reason:
                continue
            problems.append(
                (node.lineno, f"'{WAIVER}' waiver needs a reason after the colon")
            )
            continue
        names = ", ".join(
            getattr(t, "id", ast.dump(t)) for t in targets
        )
        problems.append(
            (
                node.lineno,
                f"module-level dict {names!r}: use an enrolled "
                f"repro.cache.LRUMemo, or waive a genuinely static table "
                f"with '# {WAIVER} <reason>'",
            )
        )
    return problems


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path("src/repro")
    cache_pkg = root / "cache"
    failed = False
    for path in sorted(root.rglob("*.py")):
        if cache_pkg in path.parents or path.parent == cache_pkg:
            continue  # the runtime itself is where dict stores belong
        for lineno, message in check_file(path):
            print(f"{path}:{lineno}: {message}")
            failed = True
    if failed:
        return 1
    print("no ad-hoc module-level caches found")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
