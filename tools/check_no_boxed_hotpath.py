#!/usr/bin/env python3
"""Fail when an interned hot-path module constructs boxed objects.

The ``repro.core`` refactor's contract is that the hot modules below speak
term IDs end to end: no boxed :class:`~repro.model.terms.Constant` is
constructed and no ``frozenset(...)`` of objects is materialized on a
counting, embedding, or canonicalization path. This lint greps those modules
for the two constructions and fails CI on any hit, so a future edit cannot
quietly reintroduce per-candidate boxing.

A line may opt out with a trailing ``# boxed-ok`` comment — for genuinely
cold boundary code living in a hot module, or for a ``frozenset`` that holds
plain ints (the interned representation itself, e.g. the ID backbone of
``IFactSet``). The waiver is part of the diff and therefore reviewable.

The ``repro.plan`` refactor adds a second contract: modules whose query
evaluation was routed through the compiled-plan pipeline must not drift back
to calling a pre-plan evaluator directly. ``ROUTED_MODULES`` are checked for
calls to ``evaluate_backtracking`` / ``evaluate_naive`` /
``evaluate_indexed`` and for imports from ``repro.queries.evaluation`` —
the oracles stay available everywhere else (tests, benchmarks, the
rewriting executor's witness path, which carries an explicit waiver).

Usage: python tools/check_no_boxed_hotpath.py [repo_root]
Exit 0 when clean, 1 with a report of every violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Modules that must stay free of boxed construction.
HOT_MODULES = (
    "src/repro/core/symbols.py",
    "src/repro/core/iatoms.py",
    "src/repro/core/factset.py",
    "src/repro/core/views.py",
    "src/repro/tableaux/core.py",
    "src/repro/consistency/coresearch.py",
    "src/repro/confidence/engine/kernel.py",
    "src/repro/confidence/engine/memo.py",
)

#: Boxed constructions banned on hot paths. ``Constant(`` builds a boxed
#: term; ``frozenset(`` materializes an object set where a bitmask, an int
#: set, or an IFactSet belongs.
BANNED = re.compile(r"\b(Constant|frozenset)\(")

#: Modules whose query answering is routed through ``repro.plan``; a direct
#: call to a pre-plan evaluator here silently bypasses the plan cache and
#: the shared data-source indexes.
ROUTED_MODULES = (
    "src/repro/confidence/answers.py",
    "src/repro/confidence/worlds.py",
    "src/repro/service/scheduler.py",
    "src/repro/service/server.py",
    "src/repro/rewriting/executor.py",
    "src/repro/tableaux/query_answers.py",
)

#: Direct evaluator use banned in routed modules: calling an oracle
#: evaluator, or importing from the oracle module at all.
BANNED_ROUTED = re.compile(
    r"\b(evaluate_backtracking|evaluate_naive|evaluate_indexed)\s*\("
    r"|from repro\.queries\.evaluation import"
    r"|import repro\.queries\.evaluation\b"
)

WAIVER = "# boxed-ok"


def check_module(path: Path, banned: re.Pattern = BANNED) -> list:
    problems = []
    in_docstring = False
    delimiter = None
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        stripped = line.strip()
        # Track triple-quoted strings so prose mentioning the banned names
        # (docstrings explaining the contract) does not trip the lint.
        if in_docstring:
            if delimiter in stripped:
                in_docstring = False
            continue
        one_line_string = False
        for quote in ('"""', "'''"):
            if stripped.startswith(quote):
                if quote in stripped[len(quote):]:
                    one_line_string = True
                else:
                    in_docstring = True
                    delimiter = quote
                break
        if in_docstring or one_line_string:
            continue
        code = line.split("#", 1)[0]
        if banned.search(code) and WAIVER not in line:
            problems.append(f"{path}:{number}: {stripped}")
    return problems


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    problems = []
    missing = []
    for relative in HOT_MODULES:
        path = root / relative
        if not path.exists():
            missing.append(f"hot module missing: {relative}")
            continue
        problems.extend(check_module(path))
    for relative in ROUTED_MODULES:
        path = root / relative
        if not path.exists():
            missing.append(f"routed module missing: {relative}")
            continue
        problems.extend(check_module(path, banned=BANNED_ROUTED))
    for problem in missing + problems:
        print(problem)
    if problems or missing:
        print(f"\n{len(missing + problems)} hot-path violation(s).")
        return 1
    print(
        f"{len(HOT_MODULES)} hot modules clean (no boxed construction); "
        f"{len(ROUTED_MODULES)} routed modules clean (no direct evaluator use)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
