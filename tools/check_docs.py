#!/usr/bin/env python3
"""Fail on dead references in README.md and docs/*.md.

Three checks over every markdown file:

* **links** — every relative ``[text](target)`` resolves; anchors are
  checked against the target file's headings;
* **module paths** — every ``repro.*`` dotted path names an importable
  module, or a module attribute reachable from one (so renamed or deleted
  code fails the docs that still mention it);
* **CLI flags** — every ``--flag`` token is a real option of the
  ``python -m repro`` parser, of a benchmark/tool script's parser, or on
  the explicit third-party allowlist (pytest flags the docs mention);
* **flag coverage** (the reverse direction) — every option of the
  ``python -m repro`` parser is mentioned somewhere in ``docs/cli.md``, so
  a new flag (``--shards``, say) cannot ship undocumented.

The CI docs job runs this script without ``PYTHONPATH=src``, so the
script puts the source tree on ``sys.path`` itself before importing.

Usage: python tools/check_docs.py [repo_root]
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)
MODULE_PATH = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
CLI_FLAG = re.compile(r"(?<![\w-])--[a-z][a-z0-9]*(?:-[a-z0-9]+)*")
ADD_ARGUMENT = re.compile(r"add_argument\(\s*[\"'](--[a-z][a-z0-9-]*)[\"']")

#: Flags documented for third-party tools (pytest-benchmark), not ours.
FLAG_ALLOWLIST = {"--benchmark-only"}


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of a heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    return {slugify(h) for h in HEADING.findall(text)}


def check_links(path: Path) -> list:
    problems = []
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK.finditer(text):
        target = match.group(1)
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        target, _, anchor = target.partition("#")
        if not target:  # pure in-page anchor
            if anchor and slugify(anchor) not in anchors_of(path):
                problems.append(f"{path}: dead anchor #{anchor}")
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{path}: dead link {target}")
        elif anchor and resolved.suffix == ".md":
            if slugify(anchor) not in anchors_of(resolved):
                problems.append(f"{path}: dead anchor {target}#{anchor}")
    return problems


def resolvable(dotted: str) -> bool:
    """Does *dotted* name a module, or an attribute chain on one?"""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attribute in parts[cut:]:
                obj = getattr(obj, attribute)
        except AttributeError:
            return False
        return True
    return False


def check_module_paths(path: Path) -> list:
    problems = []
    text = path.read_text(encoding="utf-8")
    for dotted in sorted(set(MODULE_PATH.findall(text))):
        if not resolvable(dotted):
            problems.append(f"{path}: unresolvable module path {dotted}")
    return problems


def known_cli_flags(root: Path) -> set:
    """Every option string of the repro CLI plus local script parsers."""
    from repro.cli import build_parser  # src/ is on sys.path by now

    flags = set(FLAG_ALLOWLIST)
    pending = [build_parser()]
    while pending:
        parser = pending.pop()
        for action in parser._actions:
            flags.update(
                s for s in action.option_strings if s.startswith("--")
            )
            choices = getattr(action, "choices", None)
            if choices and all(
                hasattr(sub, "_actions") for sub in dict(choices or {}).values()
            ):
                pending.extend(choices.values())
    for script_dir in ("benchmarks", "tools"):
        for script in sorted((root / script_dir).glob("*.py")):
            flags.update(ADD_ARGUMENT.findall(script.read_text("utf-8")))
    return flags


def check_cli_flags(path: Path, flags: set) -> list:
    problems = []
    text = path.read_text(encoding="utf-8")
    for flag in sorted(set(CLI_FLAG.findall(text))):
        if flag not in flags:
            problems.append(f"{path}: unknown CLI flag {flag}")
    return problems


def repro_parser_flags() -> set:
    """Option strings of the ``python -m repro`` parser alone (no scripts)."""
    from repro.cli import build_parser

    flags = set()
    pending = [build_parser()]
    while pending:
        parser = pending.pop()
        for action in parser._actions:
            flags.update(
                s for s in action.option_strings if s.startswith("--")
            )
            choices = getattr(action, "choices", None)
            if choices and all(
                hasattr(sub, "_actions") for sub in dict(choices or {}).values()
            ):
                pending.extend(choices.values())
    return flags


def check_flag_coverage(root: Path) -> list:
    """Every repro CLI flag must appear in ``docs/cli.md``."""
    cli_doc = root / "docs" / "cli.md"
    if not cli_doc.exists():
        return [f"{cli_doc}: missing (CLI flag coverage cannot be checked)"]
    documented = set(CLI_FLAG.findall(cli_doc.read_text(encoding="utf-8")))
    return [
        f"{cli_doc}: undocumented CLI flag {flag}"
        for flag in sorted(repro_parser_flags() - documented - {"--help"})
    ]


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    src = root / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    flags = known_cli_flags(root)
    problems = []
    for path in files:
        if path.exists():
            problems.extend(check_links(path))
            problems.extend(check_module_paths(path))
            problems.extend(check_cli_flags(path, flags))
    problems.extend(check_flag_coverage(root))
    if problems:
        print("dead documentation references:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(
        f"docs ok: {len(files)} files — links, repro.* module paths, "
        f"and CLI flags all resolve ({len(flags)} known flags)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
