#!/usr/bin/env python3
"""Fail on dead internal links in README.md and docs/*.md.

Checks every relative markdown link ``[text](target)`` — external URLs and
pure in-page anchors are skipped; anchors on relative targets are checked
against the target file's headings. Exit 0 when clean, 1 with a report of
every dead link otherwise.

Usage: python tools/check_docs.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of a heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    return {slugify(h) for h in HEADING.findall(text)}


def check_file(path: Path) -> list:
    problems = []
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK.finditer(text):
        target = match.group(1)
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        target, _, anchor = target.partition("#")
        if not target:  # pure in-page anchor
            if anchor and slugify(anchor) not in anchors_of(path):
                problems.append(f"{path}: dead anchor #{anchor}")
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{path}: dead link {target}")
        elif anchor and resolved.suffix == ".md":
            if slugify(anchor) not in anchors_of(resolved):
                problems.append(f"{path}: dead anchor {target}#{anchor}")
    return problems


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    problems = []
    for path in files:
        if path.exists():
            problems.extend(check_file(path))
    if problems:
        print("dead documentation links:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"docs ok: {len(files)} files, no dead links")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
