#!/usr/bin/env python3
"""Validate a ``python -m repro serve --json`` observability snapshot.

Reads one JSON document from stdin (or a file given as argv[1]) and checks
the scrape contract that CI's service smoke step relies on: the four
top-level sections exist, the registry block is sane, request counters
balance (every submitted request reached exactly one terminal status), and
every histogram carries the percentile fields. Exit 0 when well-formed,
1 with a report of every violation otherwise.

Usage: python -m repro serve FILE --domain a,b --json | python tools/check_service_snapshot.py
"""

from __future__ import annotations

import json
import sys
from typing import List

TOP_LEVEL = {"registry", "metrics", "gateway", "tracing"}
METRIC_KINDS = {"counters", "gauges", "histograms"}
HISTOGRAM_FIELDS = {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"}
TERMINAL = ("ok", "timeout", "rejected", "error")


def validate(snapshot: object) -> List[str]:
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return [f"snapshot is {type(snapshot).__name__}, expected object"]
    missing = TOP_LEVEL - set(snapshot)
    if missing:
        problems.append(f"missing top-level sections: {sorted(missing)}")
        return problems

    registry = snapshot["registry"]
    for key in ("version", "sources", "domain_size", "retained_versions"):
        if key not in registry:
            problems.append(f"registry lacks {key!r}")
    if isinstance(registry.get("version"), int) and registry["version"] < 0:
        problems.append(f"registry version {registry['version']} is negative")

    metrics = snapshot["metrics"]
    missing_kinds = METRIC_KINDS - set(metrics)
    if missing_kinds:
        problems.append(f"metrics lacks {sorted(missing_kinds)}")
        return problems

    counters = metrics["counters"]
    submitted = counters.get("requests_submitted", 0)
    resolved = sum(counters.get(f"responses_{s}", 0) for s in TERMINAL)
    if submitted != resolved:
        problems.append(
            f"{submitted} requests submitted but {resolved} resolved: "
            "a request vanished without a terminal status"
        )
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            problems.append(f"counter {name!r} is {value!r}, expected int >= 0")

    for name, histogram in metrics["histograms"].items():
        missing_fields = HISTOGRAM_FIELDS - set(histogram)
        if missing_fields:
            problems.append(
                f"histogram {name!r} lacks {sorted(missing_fields)}"
            )

    tracing = snapshot["tracing"]
    for key in ("spans_started", "spans_dropped", "recent_spans"):
        if not isinstance(tracing.get(key), int):
            problems.append(f"tracing.{key} is {tracing.get(key)!r}")

    if "reads" not in snapshot["gateway"]:
        problems.append("gateway lacks 'reads'")

    shard = snapshot.get("shard")
    if isinstance(shard, dict):
        shards = shard.get("shards")
        if not isinstance(shards, int) or shards < 1:
            problems.append(f"shard.shards is {shards!r}, expected int >= 1")
        for name, value in (shard.get("counters") or {}).items():
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"shard counter {name!r} is {value!r}, expected int >= 0"
                )
    elif shard is not None:
        problems.append(f"shard section is {type(shard).__name__}, expected object")

    cache = snapshot.get("cache")
    if isinstance(cache, dict):
        if not isinstance(cache.get("caches"), dict):
            problems.append("cache section lacks a 'caches' object")
        for counter in ("hits", "misses", "evictions", "invalidations", "bytes"):
            value = cache.get(counter)
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"cache.{counter} is {value!r}, expected int >= 0"
                )
        for name, leaf in (cache.get("caches") or {}).items():
            if not isinstance(leaf, dict) or "hits" not in leaf:
                problems.append(f"cache leaf {name!r} lacks 'hits'")
    elif cache is not None:
        problems.append(f"cache section is {type(cache).__name__}, expected object")

    resilience = snapshot.get("resilience")
    if isinstance(resilience, dict):
        sources = resilience.get("sources")
        if not isinstance(sources, dict):
            problems.append("resilience section lacks a 'sources' object")
        for name, breaker in (sources or {}).items():
            if breaker.get("state") not in ("closed", "open", "half_open"):
                problems.append(
                    f"breaker {name!r} state is {breaker.get('state')!r}"
                )
            for field in ("samples", "failures", "successes", "opens"):
                value = breaker.get(field)
                if not isinstance(value, int) or value < 0:
                    problems.append(
                        f"breaker {name!r}.{field} is {value!r}, "
                        "expected int >= 0"
                    )
        for transition in resilience.get("transitions", ()):
            if not {"source", "from", "to", "at"} <= set(transition):
                problems.append(f"malformed breaker transition {transition!r}")
    elif resilience is not None:
        problems.append(
            f"resilience section is {type(resilience).__name__}, "
            "expected object"
        )
    return problems


def main(argv: List[str]) -> int:
    if len(argv) > 1:
        with open(argv[1], "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    try:
        snapshot = json.loads(text)
    except json.JSONDecodeError as exc:
        print(f"snapshot is not valid JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate(snapshot)
    if problems:
        for problem in problems:
            print(f"malformed snapshot: {problem}", file=sys.stderr)
        return 1
    counters = snapshot["metrics"]["counters"]
    print(
        "snapshot well-formed: "
        f"v{snapshot['registry']['version']}, "
        f"{counters.get('requests_submitted', 0)} requests, "
        f"{counters.get('engine_calls', 0)} engine calls"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
