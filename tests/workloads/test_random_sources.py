"""Tests for random source-collection generators."""

import random

import pytest

from repro.consistency import check_identity
from repro.workloads.random_sources import (
    consistent_identity_collection,
    random_identity_collection,
    universe,
)


class TestUniverse:
    def test_size_and_uniqueness(self):
        u = universe(10)
        assert len(u) == 10 and len(set(u)) == 10


class TestRandomCollection:
    def test_shape(self, rng):
        col = random_identity_collection(4, 15, rng=rng)
        assert len(col) == 4
        assert col.identity_relation() == "R"
        for s in col:
            assert 2 <= s.size() <= 6
            assert 0 <= s.completeness_bound <= 1
            assert 0 <= s.soundness_bound <= 1

    def test_extension_within_universe(self, rng):
        col = random_identity_collection(3, 8, rng=rng)
        pool = set(universe(8))
        for s in col:
            for f in s.extension:
                assert f.args[0].value in pool

    def test_reproducible(self):
        a = random_identity_collection(3, 10, rng=random.Random(4))
        b = random_identity_collection(3, 10, rng=random.Random(4))
        assert [s.extension for s in a] == [s.extension for s in b]


class TestConsistentCollection:
    def test_ground_truth_is_possible(self, rng):
        col, truth, _ = consistent_identity_collection(
            3, 15, 8, rng=rng
        )
        assert col.admits(truth)

    def test_checker_agrees(self, rng):
        col, _, _ = consistent_identity_collection(3, 12, 6, rng=rng)
        assert check_identity(col).consistent

    def test_slack_preserves_consistency(self, rng):
        col, truth, _ = consistent_identity_collection(
            3, 12, 6, slack=0.2, rng=rng
        )
        assert col.admits(truth)

    @pytest.mark.parametrize("seed", range(5))
    def test_many_seeds(self, seed):
        col, truth, _ = consistent_identity_collection(
            4, 14, 7, drop_rate=0.3, corrupt_rate=0.2, rng=random.Random(seed)
        )
        assert col.admits(truth)
        assert check_identity(col).consistent
