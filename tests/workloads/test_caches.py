"""Tests for the cache/mirror workload."""

import random
from fractions import Fraction

import pytest

from repro.consistency import check_identity
from repro.confidence import covered_fact_confidences
from repro.workloads import caches


@pytest.fixture
def fleet(rng):
    return caches.generate(
        n_objects=12, n_retired=5, n_caches=3, rng=rng
    )


class TestGeneration:
    def test_origin_contents(self, fleet):
        assert fleet.live_objects() == {f"obj{i}" for i in range(12)}

    def test_origin_is_possible_world(self, fleet):
        assert fleet.collection.admits(fleet.origin)

    def test_collection_is_identity_shaped(self, fleet):
        assert fleet.collection.identity_relation() == caches.RELATION

    def test_consistent(self, fleet):
        assert check_identity(fleet.collection).consistent

    def test_cache_quality_bounds(self, rng):
        perfect = caches.generate(
            n_objects=10, n_retired=5, n_caches=2,
            miss_rate=0, stale_rate=0, rng=rng,
        )
        for source in perfect.collection:
            assert source.completeness_bound == 1
            assert source.soundness_bound == 1

    def test_stale_objects_reduce_soundness(self):
        rng = random.Random(123)
        fleet = caches.generate(
            n_objects=10, n_retired=20, n_caches=1,
            miss_rate=0, stale_rate=0.9, rng=rng,
        )
        assert fleet.collection[0].soundness_bound < 1


class TestConfidenceRanking:
    def test_live_objects_outrank_retired(self):
        rng = random.Random(5)
        fleet = caches.generate(
            n_objects=6, n_retired=4, n_caches=4,
            miss_rate=0.15, stale_rate=0.15, rng=rng,
        )
        confidences = covered_fact_confidences(fleet.collection, fleet.domain)
        live = fleet.live_objects()
        live_scores = [
            confidence
            for f, confidence in confidences.items()
            if f.args[0].value in live
        ]
        stale_scores = [
            confidence
            for f, confidence in confidences.items()
            if f.args[0].value not in live
        ]
        if live_scores and stale_scores:
            assert min(live_scores) >= max(stale_scores) or (
                sum(live_scores) / len(live_scores)
                > sum(stale_scores) / len(stale_scores)
            )


class TestRankingQuality:
    def test_precision_at_k(self):
        live = frozenset({"a", "b"})
        assert caches.ranking_quality(["a", "b", "x"], live, 2) == 1
        assert caches.ranking_quality(["x", "a"], live, 2) == Fraction(1, 2)
        assert caches.ranking_quality([], live, 3) == 0
        assert caches.ranking_quality(["a"], live, 0) == 1
