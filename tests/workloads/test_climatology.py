"""Tests for the GHCN-style climatology workload."""

import random

import pytest

from repro.model import fact
from repro.workloads import climatology


@pytest.fixture
def workload(rng):
    return climatology.generate(rng=rng)


class TestGroundTruth:
    def test_schema(self, workload):
        schema = workload.ground_truth.schema()
        assert schema.arity("Station") == 2
        assert schema.arity("Temperature") == 4

    def test_station_count(self, workload):
        assert workload.station_count() == 4  # 2 countries x 2 stations

    def test_temperature_facts_complete(self, workload):
        # stations x years x months
        expected = 4 * 2 * 2
        assert len(workload.ground_truth.extension("Temperature")) == expected


class TestSources:
    def test_source_names(self, workload):
        assert [s.name for s in workload.collection] == ["S0", "S1", "S2", "S3"]

    def test_station_directory_exact(self, workload):
        s0 = workload.collection.by_name("S0")
        assert s0.completeness_bound == 1 and s0.soundness_bound == 1

    def test_ground_truth_is_possible_world(self, workload):
        assert workload.collection.admits(workload.ground_truth)

    def test_declared_bounds_are_measured_quality(self, workload):
        for source in workload.collection:
            assert source.completeness(workload.ground_truth) >= source.completeness_bound
            assert source.soundness(workload.ground_truth) >= source.soundness_bound

    def test_cutoff_year_excludes_old_data(self, rng):
        w = climatology.generate(
            years=(1899, 1950),
            cutoff_years={"C1": 1900},
            drop_rate=0,
            corrupt_rate=0,
            rng=rng,
        )
        s1 = w.collection.by_name("S1")
        years_held = {f.args[1].value for f in s1.extension}
        assert years_held == {1950}

    def test_country_views_disjoint(self, rng):
        w = climatology.generate(drop_rate=0, corrupt_rate=0, rng=rng)
        s1_stations = {f.args[0].value for f in w.collection.by_name("S1").extension}
        s2_stations = {f.args[0].value for f in w.collection.by_name("S2").extension}
        assert s1_stations.isdisjoint(s2_stations)


class TestFDCompleteness:
    def test_fd_intended_size_matches_view(self, rng):
        w = climatology.generate(drop_rate=0, corrupt_rate=0, rng=rng)
        s1 = w.collection.by_name("S1")
        intended = s1.intended_content(w.ground_truth)
        assert len(intended) == w.fd_intended_size("C1", min(w.years) - 1)

    def test_fd_size_respects_cutoff(self, rng):
        w = climatology.generate(
            years=(1899, 1950), cutoff_years={"C1": 1900}, rng=rng
        )
        assert w.fd_intended_size("C1", 1900) == 2 * 1 * 2


class TestPerturbationLevels:
    @pytest.mark.parametrize("drop,corrupt", [(0.0, 0.0), (0.3, 0.0), (0.0, 0.3)])
    def test_quality_direction(self, drop, corrupt):
        rng = random.Random(99)
        w = climatology.generate(
            stations_per_country=3,
            years=(1990, 1991, 1992),
            drop_rate=drop,
            corrupt_rate=corrupt,
            rng=rng,
        )
        s1 = w.collection.by_name("S1")
        if drop == 0 and corrupt == 0:
            assert s1.completeness_bound == 1 and s1.soundness_bound == 1
        if drop > 0:
            assert s1.completeness_bound < 1
        if corrupt > 0:
            assert s1.soundness_bound < 1
