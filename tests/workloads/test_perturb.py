"""Tests for the perturbation model."""

import random
from fractions import Fraction

import pytest

from repro.exceptions import SourceError
from repro.model import fact
from repro.workloads.perturb import (
    corrupt_fact,
    perturb_extension,
    slack_bound,
)


@pytest.fixture
def intended():
    return {fact("V", i, i * 10) for i in range(20)}


class TestPerturbExtension:
    def test_no_perturbation_is_exact(self, intended, rng):
        result = perturb_extension(intended, 0, 0, range(100), rng)
        assert result.extension == frozenset(intended)
        assert result.completeness == 1 and result.soundness == 1

    def test_full_drop(self, intended, rng):
        result = perturb_extension(intended, 1, 0, range(100), rng)
        assert result.extension == frozenset()
        assert result.completeness == 0
        assert result.soundness == 1  # vacuously sound

    def test_drop_reduces_completeness(self, intended, rng):
        result = perturb_extension(intended, 0.5, 0, range(100), rng)
        assert result.completeness < 1
        assert result.soundness == 1  # no corruption
        assert result.dropped > 0

    def test_corrupt_reduces_soundness(self, intended, rng):
        result = perturb_extension(intended, 0, 0.5, range(1000, 1100), rng)
        assert result.soundness < 1
        assert result.corrupted > 0

    def test_measures_consistent_with_extension(self, intended, rng):
        result = perturb_extension(intended, 0.3, 0.2, range(100), rng)
        correct = len(result.extension & frozenset(intended))
        if result.extension:
            assert result.soundness == Fraction(correct, len(result.extension))
        assert result.completeness == Fraction(correct, len(intended))

    def test_invalid_rates(self, intended, rng):
        with pytest.raises(SourceError):
            perturb_extension(intended, -0.1, 0, [], rng)
        with pytest.raises(SourceError):
            perturb_extension(intended, 0, 1.5, [], rng)

    def test_deterministic_given_seed(self, intended):
        a = perturb_extension(intended, 0.3, 0.2, range(50), random.Random(7))
        b = perturb_extension(intended, 0.3, 0.2, range(50), random.Random(7))
        assert a.extension == b.extension


class TestCorruptFact:
    def test_changes_one_position(self, rng):
        original = fact("V", 1, 2, 3)
        mutated = corrupt_fact(original, ["z"], rng)
        differences = sum(
            1 for a, b in zip(original.args, mutated.args) if a != b
        )
        assert differences == 1
        assert mutated.relation == "V" and mutated.arity == 3

    def test_nullary_unchanged(self, rng):
        original = fact("Flag")
        assert corrupt_fact(original, ["z"], rng) == original


class TestSlackBound:
    def test_zero_slack_is_measured(self):
        assert slack_bound(Fraction(3, 4), 0) == Fraction(3, 4)

    def test_positive_slack_under_promises(self):
        assert slack_bound(Fraction(1, 2), 0.1) == Fraction(1, 2) * Fraction(9, 10)

    def test_clamped_to_unit_interval(self):
        assert slack_bound(Fraction(1), 0) == 1
        assert slack_bound(Fraction(0), 0.5) == 0

    def test_invalid_slack(self):
        with pytest.raises(SourceError):
            slack_bound(Fraction(1, 2), 2)
