"""Tests for the accounting-audit workload."""

import random
from fractions import Fraction

import pytest

from repro.workloads import accounting


@pytest.fixture
def workload(rng):
    return accounting.generate(
        n_systems=2, n_transactions=120, rng=rng
    )


class TestLedger:
    def test_one_entry_per_transaction(self, workload):
        txns = {f.args[0].value for f in workload.ledger}
        assert len(txns) == 120
        assert len(workload.ledger) == 120

    def test_schema(self, workload):
        assert workload.ledger.schema().arity(accounting.RELATION) == 3


class TestSystems:
    def test_descriptor_shapes(self, workload):
        collection = workload.collection
        assert len(collection) == 2
        assert collection.identity_relation() == accounting.RELATION

    def test_true_quality_reflects_perturbation(self, rng):
        noisy = accounting.generate(
            n_systems=1,
            n_transactions=150,
            loss_rate=0.3,
            error_rate=0.2,
            rng=rng,
        )
        system = noisy.systems[0]
        assert system.true_completeness < 1
        assert system.true_soundness < 1

    def test_perfect_systems(self, rng):
        clean = accounting.generate(
            n_systems=1, n_transactions=60, loss_rate=0, error_rate=0, rng=rng
        )
        system = clean.systems[0]
        assert system.true_soundness == 1
        assert system.true_completeness == 1
        assert system.declared_holds()

    def test_audit_sample_bounded_by_extension(self, workload):
        for system in workload.systems:
            assert system.sample_size <= system.descriptor.size()
            assert 0 <= system.sample_correct <= system.sample_size


class TestStatisticalHonesty:
    def test_declared_bounds_mostly_hold(self):
        """At 95% confidence, declared soundness bounds should rarely exceed
        the truth; across 30 audited systems expect at most a few misses."""
        holds = 0
        total = 0
        for seed in range(15):
            workload = accounting.generate(
                n_systems=2,
                n_transactions=100,
                loss_rate=0.15,
                error_rate=0.1,
                rng=random.Random(seed),
            )
            for system in workload.systems:
                total += 1
                if system.descriptor.soundness_bound <= system.true_soundness:
                    holds += 1
        assert total == 30
        assert holds >= 26  # ≥ ~87% coverage at the 95% design level

    def test_ground_truth_admitted_when_declared_holds(self, workload):
        for system in workload.systems:
            if system.declared_holds():
                assert system.descriptor.satisfied_by(workload.ledger)
