"""Golden regression values: exact outputs pinned for medium scenarios.

These lock down the *numbers* (not just shapes) of the core pipelines, so
an accidental semantic change in counting, consistency, or the calculus
fails loudly. Every value here was independently cross-checked against the
brute-force oracles when first recorded.
"""

from fractions import Fraction

import pytest

from repro.model import GlobalDatabase, fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence import BlockCounter, IdentityInstance
from repro.consistency import check_consistency

from tests.conftest import example51_domain, make_example51_collection


class TestExample51Golden:
    """Exact values for Example 5.1 at several m (verified vs brute force)."""

    EXPECTED = {
        # m: (worlds, conf_a, conf_b, conf_d)
        0: (5, Fraction(3, 5), Fraction(4, 5), None),
        1: (7, Fraction(4, 7), Fraction(6, 7), Fraction(2, 7)),
        2: (9, Fraction(5, 9), Fraction(8, 9), Fraction(2, 9)),
        10: (25, Fraction(13, 25), Fraction(24, 25), Fraction(2, 25)),
    }

    @pytest.mark.parametrize("m", sorted(EXPECTED))
    def test_values(self, m):
        counter = BlockCounter(
            IdentityInstance(make_example51_collection(), example51_domain(m))
        )
        worlds, conf_a, conf_b, conf_d = self.EXPECTED[m]
        assert counter.count_worlds() == worlds
        assert counter.confidence(fact("R", "a")) == conf_a
        assert counter.confidence(fact("R", "b")) == conf_b
        if conf_d is not None:
            assert counter.confidence(fact("R", "d1")) == conf_d

    def test_world_count_formula(self):
        """|poss| = 2m + 5 for Example 5.1 over dom of size m + 3."""
        for m in (0, 1, 2, 5, 20, 100):
            counter = BlockCounter(
                IdentityInstance(
                    make_example51_collection(), example51_domain(m)
                )
            )
            assert counter.count_worlds() == 2 * m + 5, m


class TestThreeSourceGolden:
    """A fixed three-source scenario with overlapping claims."""

    @pytest.fixture
    def counter(self):
        collection = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a"), fact("V1", "b"), fact("V1", "c")],
                    "1/3", "2/3", name="S1",
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1),
                    [fact("V2", "b"), fact("V2", "c"), fact("V2", "d")],
                    "1/3", "2/3", name="S2",
                ),
                SourceDescriptor(
                    identity_view("V3", "R", 1),
                    [fact("V3", "c"), fact("V3", "e")],
                    "1/2", "1/2", name="S3",
                ),
            ]
        )
        return BlockCounter(
            IdentityInstance(collection, ["a", "b", "c", "d", "e", "f"])
        )

    def test_world_count(self, counter):
        assert counter.count_worlds() == 6

    def test_confidences(self, counter):
        values = {
            "a": Fraction(1, 3),
            "b": Fraction(5, 6),
            "c": Fraction(1),
            "d": Fraction(1, 3),
            "e": Fraction(5, 6),
            "f": Fraction(1, 6),
        }
        for value, expected in values.items():
            assert counter.confidence(fact("R", value)) == expected, value

    def test_brute_force_reconfirms(self, counter):
        """Keep the oracle wired to the golden values."""
        from repro.confidence import GammaSystem

        gamma = GammaSystem(counter.instance)
        assert gamma.count_solutions() == 6
        assert gamma.confidence(fact("R", "c")) == Fraction(1)

    def test_expected_size(self, counter):
        total = sum(
            (counter.confidence(fact("R", v)) for v in "abcdef"),
            Fraction(0),
        )
        assert counter.expected_world_size() == total == Fraction(7, 2)


class TestConsistencyGolden:
    def test_quotient_witness_shape(self):
        """The merge-forced scenario's witness has exactly one R fact."""
        w = parse_rule("W(x) <- R(x, y)")
        u = parse_rule("U(y) <- R(x, y)")
        collection = SourceCollection(
            [
                SourceDescriptor(w, [fact("W", "a")], 1, 1, name="S1"),
                SourceDescriptor(u, [fact("U", "z")], 1, 1, name="S2"),
            ]
        )
        result = check_consistency(collection)
        assert result.consistent and result.method == "quotient-search"
        assert result.witness == GlobalDatabase([fact("R", "a", "z")])
