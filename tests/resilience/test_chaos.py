"""Chaos schedules: parsing, deterministic application, fire-once."""

import pytest

from repro.resilience import ChaosRunner, ChaosSchedule, ChaosSpecError
from repro.service import PerSourceGateway


def test_parse_spec_modes_and_order():
    schedule = ChaosSchedule.parse(
        "600:S2:error:0.8, 0:S1:crash, 400:S1:ok, 900:S2:slow:20, "
        "1200:S2:partition"
    )
    assert [e.source for e in schedule] == ["S1", "S1", "S2", "S2", "S2"]
    assert [e.at for e in schedule] == [0.0, 0.4, 0.6, 0.9, 1.2]
    assert schedule.horizon == 1.2
    by_mode = {(e.at, e.mode): e.policy for e in schedule}
    assert by_mode[(0.0, "crash")].crash
    assert by_mode[(0.4, "ok")] is None
    assert by_mode[(0.6, "error")].error_rate == 0.8
    assert by_mode[(0.9, "slow")].latency == 0.02
    assert by_mode[(1.2, "partition")].partition


def test_parse_rejects_bad_specs():
    for spec in (
        "S1:crash",            # missing time
        "abc:S1:crash",        # non-numeric time
        "-5:S1:crash",         # negative time
        "100::crash",          # empty source
        "100:S1:meltdown",     # unknown mode
        "100:S1:error:x",      # bad argument
    ):
        with pytest.raises(ChaosSpecError):
            ChaosSchedule.parse(spec)


def test_empty_and_flaky_alias():
    assert len(ChaosSchedule.parse("")) == 0
    event = next(iter(ChaosSchedule.parse("0:S1:flaky:0.3")))
    assert event.policy.error_rate == 0.3


def test_runner_fires_due_events_exactly_once():
    gateway = PerSourceGateway()
    runner = ChaosRunner(
        gateway, ChaosSchedule.parse("0:S1:crash, 500:S1:ok, 800:S2:crash")
    )
    assert runner.advance(0.0) == 1
    assert gateway.policy_for("S1").crash
    assert runner.advance(0.1) == 0  # already fired, nothing due
    assert runner.advance(0.5) == 1
    assert gateway.policy_for("S1").healthy
    assert not runner.exhausted
    assert runner.finish() == 1
    assert gateway.policy_for("S2").crash
    assert runner.exhausted
    assert [a["mode"] for a in runner.applied] == ["crash", "ok", "crash"]


def test_runner_applies_skipped_window_in_order():
    # A driver that jumps past several events fires them all, in order.
    gateway = PerSourceGateway()
    runner = ChaosRunner(
        gateway,
        ChaosSchedule.parse("0:S1:error:0.9, 100:S1:slow:50, 200:S1:ok"),
    )
    assert runner.advance(10.0) == 3
    assert gateway.policy_for("S1").healthy  # last event wins


def test_same_schedule_same_seed_is_bit_deterministic():
    def trace(seed):
        gateway = PerSourceGateway(seed=seed)
        runner = ChaosRunner(
            gateway, ChaosSchedule.parse("0:S1:error:0.5", seed=seed)
        )
        runner.advance(0.0)
        lane = gateway.lane("S1")
        outcomes = []
        for _ in range(16):
            outcomes.append(lane._rng.random())
        return outcomes

    assert trace(3) == trace(3)
    assert trace(3) != trace(4)
