"""Retry/backoff hardening: budget caps, seeded jitter, structured errors.

Satellite of the resilience PR: a retry loop that would sleep past the
batch's earliest deadline must fail *fast* with a structured ``ERROR``
response — never an unhandled exception, never a guaranteed-late answer.
"""

import asyncio

import pytest

from repro.model import fact
from repro.service import (
    FaultPolicy,
    MediatorService,
    RequestStatus,
    SchedulerConfig,
)

from tests.conftest import example51_domain, make_example51_collection

DOMAIN = example51_domain(1)


def run(coroutine):
    return asyncio.run(coroutine)


def test_exhausted_attempts_surface_structured_error():
    """error_rate=1.0: every attempt fails; the caller gets ERROR, not a
    traceback out of the worker."""

    async def scenario():
        service = MediatorService(
            make_example51_collection(), DOMAIN,
            config=SchedulerConfig(
                max_attempts=2, backoff_base=0.001, batch_window=0.0
            ),
            fault_policy=FaultPolicy(error_rate=1.0, seed=11),
        )
        async with service:
            response = await service.confidence(
                [fact("R", "a")], timeout=5.0
            )
        return response, service.stats()

    response, stats = run(scenario())
    assert response.status is RequestStatus.ERROR
    assert response.reason  # a human-readable cause, not empty
    assert stats["metrics"]["counters"]["source_read_retries"] == 2


def test_retry_budget_capped_by_request_deadline():
    """A backoff that would overrun the earliest deadline fails fast with
    the budget-exhausted reason instead of sleeping into a timeout."""

    async def scenario():
        service = MediatorService(
            make_example51_collection(), DOMAIN,
            config=SchedulerConfig(
                max_attempts=5,
                backoff_base=10.0,   # any retry sleep dwarfs the deadline
                backoff_cap=10.0,
                batch_window=0.0,
            ),
            fault_policy=FaultPolicy(error_rate=1.0, seed=11),
        )
        async with service:
            response = await service.confidence(
                [fact("R", "a")], timeout=0.25
            )
        return response, service.stats()

    response, stats = run(scenario())
    assert response.status is RequestStatus.ERROR
    assert "retry budget exhausted" in response.reason
    assert stats["metrics"]["counters"]["retry_budget_exhausted"] == 1
    # Fail-fast means well under the 10s backoff, under the deadline even.
    assert response.latency < 0.25


def test_unbounded_requests_still_retry_to_exhaustion():
    """No deadline: the full attempt budget is spent before giving up."""

    async def scenario():
        service = MediatorService(
            make_example51_collection(), DOMAIN,
            config=SchedulerConfig(
                max_attempts=3, backoff_base=0.001, batch_window=0.0
            ),
            fault_policy=FaultPolicy(error_rate=1.0, seed=11),
        )
        async with service:
            response = await service.confidence([fact("R", "a")])
        return response, service.stats()

    response, stats = run(scenario())
    assert response.status is RequestStatus.ERROR
    assert "retry budget exhausted" not in response.reason
    assert stats["metrics"]["counters"]["source_read_retries"] == 3


def test_jitter_is_seeded_and_bounded():
    """Jittered delays stay inside [backoff, backoff·(1+jitter)] and replay
    identically for the same backoff_seed."""

    def delays(seed, n=8):
        import random

        config = SchedulerConfig(backoff_jitter=0.5, backoff_seed=seed)
        rng = random.Random(config.backoff_seed)
        out = []
        for attempt in range(1, n + 1):
            delay = config.backoff(attempt)
            out.append(delay * (1.0 + config.backoff_jitter * rng.random()))
        return out

    base = SchedulerConfig(backoff_jitter=0.5)
    for attempt, delay in enumerate(delays(7), start=1):
        floor = base.backoff(attempt)
        assert floor <= delay <= floor * 1.5
    assert delays(7) == delays(7)
    assert delays(7) != delays(8)


def test_jitter_config_validation():
    with pytest.raises(ValueError):
        SchedulerConfig(backoff_jitter=-0.1)
    assert SchedulerConfig(backoff_jitter=0.0).backoff_jitter == 0.0


def test_backoff_schedule_is_exponential_and_capped():
    config = SchedulerConfig(backoff_base=0.01, backoff_cap=0.05)
    assert [config.backoff(a) for a in range(1, 6)] == [
        0.01, 0.02, 0.04, 0.05, 0.05,
    ]
