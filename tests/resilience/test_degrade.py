"""Degradation semantics: demotion widens poss(S); answers stay sound.

The property suite pins the runtime path to the paper's declarative
semantics: demoting a source to ⟨c=0, s=0⟩ can only *add* possible worlds,
so everything certain under the demoted collection is certain under the
full one — degraded answers are sound, and the difference is exactly the
set of answers the lost annotations were needed to certify.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.confidence.answers import answer_query
from repro.confidence.worlds import possible_worlds
from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.resilience import (
    GUARANTEE_CERTAIN,
    GUARANTEE_POSSIBLE,
    demote,
    downgraded,
    grade_answers,
)
from repro.sources import SourceCollection, SourceDescriptor

from tests.property.strategies import VALUES, identity_collections

DOMAIN = VALUES
QUERY = parse_rule("ans(x) <- R(x)")


def worlds_of(collection):
    return frozenset(
        frozenset(w) for w in possible_worlds(collection, DOMAIN)
    )


def source_names(collection):
    return sorted(source.name for source in collection)


@st.composite
def collections_with_exclusions(draw):
    collection = draw(identity_collections())
    names = source_names(collection)
    excluded = draw(
        st.sets(st.sampled_from(names), min_size=1, max_size=len(names))
    )
    return collection, frozenset(excluded)


@given(collections_with_exclusions())
@settings(max_examples=40, deadline=None)
def test_demotion_only_widens_the_possible_worlds(pair):
    collection, excluded = pair
    full = worlds_of(collection)
    assume(full)  # inconsistent draws admit no worlds; nothing to weaken
    weakened = worlds_of(demote(collection, excluded))
    assert full <= weakened


@given(collections_with_exclusions())
@settings(max_examples=25, deadline=None)
def test_degraded_certain_answers_are_sound(pair):
    collection, excluded = pair
    assume(worlds_of(collection))
    full = answer_query(QUERY, collection, DOMAIN)
    degraded = answer_query(QUERY, demote(collection, excluded), DOMAIN)
    # Certain under the demoted collection -> certain under the full one.
    assert degraded.certain <= full.certain
    # Confidences can only move toward uncertainty in one direction for
    # formerly-certain answers: nothing below 1 becomes 1.
    for answer in degraded.certain:
        assert full.confidences[answer] == 1


@given(collections_with_exclusions())
@settings(max_examples=25, deadline=None)
def test_downgraded_is_exactly_the_difference(pair):
    collection, excluded = pair
    assume(worlds_of(collection))
    full = answer_query(QUERY, collection, DOMAIN).certain
    degraded = answer_query(
        QUERY, demote(collection, excluded), DOMAIN
    ).certain
    lost = downgraded(full, degraded)
    assert frozenset(lost) == frozenset(full) - frozenset(degraded)
    grades = grade_answers(full, degraded)
    assert {a for a, g in grades.items() if g == GUARANTEE_CERTAIN} == set(
        degraded
    )
    assert {a for a, g in grades.items() if g == GUARANTEE_POSSIBLE} == set(
        full
    ) - set(degraded)


@given(identity_collections())
@settings(max_examples=25, deadline=None)
def test_demoting_nothing_is_identity(collection):
    assert demote(collection, frozenset()) is collection
    # Unknown names are ignored, not errors.
    same = demote(collection, frozenset({"NO-SUCH-SOURCE"}))
    assert [s.name for s in same] == [s.name for s in collection]
    assert all(
        s.completeness_bound == t.completeness_bound
        and s.soundness_bound == t.soundness_bound
        for s, t in zip(same, collection)
    )


def test_demote_zeroes_bounds_and_keeps_extension():
    collection = SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1),
                [fact("V1", "a")], 1, 1, name="S1",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "c")], "1/2", "1/2", name="S2",
            ),
        ]
    )
    weakened = demote(collection, {"S2"})
    s1, s2 = list(weakened)
    assert s1.completeness_bound == 1 and s1.soundness_bound == 1
    assert s2.completeness_bound == 0 and s2.soundness_bound == 0
    assert set(s2.extension) == {fact("V2", "c")}  # facts stay candidates


def test_worked_example_downgrade():
    """Two sound sources; losing one downgrades its certified answer."""
    collection = SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1),
                [fact("V1", "a")], 0, 1, name="S1",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "c")], 0, 1, name="S2",
            ),
        ]
    )
    domain = ["a", "b", "c"]
    full = answer_query(QUERY, collection, domain)
    degraded = answer_query(QUERY, demote(collection, {"S2"}), domain)
    assert fact("ans", "a") in degraded.certain
    assert fact("ans", "c") in full.certain
    assert fact("ans", "c") not in degraded.certain
    assert downgraded(full.certain, degraded.certain) == (fact("ans", "c"),)
    # The downgraded answer is still possible, just no longer guaranteed.
    assert fact("ans", "c") in degraded.possible
