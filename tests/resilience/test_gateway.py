"""Per-source gateway and hard fault modes (crash, partition)."""

import asyncio

import pytest

from repro.service import (
    FaultInjector,
    FaultPolicy,
    PerSourceGateway,
    SourceCrashedError,
    SourceRegistry,
    TransientSourceError,
)

from tests.conftest import example51_domain, make_example51_collection


def snapshot():
    registry = SourceRegistry(
        tuple(make_example51_collection()), example51_domain(1)
    )
    return registry.snapshot()


def run(coro):
    return asyncio.run(coro)


def test_crash_policy_raises_source_crashed():
    injector = FaultInjector(FaultPolicy(crash=True))
    with pytest.raises(SourceCrashedError):
        run(injector.read(snapshot()))


def test_partition_policy_hangs_past_any_reasonable_timeout():
    injector = FaultInjector(FaultPolicy(partition=True))

    async def attempt():
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(injector.read(snapshot()), timeout=0.05)

    run(attempt())


def test_base_gateway_probe_returns_descriptor():
    from repro.service import SourceGateway

    gateway = SourceGateway()
    snap = snapshot()
    descriptor = run(gateway.probe(snap, "S1"))
    assert descriptor.name == "S1"
    assert gateway.reads == 1


def test_per_source_gateway_isolates_fault_to_one_lane():
    gateway = PerSourceGateway()
    gateway.set_policy("S2", FaultPolicy(crash=True))
    snap = snapshot()
    # S1's probe is untouched...
    assert run(gateway.probe(snap, "S1")).name == "S1"
    # ...while S2's raises.
    with pytest.raises(SourceCrashedError):
        run(gateway.probe(snap, "S2"))
    counters = gateway.stats()
    assert counters["S1"]["crashes"] == 0
    assert counters["S2"]["crashes"] == 1


def test_whole_read_fails_when_any_lane_is_down():
    # The coupling the resilience layer removes: without it, one crashed
    # source fails the entire batch read.
    gateway = PerSourceGateway()
    gateway.set_policy("S2", FaultPolicy(crash=True))
    with pytest.raises(SourceCrashedError):
        run(gateway.read(snapshot()))


def test_heal_clears_the_policy_but_keeps_the_lane():
    gateway = PerSourceGateway()
    gateway.set_policy("S1", FaultPolicy(crash=True))
    with pytest.raises(SourceCrashedError):
        run(gateway.probe(snapshot(), "S1"))
    gateway.heal("S1")
    assert run(gateway.probe(snapshot(), "S1")).name == "S1"
    assert gateway.stats()["S1"]["reads"] == 2  # counters survive healing
    assert gateway.policy_for("S1").healthy


def test_lane_rngs_are_independent_and_seed_stable():
    """Flipping one lane's policy never perturbs another lane's stream."""
    def error_trace(gateway, name, reads):
        outcomes = []
        for _ in range(reads):
            try:
                run(gateway.probe(snapshot(), name))
                outcomes.append(True)
            except TransientSourceError:
                outcomes.append(False)
        return outcomes

    flaky = FaultPolicy(error_rate=0.5)
    solo = PerSourceGateway(seed=7)
    solo.set_policy("S1", flaky)
    baseline = error_trace(solo, "S1", 12)

    perturbed = PerSourceGateway(seed=7)
    perturbed.set_policy("S1", flaky)
    perturbed.set_policy("S2", FaultPolicy(error_rate=0.9))
    for _ in range(5):  # drain S2's lane; S1's stream must not move
        try:
            run(perturbed.probe(snapshot(), "S2"))
        except TransientSourceError:
            pass
    assert error_trace(perturbed, "S1", 12) == baseline
    assert any(baseline) and not all(baseline)  # the trace is non-trivial


def test_default_policy_applies_to_unconfigured_lanes():
    gateway = PerSourceGateway(default=FaultPolicy(crash=True))
    with pytest.raises(SourceCrashedError):
        run(gateway.probe(snapshot(), "S1"))
    gateway.heal("S1")
    assert run(gateway.probe(snapshot(), "S1")).name == "S1"


def test_policy_validation_still_applies():
    with pytest.raises(ValueError):
        FaultPolicy(error_rate=1.5)
    with pytest.raises(ValueError):
        FaultPolicy(latency=-1)
    assert FaultPolicy().healthy
    assert not FaultPolicy(partition=True).healthy
