"""Unit tests of the circuit-breaker state machine (hand-cranked clock)."""

import pytest

from repro.resilience import BreakerConfig, BreakerState, CircuitBreaker

CFG = BreakerConfig(
    error_threshold=0.5,
    ewma_alpha=0.4,
    min_samples=2,
    consecutive_limit=3,
    cooldown=1.0,
    half_open_probes=1,
)


def test_closed_allows_and_stays_closed_on_success():
    breaker = CircuitBreaker("S1", CFG)
    for t in range(5):
        assert breaker.allow(float(t))
        breaker.record_success(0.01, float(t))
    assert breaker.state is BreakerState.CLOSED
    assert breaker.successes == 5
    assert breaker.short_circuits == 0


#: threshold=1.0 disables the EWMA trip (the average never reaches 1 with
#: alpha < 1), isolating the consecutive-failure path.
CONSECUTIVE_ONLY = BreakerConfig(
    error_threshold=1.0,
    ewma_alpha=0.4,
    min_samples=2,
    consecutive_limit=3,
    cooldown=1.0,
)


def test_consecutive_failures_open_the_breaker():
    breaker = CircuitBreaker("S1", CONSECUTIVE_ONLY)
    for t in range(CONSECUTIVE_ONLY.consecutive_limit):
        assert breaker.allow(float(t))
        breaker.record_failure(0.01, float(t))
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 1


def test_single_failure_never_trips():
    # min_samples=2: one unlucky probe must not open the breaker even
    # though a single observation pushes the EWMA to alpha > threshold...
    cfg = BreakerConfig(
        error_threshold=0.4, ewma_alpha=0.9, min_samples=2,
        consecutive_limit=3, cooldown=1.0,
    )
    breaker = CircuitBreaker("S1", cfg)
    breaker.record_failure(0.01, 0.0)
    assert breaker.state is BreakerState.CLOSED
    # ...but a second failure satisfies min_samples and opens it.
    breaker.record_failure(0.01, 1.0)
    assert breaker.state is BreakerState.OPEN


def test_ewma_error_rate_trips_without_consecutive_run():
    breaker = CircuitBreaker("S1", CFG)
    # A failure-heavy mix whose consecutive run never reaches 3: with
    # alpha=0.4 the EWMA goes .4, .24, .544 — crossing threshold 0.5 on
    # the third observation with only one consecutive failure behind it.
    outcomes = [1, 0, 1, 1]
    t = 0.0
    for error in outcomes:
        if breaker.state is not BreakerState.CLOSED:
            break
        if error:
            breaker.record_failure(0.01, t)
        else:
            breaker.record_success(0.01, t)
        t += 1.0
    assert breaker.state is BreakerState.OPEN
    assert breaker.consecutive_failures < CFG.consecutive_limit


def test_open_short_circuits_until_cooldown_then_half_opens():
    breaker = CircuitBreaker("S1", CONSECUTIVE_ONLY)
    for t in range(3):
        breaker.record_failure(0.01, float(t))
    opened_at = 2.0
    assert not breaker.allow(opened_at + 0.5)
    assert not breaker.allow(opened_at + 0.99)
    assert breaker.short_circuits == 2
    assert breaker.allow(opened_at + CONSECUTIVE_ONLY.cooldown)
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.half_opens == 1


def test_half_open_failure_reopens_and_restarts_cooldown():
    breaker = CircuitBreaker("S1", CFG)
    for t in range(3):
        breaker.record_failure(0.01, float(t))
    assert breaker.allow(3.0 + CFG.cooldown)  # half-open
    breaker.record_failure(0.01, 4.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 2
    # Cooldown restarts from the re-open instant, not the first open.
    assert not breaker.allow(4.0 + CFG.cooldown - 0.01)
    assert breaker.allow(4.0 + CFG.cooldown)


def test_half_open_success_closes_and_resets_error_history():
    breaker = CircuitBreaker("S1", CFG)
    for t in range(3):
        breaker.record_failure(0.01, float(t))
    assert breaker.allow(2.0 + CFG.cooldown)
    breaker.record_success(0.01, 4.0)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.ewma_error == 0.0  # stale failures cannot re-trip
    # One fresh failure right after recovery stays closed.
    breaker.record_failure(0.01, 5.0)
    assert breaker.state is BreakerState.CLOSED


def test_half_open_requires_configured_probe_count():
    cfg = BreakerConfig(
        error_threshold=0.5, consecutive_limit=2, cooldown=1.0,
        half_open_probes=2,
    )
    breaker = CircuitBreaker("S1", cfg)
    breaker.record_failure(0.01, 0.0)
    breaker.record_failure(0.01, 1.0)
    assert breaker.allow(2.5)
    breaker.record_success(0.01, 2.5)
    assert breaker.state is BreakerState.HALF_OPEN  # one is not enough
    breaker.record_success(0.01, 3.0)
    assert breaker.state is BreakerState.CLOSED


def test_transition_listener_sees_every_edge():
    log = []
    breaker = CircuitBreaker(
        "S1", CFG, on_transition=lambda *edge: log.append(edge)
    )
    for t in range(3):
        breaker.record_failure(0.01, float(t))
    breaker.allow(2.0 + CFG.cooldown)
    breaker.record_success(0.01, 4.0)
    assert [(old.value, new.value) for _n, old, new, _t in log] == [
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "closed"),
    ]
    assert all(name == "S1" for name, _o, _n, _t in log)


def test_snapshot_is_plain_data():
    breaker = CircuitBreaker("S1", CFG)
    breaker.record_failure(0.02, 0.0)
    breaker.record_success(0.01, 1.0)
    snap = breaker.snapshot()
    assert snap["state"] == "closed"
    assert snap["samples"] == 2
    assert snap["failures"] == 1
    assert snap["successes"] == 1
    assert 0.0 < snap["ewma_error"] < 1.0
    import json

    json.dumps(snap)


def test_config_validation():
    with pytest.raises(ValueError):
        BreakerConfig(error_threshold=0.0)
    with pytest.raises(ValueError):
        BreakerConfig(ewma_alpha=1.5)
    with pytest.raises(ValueError):
        BreakerConfig(min_samples=0)
    with pytest.raises(ValueError):
        BreakerConfig(consecutive_limit=0)
    with pytest.raises(ValueError):
        BreakerConfig(cooldown=-1.0)
    with pytest.raises(ValueError):
        BreakerConfig(half_open_probes=0)


def test_deterministic_replay():
    """Same outcome stream, same clock -> identical machine trajectories."""
    def drive(breaker):
        trace = []
        t = 0.0
        for step in range(20):
            allowed = breaker.allow(t)
            if allowed:
                if step % 3 == 0:
                    breaker.record_success(0.01, t)
                else:
                    breaker.record_failure(0.01, t)
            trace.append((allowed, breaker.state.value))
            t += 0.4
        return trace

    assert drive(CircuitBreaker("S", CFG)) == drive(CircuitBreaker("S", CFG))
