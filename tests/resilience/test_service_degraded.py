"""The resilience layer end to end: crash, degrade, recover.

The acceptance scenario of the resilience PR: with one source hard-down,
the service keeps answering (``degraded=true``, zero unhandled
exceptions), its breaker opens within the configured failure threshold and
half-opens after the cooldown — and the degraded answers are *exactly*
what the paper's semantics prescribe for the statically weakened
collection (the dynamic path can never drift from the declarative one).
"""

import asyncio
import json

from repro.confidence.answers import answer_query
from repro.confidence.engine import ConfidenceEngine
from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.resilience import ResilienceConfig, demote
from repro.service import (
    FaultPolicy,
    MediatorService,
    PerSourceGateway,
    RequestStatus,
    SchedulerConfig,
)
from repro.sources import SourceCollection, SourceDescriptor

from tests.conftest import example51_domain, make_example51_collection

DOMAIN = example51_domain(1)
QUERY = parse_rule("ans(x) <- R(x)")

#: Fast-tripping breakers for tests: open on the 2nd failure, short cooldown.
FAST = dict(
    source_timeout=0.05,
    min_samples=1,
    consecutive_limit=2,
    cooldown=0.05,
)


def run(coroutine):
    return asyncio.run(coroutine)


def resilient_config(**overrides):
    return SchedulerConfig(resilience=ResilienceConfig(**{**FAST, **overrides}))


def sound_pair():
    """Two sound-only sources; S2 alone certifies R(c)."""
    return SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1),
                [fact("V1", "a")], 0, 1, name="S1",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "c")], 0, 1, name="S2",
            ),
        ]
    )


class TestDegradedAnswers:
    def test_crashed_source_degrades_but_still_answers(self):
        gateway = PerSourceGateway()
        gateway.set_policy("S2", FaultPolicy(crash=True))

        async def scenario():
            service = MediatorService(
                make_example51_collection(), DOMAIN,
                config=resilient_config(), gateway=gateway,
            )
            async with service:
                responses = [
                    await service.confidence(
                        [fact("R", "a"), fact("R", "b")], timeout=2.0
                    )
                    for _ in range(4)
                ]
            return responses, service.stats()

        responses, stats = run(scenario())
        assert all(r.status is RequestStatus.OK for r in responses)
        assert all(r.degraded for r in responses)
        assert all(r.excluded_sources == ("S2",) for r in responses)
        assert all(r.guarantee == "degraded" for r in responses)
        assert stats["resilience"]["sources"]["S2"]["state"] == "open"
        assert stats["metrics"]["counters"]["responses_degraded"] == 4

    def test_degraded_confidences_match_static_demotion(self):
        """Differential: the running service's degraded confidences equal a
        fresh engine over the statically demoted collection."""
        collection = make_example51_collection()
        gateway = PerSourceGateway()
        gateway.set_policy("S2", FaultPolicy(crash=True))
        wanted = [fact("R", v) for v in "abcd"]

        async def scenario():
            service = MediatorService(
                collection, DOMAIN,
                config=resilient_config(), gateway=gateway,
            )
            async with service:
                for _ in range(3):
                    response = await service.confidence(wanted, timeout=2.0)
            return response

        response = run(scenario())
        assert response.degraded and response.excluded_sources == ("S2",)
        with ConfidenceEngine(demote(collection, {"S2"}), DOMAIN) as engine:
            expected = {f: engine.confidence(f) for f in wanted}
        assert response.confidences == expected

    def test_degraded_query_answers_match_paper_semantics(self):
        """Differential on the query path: degraded certain answers equal
        the certain-answer lower bound of the demoted collection, and the
        downgraded set is the full-minus-degraded difference."""
        collection = sound_pair()
        domain = ["a", "b", "c"]
        gateway = PerSourceGateway()
        gateway.set_policy("S2", FaultPolicy(crash=True))

        async def scenario():
            service = MediatorService(
                collection, domain,
                config=resilient_config(), gateway=gateway,
            )
            async with service:
                for _ in range(3):
                    response = await service.answer(QUERY, timeout=2.0)
            return response

        response = run(scenario())
        assert response.degraded
        degraded_semantics = answer_query(
            QUERY, demote(collection, {"S2"}), domain
        )
        full_semantics = answer_query(QUERY, collection, domain)
        assert frozenset(response.answers) == degraded_semantics.certain
        assert frozenset(response.downgraded_answers) == (
            full_semantics.certain - degraded_semantics.certain
        )
        assert response.downgraded_answers == (fact("ans", "c"),)
        payload = response.to_dict()
        assert payload["answer_guarantees"]["ans('c')"] == "possible"
        assert payload["answer_guarantees"]["ans('a')"] == "certain"
        json.dumps(payload)

    def test_partitioned_source_is_timed_out_and_excluded(self):
        gateway = PerSourceGateway()
        gateway.set_policy("S1", FaultPolicy(partition=True))

        async def scenario():
            service = MediatorService(
                make_example51_collection(), DOMAIN,
                config=resilient_config(source_timeout=0.02),
                gateway=gateway,
            )
            async with service:
                for _ in range(3):
                    response = await service.confidence(
                        [fact("R", "b")], timeout=5.0
                    )
            return response, service.stats()

        response, stats = run(scenario())
        assert response.ok and response.excluded_sources == ("S1",)
        assert stats["metrics"]["counters"]["source_probe_timeouts"] >= 2
        assert stats["resilience"]["sources"]["S1"]["state"] == "open"

    def test_total_source_loss_still_answers(self):
        gateway = PerSourceGateway(default=FaultPolicy(crash=True))

        async def scenario():
            service = MediatorService(
                make_example51_collection(), DOMAIN,
                config=resilient_config(), gateway=gateway,
            )
            async with service:
                for _ in range(3):
                    response = await service.confidence(
                        [fact("R", "a")], timeout=2.0
                    )
            return response

        response = run(scenario())
        assert response.status is RequestStatus.OK
        assert response.excluded_sources == ("S1", "S2")
        # Nothing constrains the worlds: every fact is merely possible.
        assert 0 < response.confidences[fact("R", "a")] < 1


class TestRecovery:
    def test_flap_recover_flap_lifecycle(self):
        """Crash -> open -> heal -> half-open -> closed -> crash -> open,
        with zero non-OK responses end to end."""
        gateway = PerSourceGateway()

        async def scenario():
            service = MediatorService(
                make_example51_collection(), DOMAIN,
                config=resilient_config(), gateway=gateway,
            )
            statuses = []
            async with service:
                async def probe_round(n):
                    for _ in range(n):
                        response = await service.confidence(
                            [fact("R", "a")], timeout=2.0
                        )
                        statuses.append(
                            (response.status, response.degraded)
                        )

                gateway.set_policy("S2", FaultPolicy(crash=True))
                await probe_round(3)          # trips the breaker
                first_states = dict(service.scheduler.resilience.states())
                gateway.heal("S2")
                await asyncio.sleep(0.06)     # past the cooldown
                await probe_round(2)          # half-open probe succeeds
                healed_states = dict(service.scheduler.resilience.states())
                gateway.set_policy("S2", FaultPolicy(crash=True))
                await probe_round(3)          # flaps again
                final = service.stats()
            return statuses, first_states, healed_states, final

        statuses, first_states, healed_states, final = run(scenario())
        assert all(status is RequestStatus.OK for status, _ in statuses)
        assert first_states["S2"] == "open"
        assert healed_states["S2"] == "closed"
        assert final["resilience"]["sources"]["S2"]["state"] == "open"
        counters = final["metrics"]["counters"]
        assert counters["breaker_opened"] >= 2
        assert counters["breaker_half_opened"] >= 1
        assert counters["breaker_closed"] >= 1
        edges = [
            (t["from"], t["to"]) for t in final["resilience"]["transitions"]
        ]
        assert ("closed", "open") in edges
        assert ("open", "half_open") in edges
        assert ("half_open", "closed") in edges

    def test_responses_not_degraded_after_recovery(self):
        gateway = PerSourceGateway()
        gateway.set_policy("S2", FaultPolicy(crash=True))

        async def scenario():
            service = MediatorService(
                make_example51_collection(), DOMAIN,
                config=resilient_config(), gateway=gateway,
            )
            async with service:
                for _ in range(3):
                    degraded = await service.confidence(
                        [fact("R", "a")], timeout=2.0
                    )
                gateway.heal("S2")
                await asyncio.sleep(0.06)
                recovered = await service.confidence(
                    [fact("R", "a")], timeout=2.0
                )
            return degraded, recovered

        degraded, recovered = run(scenario())
        assert degraded.degraded and not recovered.degraded
        assert recovered.guarantee == "certain"
        assert recovered.excluded_sources == ()


class TestHedgedProbes:
    def test_slow_source_hedges_and_wins(self):
        """A source slower than hedge_delay gets duplicate probes; the
        request still succeeds without degradation."""
        gateway = PerSourceGateway()
        gateway.set_policy("S1", FaultPolicy(latency=0.01))

        async def scenario():
            service = MediatorService(
                make_example51_collection(), DOMAIN,
                config=SchedulerConfig(
                    resilience=ResilienceConfig(
                        source_timeout=0.5, hedge_delay=0.002, max_hedges=2,
                        **{
                            k: v for k, v in FAST.items()
                            if k not in ("source_timeout",)
                        },
                    )
                ),
                gateway=gateway,
            )
            async with service:
                response = await service.confidence(
                    [fact("R", "a")], timeout=2.0
                )
            return response, service.stats()

        response, stats = run(scenario())
        assert response.ok and not response.degraded
        assert stats["metrics"]["counters"]["source_hedges"] >= 1
