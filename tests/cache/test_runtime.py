"""The cache runtime: budget, tags, stats, and lock discipline.

Covers the tentpole guarantees of ``repro.cache``: the global byte budget
evicts the globally least-recent entry across enrolled caches (not per
cache), tag- and key-match invalidation retire exactly the derived
entries, the stats tree aggregates uniformly, and concurrent stores
against an active budget neither deadlock nor corrupt accounting.
"""

from __future__ import annotations

import threading

import pytest

from repro.cache import cache_registry
from repro.cache.runtime import (
    CacheRegistry,
    CacheStats,
    LRUMemo,
    default_sizeof,
    sizeof_estimate,
)


def make_registry_pair(budget=None, cost_a=100, cost_b=100):
    registry = CacheRegistry(budget)
    a = registry.enroll(LRUMemo(name="a", sizeof=lambda k, v: cost_a))
    b = registry.enroll(LRUMemo(name="b", sizeof=lambda k, v: cost_b))
    return registry, a, b


class TestLRUMemo:
    def test_lookup_store_and_counters(self):
        memo = LRUMemo(2, sizeof=lambda k, v: 10)
        assert memo.lookup("k") == (False, None)
        memo.store("k", 1)
        assert memo.lookup("k") == (True, 1)
        memo.store("l", 2)
        memo.store("m", 3)  # evicts "k" (capacity 2)
        stats = memo.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 1)
        assert stats.size == 2 and stats.bytes == 20
        assert "k" not in memo and "m" in memo

    def test_store_replaces_without_double_counting_bytes(self):
        memo = LRUMemo(4, sizeof=lambda k, v: v)
        memo.store("k", 100)
        memo.store("k", 7)
        assert memo.bytes == 7
        assert len(memo) == 1

    def test_peek_counts_nothing_and_keeps_recency(self):
        memo = LRUMemo(2)
        memo.store("old", 1)
        memo.store("new", 2)
        assert memo.peek("old") == 1
        assert memo.peek("absent") is None
        memo.store("third", 3)  # "old" must still be the eviction victim
        assert "old" not in memo and "new" in memo
        stats = memo.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_get_or_create_mints_exactly_once(self):
        memo = LRUMemo(8)
        calls = []
        first = memo.get_or_create("k", lambda: calls.append(1) or "v")
        second = memo.get_or_create("k", lambda: calls.append(1) or "other")
        assert first == second == "v"
        assert len(calls) == 1
        assert memo.stats().hits == 1 and memo.stats().misses == 1

    def test_discard_is_not_an_eviction(self):
        memo = LRUMemo(4, sizeof=lambda k, v: 10)
        memo.store("k", 1)
        assert memo.discard("k") is True
        assert memo.discard("k") is False
        stats = memo.stats()
        assert stats.evictions == 0 and stats.bytes == 0

    def test_invalidate_by_tag_and_by_key(self):
        memo = LRUMemo(16)
        memo.store("layout", "x", tags=("world1",))
        memo.store("other", "y", tags=("world2",))
        memo.store("world1", "z")  # key-match: content-addressed entry
        dropped = memo.invalidate_tags(["world1"])
        assert dropped == 2
        assert "other" in memo and "layout" not in memo and "world1" not in memo
        assert memo.stats().invalidations == 2

    def test_tag_index_survives_eviction_and_replacement(self):
        memo = LRUMemo(2)
        memo.store("a", 1, tags=("t",))
        memo.store("b", 2, tags=("t",))
        memo.store("c", 3)  # evicts "a"
        memo.store("b", 4)  # replacing without tags unindexes the old entry
        assert memo.invalidate_tags(["t"]) == 0  # nothing tagged "t" remains
        memo.store("b", 5, tags=("t",))  # re-tagging indexes again
        assert memo.invalidate_tags(["t"]) == 1
        assert len(memo) == 1 and "c" in memo

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LRUMemo(0)

    def test_cache_stats_backward_compatible_shape(self):
        # Pre-runtime code built 5-field CacheStats; the extended tuple
        # must keep those positions and default the new fields.
        stats = CacheStats(hits=1, misses=1, evictions=0, size=1, maxsize=4)
        assert stats.bytes == 0 and stats.invalidations == 0
        assert stats.hit_rate == 0.5
        assert tuple(stats)[:5] == (1, 1, 0, 1, 4)

    def test_sizeof_estimate_is_deterministic_and_positive(self):
        value = {"k": [1, 2, 3], "l": ("a", "b")}
        assert sizeof_estimate(value) == sizeof_estimate(value)
        assert default_sizeof("key", value) > 0


class TestCacheRegistryBudget:
    def test_no_budget_means_no_eviction_beyond_maxsize(self):
        registry, a, _b = make_registry_pair(budget=None)
        for i in range(100):
            a.store(i, i)
        assert len(a) == 100
        assert a.stats().evictions == 0

    def test_budget_bounds_total_bytes(self):
        registry, a, b = make_registry_pair(budget=500)
        for i in range(10):
            a.store(("a", i), i)
            b.store(("b", i), i)
        assert registry.total_bytes() <= 500

    def test_eviction_is_globally_least_recent_across_caches(self):
        registry, a, b = make_registry_pair(budget=10_000)
        a.store("a-old", 1)
        b.store("b-newer", 2)
        a.store("a-newest", 3)
        registry.set_budget(250)  # room for two 100-byte entries
        assert "a-old" not in a  # globally oldest went first
        assert "b-newer" in b and "a-newest" in a

    def test_hit_refreshes_global_recency(self):
        registry, a, b = make_registry_pair(budget=10_000)
        a.store("a1", 1)
        b.store("b1", 2)
        assert a.lookup("a1") == (True, 1)  # refresh: b1 is now oldest
        registry.set_budget(150)
        assert "a1" in a and "b1" not in b

    def test_heavy_cold_entry_yields_to_light_hot_ones(self):
        registry = CacheRegistry()
        heavy = registry.enroll(LRUMemo(name="heavy", sizeof=lambda k, v: 1000))
        light = registry.enroll(LRUMemo(name="light", sizeof=lambda k, v: 10))
        heavy.store("big", 1)
        for i in range(5):
            light.store(i, i)
        registry.set_budget(100)
        assert len(heavy) == 0  # one eviction freed 1000 bytes
        assert len(light) == 5

    def test_budget_zero_evicts_everything(self):
        registry, a, b = make_registry_pair()
        a.store("x", 1)
        b.store("y", 2)
        registry.set_budget(0)
        assert len(a) == 0 and len(b) == 0
        assert registry.total_bytes() == 0

    def test_clearing_budget_restores_unbounded_behavior(self):
        registry, a, _b = make_registry_pair(budget=100)
        registry.set_budget(None)
        for i in range(50):
            a.store(i, i)
        assert len(a) == 50

    def test_negative_budget_rejected(self):
        registry, _a, _b = make_registry_pair()
        with pytest.raises(ValueError):
            registry.set_budget(-1)


class TestCacheRegistryBus:
    def test_enrollment_requires_unique_names(self):
        registry = CacheRegistry()
        registry.enroll(LRUMemo(name="dup"))
        with pytest.raises(ValueError):
            registry.enroll(LRUMemo(name="dup"))
        with pytest.raises(ValueError):
            registry.enroll(LRUMemo())  # anonymous

    def test_invalidate_tags_reports_per_cache_counts(self):
        registry, a, b = make_registry_pair()
        a.store("k1", 1, tags=("w",))
        a.store("k2", 2, tags=("w",))
        b.store("w", 3)  # key match
        b.store("other", 4)
        assert registry.invalidate_tags(["w"]) == {"a": 2, "b": 1}
        assert registry.invalidate_tags(["w"]) == {}
        assert registry.invalidate_tags([]) == {}

    def test_symbol_rollback_flushes_only_id_sensitive_caches(self):
        registry = CacheRegistry()
        ids = registry.enroll(LRUMemo(name="ids"))
        values = registry.enroll(LRUMemo(name="values"), id_sensitive=False)
        ids.store("k", 1)
        values.store("k", 2)
        registry.on_symbol_rollback(0)  # no-op: nothing was truncated
        assert len(ids) == 1
        registry.on_symbol_rollback(3)
        assert len(ids) == 0 and len(values) == 1
        assert ids.stats().invalidations == 1
        assert registry.rollback_flushes == 1

    def test_stats_tree_aggregates_per_cache_counters(self):
        registry, a, b = make_registry_pair(budget=10_000)
        a.store("k", 1)
        a.lookup("k")
        b.lookup("absent")
        tree = registry.stats()
        assert tree["budget_bytes"] == 10_000
        assert set(tree["caches"]) == {"a", "b"}
        assert tree["hits"] == 1 and tree["misses"] == 1
        assert tree["bytes"] == tree["caches"]["a"]["bytes"]
        for leaf in tree["caches"].values():
            assert {
                "hits", "misses", "evictions", "bytes", "invalidations",
                "size", "maxsize", "hit_rate",
            } <= set(leaf)

    def test_clear_all_empties_every_cache(self):
        registry, a, b = make_registry_pair()
        a.store("x", 1)
        b.store("y", 2)
        registry.clear_all()
        assert len(a) == 0 and len(b) == 0


class TestProcessRegistry:
    def test_all_seven_shared_caches_are_enrolled(self):
        # Importing the layers enrolls their module caches; the acceptance
        # criterion names all seven pre-existing module-global caches.
        import repro.confidence.engine.memo  # noqa: F401
        import repro.plan.cache  # noqa: F401
        import repro.plan.executor  # noqa: F401
        import repro.plan.statistics  # noqa: F401
        import repro.shard.executor  # noqa: F401
        import repro.shard.partition  # noqa: F401

        names = {memo.name for memo in cache_registry().caches()}
        assert {
            "engine.memo",
            "plan.plans",
            "plan.data_sources",
            "plan.statistics",
            "shard.partitions",
            "shard.fragment_tokens",
            "shard.portable",
            "shard.worker_stores",
        } <= names

    def test_shared_memo_is_the_enrolled_instance(self):
        from repro.confidence.engine.memo import shared_memo

        registry = cache_registry()
        assert registry.is_enrolled(shared_memo())
        assert registry.cache("engine.memo") is shared_memo()


class TestConcurrency:
    def test_concurrent_stores_under_budget_keep_accounting_sane(self):
        registry = CacheRegistry(budget_bytes=5_000)
        caches = [
            registry.enroll(LRUMemo(name=f"c{i}", sizeof=lambda k, v: 50))
            for i in range(4)
        ]
        errors = []

        def hammer(cache, base):
            try:
                for i in range(200):
                    cache.store((base, i), i)
                    cache.lookup((base, i - 1))
                    if i % 17 == 0:
                        cache.invalidate_tags([(base, i)])
            except Exception as exc:  # pragma: no cover - failure surface
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(cache, n))
            for n, cache in enumerate(caches)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        registry.balance()
        assert registry.total_bytes() <= 5_000
        for cache in caches:
            # accounted bytes must equal 50 per surviving entry exactly
            assert cache.bytes == 50 * len(cache)
