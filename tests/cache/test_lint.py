"""The ad-hoc-cache lint must pass on the checked-in tree (tier-1 guard)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT = REPO_ROOT / "tools" / "check_no_adhoc_caches.py"


def run_lint(root=None):
    argv = [sys.executable, str(LINT)]
    if root is not None:
        argv.append(str(root))
    return subprocess.run(argv, capture_output=True, text=True)


def test_tree_is_free_of_adhoc_module_caches():
    result = subprocess.run(
        [sys.executable, str(LINT)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_lint_catches_violations_and_honours_waivers(tmp_path):
    root = tmp_path / "src" / "repro"
    (root / "cache").mkdir(parents=True)
    (root / "plan").mkdir(parents=True)
    # Inside repro/cache: dict stores are the runtime's own business.
    (root / "cache" / "runtime.py").write_text("_DATA = {}\n")
    (root / "plan" / "bad.py").write_text(
        "from collections import OrderedDict\n"
        "_CACHE = OrderedDict()\n"
    )
    (root / "plan" / "waived.py").write_text(
        "_OPS = {  # adhoc-cache-ok: static operator table\n"
        "    'a': 1,\n"
        "}\n"
    )
    (root / "plan" / "bare_waiver.py").write_text(
        "_X = {}  # adhoc-cache-ok:\n"
    )
    (root / "plan" / "local_ok.py").write_text(
        "def f():\n    cache = {}\n    return cache\n"
    )
    (root / "plan" / "annotated.py").write_text(
        "_D: dict = dict()\n"
    )
    result = run_lint(root)
    assert result.returncode == 1
    assert "bad.py" in result.stdout  # OrderedDict() store flagged
    assert "annotated.py" in result.stdout  # dict() constructor flagged
    assert "bare_waiver.py" in result.stdout  # waiver without a reason
    assert "waived.py" not in result.stdout  # reasoned waiver honoured
    assert "local_ok.py" not in result.stdout  # function-local dict ignored
    assert "runtime.py" not in result.stdout  # repro/cache exempt


def test_lint_passes_on_clean_tree(tmp_path):
    root = tmp_path / "src" / "repro"
    root.mkdir(parents=True)
    (root / "clean.py").write_text("from repro.cache import LRUMemo\n")
    result = run_lint(root)
    assert result.returncode == 0
    assert "no ad-hoc" in result.stdout
