"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; breaking one silently is as bad
as breaking the library. Each runs in-process (cheap) with a fixed argv.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLE_SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLE_SCRIPTS) >= 5
    assert "quickstart.py" in EXAMPLE_SCRIPTS


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_reports_consistency(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "consistent: True" in out
    assert "R('b')" in out


def test_consensus_example_finds_repair(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "trust_and_consensus.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "minimum repair" in out
    assert "rogue" in out
