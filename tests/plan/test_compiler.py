"""Compiler tests: canonical keys, operator shapes, pushdown, errors."""

import pytest

from repro.algebra.ast import (
    AlgebraQuery,
    Product,
    Projection,
    RelationScan,
    Selection,
    UnionNode,
)
from repro.algebra.conditions import And, Col, Comparison, Not, Or
from repro.confidence.engine.memo import LRUMemo
from repro.core.symbols import SymbolTable
from repro.model.terms import Constant
from repro.plan import PlanError, compile_query, plan_for, plan_key
from repro.plan.ir import (
    FilterNode,
    HashJoinNode,
    ProjectNode,
    ScanNode,
    UnionPlanNode,
    UnitNode,
)
from repro.queries import parse_rule


@pytest.fixture
def table():
    return SymbolTable()


class TestCanonicalKeys:
    def test_alpha_renaming_shares_a_key(self, table):
        q1 = parse_rule("ans(x, z) <- E(x, y), F(y, z)")
        q2 = parse_rule("ans(a, c) <- E(a, b), F(b, c)")
        assert plan_key(q1, table) == plan_key(q2, table)

    def test_different_constants_differ(self, table):
        q1 = parse_rule("ans(y) <- E(1, y)")
        q2 = parse_rule("ans(y) <- E(2, y)")
        assert plan_key(q1, table) != plan_key(q2, table)

    def test_body_order_is_part_of_the_written_form(self, table):
        # Canonicalization quotients *renaming*, not body permutation; the
        # stable join order makes permuted bodies compile to the same plan
        # shape anyway, but their keys are honest about the written query.
        q1 = parse_rule("ans(x, z) <- E(x, y), F(y, z)")
        q2 = parse_rule("ans(x, z) <- F(y, z), E(x, y)")
        assert plan_key(q1, table) != plan_key(q2, table)

    def test_head_variable_order_matters(self, table):
        q1 = parse_rule("ans(x, y) <- E(x, y)")
        q2 = parse_rule("ans(y, x) <- E(x, y)")
        assert plan_key(q1, table) != plan_key(q2, table)

    def test_builtin_query_key_carries_registry_token(self, table):
        plain = parse_rule("ans(x, y) <- E(x, y)")
        builtin = parse_rule("ans(x, y) <- E(x, y), Lt(x, y)")
        assert plan_key(plain, table)[-1] == 0
        assert plan_key(builtin, table)[-1] != 0

    def test_algebra_key_distinguishes_shapes(self, table):
        scan = RelationScan("E", 2)
        assert plan_key(scan, table) != plan_key(RelationScan("E", 3), table)
        assert plan_key(Projection((0,), scan), table) != plan_key(scan, table)

    def test_unknown_algebra_subclass_raises(self, table):
        class Weird(AlgebraQuery):
            def evaluate_boxed(self, database):
                return frozenset()

            def width(self):
                return 0

            def relations(self):
                return set()

        with pytest.raises(PlanError):
            plan_key(Weird(), table)


class TestCompiledShapes:
    def test_single_atom_is_scan_then_project(self, table):
        plan = compile_query(parse_rule("ans(x, y) <- E(x, y)"), table)
        assert type(plan.root) is ProjectNode
        assert type(plan.root.child) is ScanNode

    def test_join_uses_hash_join(self, table):
        plan = compile_query(parse_rule("ans(x, z) <- E(x, y), F(y, z)"), table)
        join = plan.root.child
        assert type(join) is HashJoinNode
        assert join.left_keys and join.right_keys

    def test_constants_push_into_the_scan(self, table):
        plan = compile_query(parse_rule("ans(y) <- E(1, y)"), table)
        scan = plan.root.child
        assert type(scan) is ScanNode
        assert scan.const_eq == ((0, table.constant(1)),)

    def test_repeated_variable_pushes_dup_eq(self, table):
        plan = compile_query(parse_rule("ans(x) <- E(x, x)"), table)
        scan = plan.root.child
        assert type(scan) is ScanNode
        assert scan.dup_eq == ((0, 1),)
        assert scan.output == (0,)

    def test_builtin_becomes_a_filter_at_the_bound_point(self, table):
        plan = compile_query(
            parse_rule("ans(x, y) <- E(x, y), Lt(x, y)"), table
        )
        assert type(plan.root.child) is FilterNode

    def test_ground_builtin_becomes_a_prefilter(self, table):
        plan = compile_query(parse_rule("ans() <- Lt(1, 2)"), table)
        assert plan.prefilters
        assert type(plan.root) is ProjectNode
        assert type(plan.root.child) is UnitNode

    def test_head_constant_projects_a_literal(self, table):
        plan = compile_query(parse_rule("ans(x, 7) <- E(x, y)"), table)
        columns = plan.root.columns
        assert not isinstance(columns[1], int)
        assert columns[1].cid == table.constant(7)

    def test_algebra_cross_leaf_equality_becomes_a_join(self, table):
        tree = Selection(
            Comparison(Col(1), "==", Col(2)),
            Product(RelationScan("E", 2), RelationScan("F", 2)),
        )
        plan = compile_query(tree, table)
        assert type(plan.root) is HashJoinNode

    def test_algebra_union_flattens(self, table):
        tree = UnionNode(
            UnionNode(RelationScan("E", 2), RelationScan("F", 2)),
            RelationScan("G", 2),
        )
        plan = compile_query(tree, table)
        assert type(plan.root) is UnionPlanNode
        assert len(plan.root.children) == 3

    def test_or_and_not_compile_as_boxed_filters(self, table):
        tree = Selection(
            Or(
                Comparison(Col(0), "==", Constant(1)),
                Not(Comparison(Col(1), ">", Constant(2))),
            ),
            RelationScan("E", 2),
        )
        plan = compile_query(tree, table)
        assert type(plan.root) is FilterNode

    def test_explain_renders_every_operator(self, table):
        plan = compile_query(
            parse_rule("ans(x, z) <- E(x, y), F(y, z), Lt(x, z)"), table
        )
        text = plan.explain()
        for fragment in ("plan [cq]", "project", "filter", "hash-join", "scan"):
            assert fragment in text


class TestPlanCache:
    def test_alpha_renamings_hit_one_entry(self, table):
        cache = LRUMemo(maxsize=8)
        q1 = parse_rule("ans(x, z) <- E(x, y), F(y, z)")
        q2 = parse_rule("ans(p, r) <- E(p, q), F(q, r)")
        p1 = plan_for(q1, cache=cache, table=table)
        p2 = plan_for(q2, cache=cache, table=table)
        assert p1 is p2
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_distinct_queries_miss(self, table):
        cache = LRUMemo(maxsize=8)
        plan_for(parse_rule("ans(x) <- E(x, y)"), cache=cache, table=table)
        plan_for(parse_rule("ans(y) <- E(x, y)"), cache=cache, table=table)
        assert cache.stats().misses == 2
