"""The statistics catalog: profiling, incremental maintenance, edge cases."""

from repro.model import GlobalDatabase, fact
from repro.plan.statistics import (
    ColumnStats,
    RelationStats,
    TableStatistics,
    cached_statistics,
    clear_statistics,
    discard_statistics,
    statistics_counters,
    statistics_for,
)


def core_of(*facts):
    return GlobalDatabase(facts).core()


def assert_same_statistics(a: TableStatistics, b: TableStatistics):
    """Structural equality: cardinalities and per-column count maps."""
    assert a.total_facts == b.total_facts
    assert a.relations.keys() == b.relations.keys()
    for rid in a.relations:
        left, right = a.relations[rid], b.relations[rid]
        assert left.cardinality == right.cardinality
        assert len(left.columns) == len(right.columns)
        for cl, cr in zip(left.columns, right.columns):
            assert cl.counts == cr.counts


class TestProfile:
    def test_empty_fact_set(self):
        stats = TableStatistics.profile(core_of())
        assert stats.total_facts == 0
        assert stats.relations == {}
        assert stats.cardinality(0) == 0

    def test_unknown_relation_is_exactly_zero(self):
        core = core_of(fact("R", "a"))
        stats = TableStatistics.profile(core)
        missing_rid = max(stats.relations) + 1
        assert stats.relation(missing_rid) is None
        assert stats.cardinality(missing_rid) == 0

    def test_cardinality_and_distincts(self):
        core = core_of(
            fact("R", "a", 1), fact("R", "a", 2), fact("R", "b", 3)
        )
        stats = TableStatistics.profile(core)
        (relation,) = stats.relations.values()
        assert relation.cardinality == 3
        assert relation.column(0).distinct == 2
        assert relation.column(1).distinct == 3
        assert relation.column(2) is None

    def test_all_duplicate_column(self):
        # Every row carries the same value in position 0: one distinct
        # value whose frequency is exactly 1.
        core = core_of(*(fact("R", "same", i) for i in range(10)))
        stats = TableStatistics.profile(core)
        (relation,) = stats.relations.values()
        column = relation.column(0)
        assert column.distinct == 1
        ((cid, count),) = column.most_common()
        assert count == 10
        assert column.frequency(cid, relation.cardinality) == 1.0
        assert column.frequency(cid + 10**6, relation.cardinality) == 0.0

    def test_mcv_sketch_ranks_heavy_hitters_first(self):
        core = core_of(
            *(fact("R", "hot", i) for i in range(8)),
            fact("R", "cold", 100),
        )
        stats = TableStatistics.profile(core)
        (relation,) = stats.relations.values()
        top = relation.column(0).most_common(1)
        assert top[0][1] == 8
        rendered = relation.column(0).explain_mcv(core_of().table)
        assert "'hot'×8" in rendered

    def test_frequency_of_empty_relation_is_zero(self):
        assert ColumnStats().frequency(0, 0) == 0.0


class TestIncremental:
    def test_derive_matches_fresh_profile_after_removal(self):
        base_core = core_of(*(fact("R", f"a{i % 3}", i) for i in range(12)))
        base = TableStatistics.profile(base_core)
        removed = tuple(base_core)[:4]
        derived_core = base_core.without_ids(removed)
        hint = derived_core.derivation()
        derived = TableStatistics.derive(
            base, derived_core, hint.added, hint.removed
        )
        assert derived.incremental
        assert_same_statistics(derived, TableStatistics.profile(derived_core))

    def test_derive_matches_fresh_profile_after_addition(self):
        base_core = core_of(fact("R", "a"), fact("R", "b"))
        extra_core = core_of(fact("R", "c"), fact("S", "x", "y"))
        base = TableStatistics.profile(base_core)
        grown_core = base_core.with_ids(tuple(extra_core))
        hint = grown_core.derivation()
        grown = TableStatistics.derive(
            base, grown_core, hint.added, hint.removed
        )
        assert_same_statistics(grown, TableStatistics.profile(grown_core))

    def test_removing_every_fact_of_a_relation_drops_it(self):
        base_core = core_of(fact("R", "a"), fact("S", "b"))
        base = TableStatistics.profile(base_core)
        s_ids = [
            fid for fid in base_core
            if base_core.table.fact_tuple(fid)[1:]
            == (base_core.table.constant("b"),)
        ]
        derived_core = base_core.without_ids(s_ids)
        hint = derived_core.derivation()
        derived = TableStatistics.derive(
            base, derived_core, hint.added, hint.removed
        )
        assert_same_statistics(derived, TableStatistics.profile(derived_core))
        assert len(derived.relations) == 1

    def test_derive_does_not_mutate_the_base(self):
        base_core = core_of(fact("R", "a"), fact("R", "b"))
        base = TableStatistics.profile(base_core)
        derived_core = base_core.without_ids(tuple(base_core)[:1])
        hint = derived_core.derivation()
        TableStatistics.derive(base, derived_core, hint.added, hint.removed)
        assert_same_statistics(base, TableStatistics.profile(base_core))


class TestCatalog:
    def setup_method(self):
        clear_statistics()

    def teardown_method(self):
        clear_statistics()

    def test_content_addressed_cache_hit(self):
        core = core_of(fact("R", "a"))
        first = statistics_for(core)
        assert statistics_for(core) is first
        assert statistics_counters()["profiled"] == 1

    def test_derived_set_maintains_incrementally(self):
        base_core = core_of(*(fact("R", "a", i) for i in range(20)))
        statistics_for(base_core)
        derived_core = base_core.without_ids(tuple(base_core)[:2])
        derived = statistics_for(derived_core)
        counters = statistics_counters()
        assert derived.incremental
        assert counters["incremental"] == 1
        assert counters["profiled"] == 1
        assert_same_statistics(derived, TableStatistics.profile(derived_core))

    def test_large_delta_falls_back_to_fresh_profile(self):
        base_core = core_of(*(fact("R", "a", i) for i in range(20)))
        statistics_for(base_core)
        derived_core = base_core.without_ids(tuple(base_core)[:18])
        derived = statistics_for(derived_core)
        assert not derived.incremental
        assert statistics_counters()["profiled"] == 2

    def test_statistics_after_snapshot_rollback(self):
        # Remove a delta, then roll it back: the rolled-back set is
        # value-equal to the base, so the catalog must serve the base
        # entry — and it must still describe the base exactly.
        base_core = core_of(*(fact("R", f"v{i}", i) for i in range(10)))
        base_stats = statistics_for(base_core)
        removed = tuple(base_core)[:3]
        derived_core = base_core.without_ids(removed)
        statistics_for(derived_core)
        rolled_back = derived_core.with_ids(removed)
        assert rolled_back == base_core
        assert statistics_for(rolled_back) is base_stats
        assert_same_statistics(
            statistics_for(rolled_back), TableStatistics.profile(base_core)
        )

    def test_discard_statistics(self):
        core = core_of(fact("R", "a"))
        statistics_for(core)
        assert cached_statistics(core) is not None
        assert discard_statistics(core)
        assert cached_statistics(core) is None
        assert not discard_statistics(core)
