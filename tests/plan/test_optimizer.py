"""The cost-based optimizer: ordering, feedback, re-optimization, EXPLAIN."""

from repro.confidence.engine.memo import LRUMemo
from repro.core import global_table
from repro.model import GlobalDatabase, fact
from repro.plan import (
    clear_statistics,
    compile_query,
    data_source_for,
    execute_plan,
    explain,
    explain_analyze,
    plan_for,
    reset_optimizer_stats,
    statistics_for,
)
from repro.plan.analyze import analyze_plan
from repro.plan.optimizer import (
    MAX_REOPTS_PER_PLAN,
    REOPT_MIN_ROWS,
    REOPT_RATIO,
    SCAN_PROBE_FACTOR,
    PlanFeedback,
    optimizer_stats,
    prefer_scan_probe,
    q_error,
)
from repro.queries import evaluate_backtracking, parse_rule


def skewed_database(big=200, small=4):
    return GlobalDatabase(
        [fact("Big", f"k{i % 10}", f"z{i}") for i in range(big)]
        + [fact("Small", f"x{i}", f"k{i}") for i in range(small)]
    )


def answers(plan, source, table):
    constant_value = table.constant_value
    return {
        tuple(constant_value(c) for c in row)
        for row in execute_plan(plan, source)
    }


class TestQError:
    def test_perfect_estimate(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric(self):
        assert q_error(100, 10) == q_error(10, 100)

    def test_missing_estimate_is_neutral(self):
        assert q_error(None, 10**6) == 1.0


class TestPreferScanProbe:
    def test_tiny_probe_side_flags(self):
        assert prefer_scan_probe(1.0, SCAN_PROBE_FACTOR + 1)

    def test_balanced_sides_do_not_flag(self):
        assert not prefer_scan_probe(100.0, 100.0)


class TestFeedback:
    def test_small_results_never_flip_stale(self):
        feedback = PlanFeedback()
        feedback.record(1, REOPT_MIN_ROWS - 1)
        assert not feedback.stale

    def test_large_misestimate_flips_stale(self):
        feedback = PlanFeedback()
        q = feedback.record(1, 1000)
        assert q > REOPT_RATIO
        assert feedback.stale
        assert feedback.max_q_error == q

    def test_accurate_estimates_stay_fresh(self):
        feedback = PlanFeedback()
        feedback.record(1000, 900)
        assert not feedback.stale

    def test_reopt_cap_pins_the_plan(self):
        feedback = PlanFeedback(reopt_count=MAX_REOPTS_PER_PLAN)
        feedback.record(1, 1000)
        assert not feedback.stale


class TestJoinOrder:
    def setup_method(self):
        clear_statistics()
        reset_optimizer_stats()

    def test_optimizer_scans_the_small_relation_first(self):
        database = skewed_database()
        core = database.core()
        query = parse_rule("ans(x, z) <- Big(y, z), Small(x, y)")
        plan = compile_query(query, global_table(), stats=statistics_for(core))
        assert plan.optimizer_info is not None
        assert plan.optimizer_info.startswith("dp join order")
        assert plan.scan_nodes[0].relation == "Small"

    def test_static_compile_keeps_the_syntactic_order(self):
        query = parse_rule("ans(x, z) <- Big(y, z), Small(x, y)")
        plan = compile_query(query, global_table())
        assert plan.optimizer_info is None
        assert plan.feedback is None
        assert plan.scan_nodes[0].relation == "Big"

    def test_single_atom_queries_skip_optimization(self):
        core = GlobalDatabase([fact("R", "a")]).core()
        query = parse_rule("ans(x) <- R(x)")
        plan = compile_query(query, global_table(), stats=statistics_for(core))
        assert plan.optimizer_info is None

    def test_optimized_plan_matches_static_answers(self):
        database = skewed_database()
        core = database.core()
        table = global_table()
        query = parse_rule("ans(x, z) <- Big(y, z), Small(x, y)")
        static = compile_query(query, table)
        optimized = compile_query(query, table, stats=statistics_for(core))
        source = data_source_for(core)
        expected = {
            tuple(c.value for c in a.args)
            for a in evaluate_backtracking(query, database)
        }
        assert answers(static, source, table) == expected
        assert answers(optimized, source, table) == expected

    def test_explain_carries_estimates(self):
        database = skewed_database()
        text = explain(
            parse_rule("ans(x, z) <- Big(y, z), Small(x, y)"),
            database=database,
        )
        assert "optimizer: dp join order" in text
        assert "est=" in text
        assert "scan Small" in text


class TestReoptimization:
    def setup_method(self):
        clear_statistics()
        reset_optimizer_stats()

    def make_worlds(self):
        misleading = GlobalDatabase(
            [fact("Big", "k0", "z0")]
            + [fact("Small", f"x{i}", f"k{i % 2}") for i in range(40)]
        )
        actual = skewed_database(big=400, small=4)
        return misleading, actual

    def test_stale_plan_is_reoptimized_on_next_hit(self):
        misleading, actual = self.make_worlds()
        query = parse_rule("ans(x, z) <- Big(y, z), Small(x, y)")
        cache = LRUMemo(8)
        misled = plan_for(query, cache=cache, facts=misleading.core())
        assert misled.scan_nodes[0].relation == "Big"

        source = data_source_for(actual.core())
        execute_plan(misled, source)
        assert misled.feedback.stale

        adapted = plan_for(query, cache=cache, facts=actual.core())
        assert adapted is not misled
        assert adapted.feedback.reopt_count == 1
        assert "reopt #1" in adapted.optimizer_info
        assert adapted.scan_nodes[0].relation == "Small"
        assert optimizer_stats()["reoptimizations"] == 1

    def test_reoptimization_uses_observed_cardinalities(self):
        misleading, actual = self.make_worlds()
        query = parse_rule("ans(x, z) <- Big(y, z), Small(x, y)")
        cache = LRUMemo(8)
        misled = plan_for(query, cache=cache, facts=misleading.core())
        source = data_source_for(actual.core())
        expected = execute_plan(misled, source)
        adapted = plan_for(query, cache=cache, facts=actual.core())
        # The re-optimized plan answers identically and its estimates are
        # now exact for the world that triggered the feedback.
        assert execute_plan(adapted, source) == expected
        assert adapted.feedback.max_q_error == 1.0

    def test_fresh_plan_without_facts_is_not_reoptimized(self):
        misleading, actual = self.make_worlds()
        query = parse_rule("ans(x, z) <- Big(y, z), Small(x, y)")
        cache = LRUMemo(8)
        misled = plan_for(query, cache=cache, facts=misleading.core())
        execute_plan(misled, data_source_for(actual.core()))
        assert misled.feedback.stale
        # No facts on the cache hit: nothing to re-profile against, the
        # stale plan is served as-is.
        assert plan_for(query, cache=cache) is misled


class TestExplainAnalyze:
    def setup_method(self):
        clear_statistics()
        reset_optimizer_stats()

    def test_analyze_matches_execution(self):
        database = skewed_database()
        core = database.core()
        query = parse_rule("ans(x, z) <- Big(y, z), Small(x, y)")
        plan = compile_query(query, global_table(), stats=statistics_for(core))
        source = data_source_for(core)
        rows, actuals = analyze_plan(plan, source)
        assert rows == execute_plan(plan, source)
        assert actuals[id(plan.root)] == len(rows)

    def test_explain_analyze_renders_actuals(self):
        database = skewed_database()
        query = parse_rule("ans(x, z) <- Big(y, z), Small(x, y)")
        text = explain_analyze(query, database)
        assert "actual=" in text
        assert "answers:" in text
        assert "max q-error:" in text
