"""Executor tests: answers, data-source sharing, caches, boundaries."""

import pytest

from repro.algebra.ast import Product, Projection, RelationScan, Selection
from repro.algebra.conditions import Col, Comparison
from repro.model import GlobalDatabase, fact
from repro.model.terms import Constant
from repro.plan import (
    MAX_DATA_SOURCES,
    clear_data_sources,
    data_source_count,
    data_source_for,
    evaluate,
    evaluate_rows,
    explain,
)
from repro.queries import evaluate_backtracking, evaluate_naive, parse_rule


@pytest.fixture
def db():
    return GlobalDatabase(
        [
            fact("E", 1, 2),
            fact("E", 2, 3),
            fact("E", 3, 3),
            fact("F", 2, "x"),
            fact("F", 3, "y"),
        ]
    )


@pytest.fixture(autouse=True)
def fresh_sources():
    clear_data_sources()
    yield
    clear_data_sources()


class TestAnswers:
    @pytest.mark.parametrize(
        "rule",
        [
            "ans(x, y) <- E(x, y)",
            "ans(x, z) <- E(x, y), F(y, z)",
            "ans(x) <- E(x, x)",
            "ans(y) <- E(1, y)",
            "ans(x, y) <- E(x, y), Lt(x, y)",
            "ans(z) <- E(x, y), E(y, z), Lt(x, z)",
            "ans() <- E(1, 2)",
            "ans() <- E(9, 9)",
        ],
    )
    def test_matches_both_oracles(self, db, rule):
        q = parse_rule(rule)
        expected = evaluate_naive(q, db)
        assert evaluate(q, db) == expected
        assert evaluate_backtracking(q, db) == expected

    def test_algebra_rows_match_boxed_interpreter(self, db):
        tree = Projection(
            (0, 3),
            Selection(
                Comparison(Col(1), "==", Col(2)),
                Product(RelationScan("E", 2), RelationScan("F", 2)),
            ),
        )
        assert evaluate_rows(tree, db) == tree.evaluate_boxed(db)

    def test_projection_constant_column(self, db):
        tree = Projection((Constant("tag"), 0), RelationScan("F", 2))
        rows = evaluate_rows(tree, db)
        assert rows == tree.evaluate_boxed(db)
        assert all(row[0] == Constant("tag") for row in rows)

    def test_empty_database(self):
        empty = GlobalDatabase([])
        q = parse_rule("ans(x, y) <- E(x, y)")
        assert evaluate(q, empty) == frozenset()


class TestDataSourceSharing:
    def test_equal_content_shares_one_source(self, db):
        twin = GlobalDatabase(list(db.facts()))
        source_a = data_source_for(db.core())
        source_b = data_source_for(twin.core())
        assert source_a is source_b
        assert data_source_count() == 1

    def test_scan_rows_cached_across_queries(self, db):
        evaluate(parse_rule("ans(x, y) <- E(x, y)"), db)
        source = data_source_for(db.core())
        scans_before, _ = source.cached_artifacts()
        evaluate(parse_rule("ans(a, b) <- E(a, b)"), db)
        scans_after, _ = source.cached_artifacts()
        assert scans_after == scans_before

    def test_join_index_memoized(self, db):
        q = parse_rule("ans(x, z) <- E(x, y), F(y, z)")
        evaluate(q, db)
        source = data_source_for(db.core())
        _, indexes_before = source.cached_artifacts()
        assert indexes_before >= 1
        evaluate(q, db)
        _, indexes_after = source.cached_artifacts()
        assert indexes_after == indexes_before

    def test_source_registry_is_bounded(self):
        for i in range(MAX_DATA_SOURCES + 10):
            data_source_for(GlobalDatabase([fact("R", i)]).core())
        assert data_source_count() == MAX_DATA_SOURCES

    def test_eviction_exactly_at_capacity(self):
        # Filling to exactly MAX_DATA_SOURCES evicts nothing; the
        # (MAX+1)-th distinct source evicts exactly the least recently
        # used one, and only it.
        first = GlobalDatabase([fact("R", "first")])
        source = data_source_for(first.core())
        victim_db = GlobalDatabase([fact("R", 0)])
        q = parse_rule("ans(x) <- R(x)")
        answers_before = evaluate(q, victim_db)
        victim = data_source_for(victim_db.core())
        for i in range(1, MAX_DATA_SOURCES - 1):
            data_source_for(GlobalDatabase([fact("R", i)]).core())
        assert data_source_count() == MAX_DATA_SOURCES
        assert data_source_for(first.core()) is source  # still resident
        assert data_source_for(victim_db.core()) is victim
        # refresh everything except `victim`, making it the LRU entry
        data_source_for(first.core())
        for i in range(1, MAX_DATA_SOURCES - 1):
            data_source_for(GlobalDatabase([fact("R", i)]).core())
        data_source_for(GlobalDatabase([fact("R", "overflow")]).core())
        assert data_source_count() == MAX_DATA_SOURCES
        assert data_source_for(first.core()) is source  # survivors intact
        # the evicted entry rebuilds as a fresh object...
        rebuilt = data_source_for(victim_db.core())
        assert rebuilt is not victim
        # ...and answers through the rebuilt source are identical
        assert evaluate(q, victim_db) == answers_before == frozenset(
            {fact("ans", 0)}
        )


class TestExplain:
    def test_explain_is_stable_text(self, db):
        q = parse_rule("ans(x, z) <- E(x, y), F(y, z)")
        assert explain(q) == explain(q)
        assert "hash-join" in explain(q)
