"""Tests for plan expansion and rewriting verification."""

import pytest

from repro.exceptions import QueryError
from repro.model import GlobalDatabase, fact
from repro.queries import evaluate, parse_rule
from repro.rewriting import (
    expand_plan,
    is_equivalent_rewriting,
    is_sound_rewriting,
    view_map,
)

V_FULL = parse_rule("VFull(x, y) <- R(x, y)")
V_PROJ = parse_rule("VProj(x) <- R(x, y)")
V_S = parse_rule("VS(y, z) <- S(y, z)")
VIEWS = view_map([V_FULL, V_PROJ, V_S])


class TestViewMap:
    def test_index_by_head(self):
        assert set(VIEWS) == {"VFull", "VProj", "VS"}

    def test_duplicate_rejected(self):
        with pytest.raises(QueryError):
            view_map([V_FULL, parse_rule("VFull(a) <- T(a)")])


class TestExpandPlan:
    def test_identity_like_plan(self):
        plan = parse_rule("ans(x, y) <- VFull(x, y)")
        expansion = expand_plan(plan, VIEWS)
        assert [a.relation for a in expansion.body] == ["R"]
        assert expansion.head == plan.head

    def test_join_plan(self):
        plan = parse_rule("ans(x, z) <- VFull(x, y), VS(y, z)")
        expansion = expand_plan(plan, VIEWS)
        assert sorted(a.relation for a in expansion.body) == ["R", "S"]

    def test_existentials_standardized_apart(self):
        """Two uses of the projection view must not share their y."""
        plan = parse_rule("ans(x, u) <- VProj(x), VProj(u)")
        expansion = expand_plan(plan, VIEWS)
        atoms = list(expansion.body)
        assert atoms[0].args[1] != atoms[1].args[1]

    def test_unknown_view_rejected(self):
        plan = parse_rule("ans(x) <- Mystery(x)")
        with pytest.raises(QueryError):
            expand_plan(plan, VIEWS)

    def test_expansion_semantics(self):
        """Evaluating the expansion over D equals evaluating the plan over
        the exact view instances of D."""
        db = GlobalDatabase(
            [fact("R", 1, 2), fact("R", 3, 4), fact("S", 2, "k")]
        )
        plan = parse_rule("ans(x, z) <- VFull(x, y), VS(y, z)")
        expansion = expand_plan(plan, VIEWS)
        view_instance = GlobalDatabase(
            set(V_FULL.apply(db)) | set(V_S.apply(db)) | set(V_PROJ.apply(db))
        )
        assert evaluate(expansion, db) == evaluate(plan, view_instance)


class TestSoundness:
    def test_equivalent_rewriting(self):
        q = parse_rule("ans(x, y) <- R(x, y)")
        plan = parse_rule("ans(x, y) <- VFull(x, y)")
        assert is_sound_rewriting(plan, q, VIEWS)
        assert is_equivalent_rewriting(plan, q, VIEWS)

    def test_sound_but_not_equivalent(self):
        q = parse_rule("ans(x) <- R(x, y)")
        # joins R with itself through VFull twice: still contained in q
        plan = parse_rule("ans(x) <- VFull(x, y), VFull(y, w)")
        assert is_sound_rewriting(plan, q, VIEWS)
        assert not is_equivalent_rewriting(plan, q, VIEWS)

    def test_unsound_plan_rejected(self):
        q = parse_rule("ans(x) <- R(x, x)")   # diagonal only
        plan = parse_rule("ans(x) <- VProj(x)")  # any first column
        assert not is_sound_rewriting(plan, q, VIEWS)
