"""Tests for executing rewritings over source extensions."""

from fractions import Fraction

import pytest

from repro.model import GlobalDatabase, fact
from repro.queries import evaluate, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.baselines import classify_answer
from repro.rewriting import (
    execute_all,
    execute_annotated,
    execute_plan,
    find_rewritings,
    source_database,
)

V_FULL = parse_rule("VFull(x, y) <- R(x, y)")
V_S = parse_rule("VS(y, z) <- S(y, z)")


def make_collection(r_facts, s_facts, r_quality=(1, 1), s_quality=(1, 1)):
    return SourceCollection(
        [
            SourceDescriptor(
                V_FULL,
                [fact("VFull", *t) for t in r_facts],
                *r_quality,
                name="SR",
            ),
            SourceDescriptor(
                V_S,
                [fact("VS", *t) for t in s_facts],
                *s_quality,
                name="SS",
            ),
        ]
    )


REAL_WORLD = GlobalDatabase(
    [fact("R", 1, 2), fact("R", 3, 4), fact("S", 2, "k"), fact("S", 4, "m")]
)

QUERY = parse_rule("ans(x, z) <- R(x, y), S(y, z)")


class TestSourceDatabase:
    def test_union_of_extensions(self):
        collection = make_collection([(1, 2)], [(2, "k")])
        db = source_database(collection)
        assert fact("VFull", 1, 2) in db and fact("VS", 2, "k") in db


class TestExactSources:
    def test_equivalent_plan_recovers_true_answer(self):
        collection = make_collection(
            [(1, 2), (3, 4)], [(2, "k"), (4, "m")]
        )
        plan = find_rewritings(QUERY, [V_FULL, V_S])[0]
        answers = execute_plan(plan.plan, collection)
        true_answer = evaluate(QUERY, REAL_WORLD)
        assert answers == true_answer

    def test_motro_classification_exact(self):
        collection = make_collection(
            [(1, 2), (3, 4)], [(2, "k"), (4, "m")]
        )
        plan = find_rewritings(QUERY, [V_FULL, V_S])[0]
        answers = execute_plan(plan.plan, collection)
        assert classify_answer(answers, QUERY, REAL_WORLD) == (True, True)


class TestNoisySources:
    def test_incomplete_sources_give_sound_answers(self):
        """Missing extension rows lose answers but never invent them
        (sound sources, sound rewriting)."""
        collection = make_collection(
            [(1, 2)], [(2, "k"), (4, "m")], r_quality=("1/2", 1)
        )
        plan = find_rewritings(QUERY, [V_FULL, V_S])[0]
        answers = execute_plan(plan.plan, collection)
        sound, complete = classify_answer(answers, QUERY, REAL_WORLD)
        assert sound and not complete

    def test_support_scores(self):
        collection = make_collection(
            [(1, 2)], [(2, "k")],
            r_quality=("1/2", "0.9"), s_quality=("1/2", "0.8"),
        )
        plan = find_rewritings(QUERY, [V_FULL, V_S])[0]
        annotated = execute_annotated(plan.plan, collection)
        assert len(annotated) == 1
        answer = annotated[0]
        assert answer.fact == fact("ans", 1, "k")
        assert answer.sources == frozenset({"SR", "SS"})
        assert answer.support == Fraction(9, 10) * Fraction(8, 10)

    def test_support_ordering(self):
        collection = make_collection(
            [(1, 2), (3, 4)], [(2, "k"), (4, "m")],
            r_quality=("1/2", "0.9"), s_quality=("1/2", "0.8"),
        )
        plan = find_rewritings(QUERY, [V_FULL, V_S])[0]
        annotated = execute_annotated(plan.plan, collection)
        supports = [a.support for a in annotated]
        assert supports == sorted(supports, reverse=True)


class TestExecuteAll:
    def test_union_over_plans(self):
        collection = make_collection(
            [(1, 2), (3, 4)], [(2, "k"), (4, "m")]
        )
        plans = find_rewritings(QUERY, [V_FULL, V_S])
        answers = execute_all(plans, collection)
        facts = {a.fact for a in answers}
        assert facts == {fact("ans", 1, "k"), fact("ans", 3, "m")}
