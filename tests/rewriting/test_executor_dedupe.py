"""Regression: support scores are computed once per plan, not per valuation.

``execute_annotated`` used to rebuild the contributing-source set and the
``∏ soundness_bound`` product inside the valuation loop, although both
depend only on the plan's body. On a workload where one answer has many
derivations this recomputed identical scores hundreds of times. The deduped
executor must return byte-identical answers with exactly one score
computation per plan; ``execute_annotated_by_valuation`` keeps the old loop
as the oracle.
"""

from fractions import Fraction

import pytest

from repro.model import fact
from repro.queries import parse_rule
from repro.rewriting import executor
from repro.rewriting.executor import (
    execute_annotated,
    execute_annotated_by_valuation,
    execute_all,
)
from repro.sources import SourceCollection, SourceDescriptor


@pytest.fixture
def collection():
    # E is a dense bipartite hop: ans(x, z) <- E(x, y), F(y, z) derives each
    # answer through every middle vertex, so valuations >> answers.
    middles = ["m1", "m2", "m3", "m4"]
    e_facts = [fact("VE", s, m) for s in ("a", "b") for m in middles]
    f_facts = [fact("VF", m, t) for m in middles for t in ("s", "t")]
    return SourceCollection(
        [
            SourceDescriptor(
                parse_rule("VE(x, y) <- E(x, y)"), e_facts,
                0, Fraction(3, 4), name="SE",
            ),
            SourceDescriptor(
                parse_rule("VF(y, z) <- F(y, z)"), f_facts,
                0, Fraction(1, 2), name="SF",
            ),
        ]
    )


PLAN = parse_rule("ans(x, z) <- VE(x, y), VF(y, z)")


def score_delta(fn, *args, **kwargs):
    before = executor.score_computations()
    result = fn(*args, **kwargs)
    return result, executor.score_computations() - before


class TestDedupedScores:
    def test_answers_identical_to_per_valuation_oracle(self, collection):
        deduped, _ = score_delta(execute_annotated, PLAN, collection)
        oracle, _ = score_delta(
            execute_annotated_by_valuation, PLAN, collection
        )
        assert deduped == oracle
        assert deduped  # the workload actually produces answers
        assert all(a.support == Fraction(3, 8) for a in deduped)
        assert all(a.sources == frozenset({"SE", "SF"}) for a in deduped)

    def test_one_score_computation_per_plan(self, collection):
        _, work = score_delta(execute_annotated, PLAN, collection)
        assert work == 1

    def test_oracle_recomputes_per_valuation(self, collection):
        # 2 starts x 4 middles x 2 targets = 16 valuations.
        _, work = score_delta(
            execute_annotated_by_valuation, PLAN, collection
        )
        assert work == 16

    def test_execute_all_shares_the_source_database(self, collection):
        plans = [PLAN, parse_rule("ans2(x, y) <- VE(x, y)")]
        result, work = score_delta(execute_all, plans, collection)
        assert work == len(plans)
        assert result
