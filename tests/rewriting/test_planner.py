"""Tests for the bucket planner and rewriting search."""

import pytest

from repro.exceptions import QueryError
from repro.model import GlobalDatabase, fact
from repro.queries import evaluate, parse_rule
from repro.rewriting import (
    best_rewriting,
    bucket_candidates,
    find_rewritings,
)

V_FULL = parse_rule("VFull(x, y) <- R(x, y)")
V_PROJ = parse_rule("VProj(x) <- R(x, y)")
V_S = parse_rule("VS(y, z) <- S(y, z)")
V_JOINED = parse_rule("VJ(x, z) <- R(x, y), S(y, z)")


class TestBuckets:
    def test_candidates_for_covered_atom(self):
        q = parse_rule("ans(x, y) <- R(x, y)")
        atom = q.relational_body()[0]
        candidates = bucket_candidates(atom, V_FULL)
        assert len(candidates) == 1
        assert candidates[0].relation == "VFull"

    def test_view_without_matching_atom(self):
        q = parse_rule("ans(y, z) <- S(y, z)")
        atom = q.relational_body()[0]
        assert bucket_candidates(atom, V_FULL) == []

    def test_join_view_offers_both_atoms(self):
        q = parse_rule("ans(x, y) <- R(x, y)")
        atom = q.relational_body()[0]
        assert len(bucket_candidates(atom, V_JOINED)) == 1  # one R atom inside


class TestFindRewritings:
    def test_equivalent_plan_found_and_first(self):
        q = parse_rule("ans(x, z) <- R(x, y), S(y, z)")
        rewritings = find_rewritings(q, [V_FULL, V_PROJ, V_S])
        assert rewritings
        assert rewritings[0].equivalent
        assert str(rewritings[0].plan) == "ans(x, z) <- VFull(x, y), VS(y, z)"

    def test_all_returned_plans_verified_sound(self):
        q = parse_rule("ans(x, z) <- R(x, y), S(y, z)")
        db = GlobalDatabase(
            [fact("R", 1, 2), fact("R", 5, 9), fact("S", 2, "k")]
        )
        for rewriting in find_rewritings(q, [V_FULL, V_PROJ, V_S, V_JOINED]):
            assert evaluate(rewriting.expansion, db) <= evaluate(q, db)

    def test_projection_only_views_cannot_join(self):
        q = parse_rule("ans(x, z) <- R(x, y), S(y, z)")
        rewritings = find_rewritings(q, [V_PROJ, V_S])
        # VProj loses the join variable: no sound plan exists
        assert rewritings == []

    def test_uncoverable_atom_no_plans(self):
        q = parse_rule("ans(x) <- T(x)")
        assert find_rewritings(q, [V_FULL]) == []

    def test_joined_view_answers_join_query(self):
        q = parse_rule("ans(x, z) <- R(x, y), S(y, z)")
        rewritings = find_rewritings(q, [V_JOINED])
        # VJ exposes exactly the join: but buckets need BOTH atoms covered,
        # each by VJ; plan VJ(x,z), VJ(x,z) collapses to one atom
        assert rewritings
        assert any(r.equivalent for r in rewritings)

    def test_builtins_rejected(self):
        q = parse_rule("ans(x) <- R(x, y), After(y, 0)")
        with pytest.raises(QueryError):
            find_rewritings(q, [V_FULL])

    def test_candidate_cap(self):
        q = parse_rule("ans(x, y) <- R(x, y)")
        with pytest.raises(QueryError):
            find_rewritings(q, [V_FULL], max_candidates=0)


class TestBestRewriting:
    def test_prefers_equivalent(self):
        q = parse_rule("ans(x) <- R(x, y)")
        best = best_rewriting(q, [V_FULL, V_PROJ])
        assert best is not None and best.equivalent

    def test_none_when_impossible(self):
        q = parse_rule("ans(x) <- T(x)")
        assert best_rewriting(q, [V_FULL]) is None
