"""Differential tests: interned fast paths vs preserved boxed baselines.

Each test runs the same workload through the interned implementation and
through the boxed reference (``repro.core.baseline``,
``check_consistency_boxed``) and asserts exact agreement — verdicts,
witnesses, decompositions, and admits decisions.
"""

from __future__ import annotations

import pickle
from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core import global_table, to_core_collection, to_core_database
from repro.core.baseline import boxed_signature_decomposition
from repro.confidence.blocks import IdentityInstance
from repro.consistency.checker import (
    check_consistency,
    check_consistency_boxed,
)
from repro.model import Atom, GlobalDatabase, Variable, fact
from repro.queries import identity_view
from repro.queries.conjunctive import ConjunctiveQuery
from repro.sources import SourceCollection, SourceDescriptor

from tests.property.strategies import identity_collections, unary_databases

DOMAIN = ["a", "b", "c", "d", "e"]


def general_collection(bounds=("1/2", "1/2")):
    """A small non-identity collection (joins force the generic search)."""
    x, y = Variable("x"), Variable("y")
    v1 = ConjunctiveQuery(Atom("V1", (x,)), [Atom("R", (x, y))])
    v2 = ConjunctiveQuery(Atom("V2", (x, y)), [Atom("R", (x, y)), Atom("P", (y,))])
    return SourceCollection(
        [
            SourceDescriptor(v1, [fact("V1", "a")], *bounds, name="S1"),
            SourceDescriptor(v2, [fact("V2", "a", "b")], *bounds, name="S2"),
        ]
    )


class TestConsistencyAgreement:
    def assert_agree(self, collection, **caps):
        interned = check_consistency(collection, **caps)
        boxed = check_consistency_boxed(collection, **caps)
        assert interned.consistent == boxed.consistent
        assert interned.decisive == boxed.decisive
        assert interned.method == boxed.method
        assert interned.combinations_tried == boxed.combinations_tried
        if interned.consistent:
            assert interned.witness == boxed.witness
        return interned

    def test_satisfiable_general_collection(self):
        result = self.assert_agree(general_collection())
        assert result.consistent

    def test_unsatisfiable_general_collection(self):
        collection = general_collection(bounds=(Fraction(1), Fraction(1)))
        x = Variable("x")
        impossible = SourceCollection(
            list(collection)
            + [
                SourceDescriptor(
                    ConjunctiveQuery(Atom("V3", (x,)), [Atom("P", (x,))]),
                    [],
                    Fraction(1),
                    Fraction(1),
                    name="S3",
                )
            ]
        )
        self.assert_agree(impossible)

    def test_truncation_points_match(self):
        # Starving the quotient cap must truncate both searches identically.
        result = self.assert_agree(general_collection(), max_quotients=3)
        interned = check_consistency(general_collection(), max_quotients=3)
        assert interned.method in {"canonical-freeze", "truncated", "exhausted",
                                   "quotient-search"}
        assert interned.method == result.method

    @settings(deadline=None, max_examples=25)
    @given(identity_collections())
    def test_identity_collections_agree(self, collection):
        self.assert_agree(collection)


class TestDecompositionAgreement:
    @settings(deadline=None, max_examples=50)
    @given(identity_collections())
    def test_blocks_match_boxed_reference(self, collection):
        interned = IdentityInstance(collection, DOMAIN)
        boxed = boxed_signature_decomposition(collection, DOMAIN)
        assert interned.relation == boxed.relation
        assert interned.anonymous_size == boxed.anonymous_size
        assert tuple(
            (tuple(sorted(b.signature)), b.facts) for b in interned.blocks
        ) == boxed.blocks
        assert tuple(interned.extensions) == boxed.extensions

    def test_domain_violation_message_matches_boxed(self):
        collection = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "zz")],
                    "1/2",
                    "1/2",
                    name="S1",
                )
            ]
        )
        from repro.exceptions import SourceError

        with pytest.raises(SourceError) as interned:
            IdentityInstance(collection, ["a", "b"])
        with pytest.raises(SourceError) as boxed:
            boxed_signature_decomposition(collection, ["a", "b"])
        assert str(interned.value) == str(boxed.value)


class TestAdmitsAgreement:
    @settings(deadline=None, max_examples=50)
    @given(identity_collections(), unary_databases())
    def test_core_admits_agrees_with_boxed(self, collection, database):
        table = global_table()
        core = to_core_collection(table, collection)
        assert core.admits(to_core_database(table, database)) == (
            collection.admits(database)
        )

    @settings(deadline=None, max_examples=25)
    @given(identity_collections(), unary_databases())
    def test_core_measures_agree(self, collection, database):
        table = global_table()
        core = to_core_collection(table, collection)
        facts = to_core_database(table, database)
        for boxed_source, core_source in zip(collection, core):
            assert core_source.completeness(facts) == (
                boxed_source.completeness(database)
            )
            assert core_source.soundness(facts) == (
                boxed_source.soundness(database)
            )


class TestInstancePickling:
    def test_instance_roundtrips_and_rebuilds_id_caches(self):
        collection = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a"), fact("V1", "b")],
                    "1/2",
                    "1/2",
                    name="S1",
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1),
                    [fact("V2", "b"), fact("V2", "c")],
                    "1/2",
                    "1/2",
                    name="S2",
                ),
            ]
        )
        instance = IdentityInstance(collection, DOMAIN)
        instance.block_of(fact("R", "a"))  # populate the ID caches
        clone = pickle.loads(pickle.dumps(instance))
        assert clone.extension_sizes == instance.extension_sizes
        assert [b.facts for b in clone.blocks] == [
            b.facts for b in instance.blocks
        ]
        assert clone.extensions == instance.extensions
        for value in ("a", "b", "c", "d"):
            probe = fact("R", value)
            assert clone.block_of(probe) == instance.block_of(probe)
            assert clone.in_fact_space(probe) == instance.in_fact_space(probe)

    def test_tableau_and_database_pickle_without_core_caches(self):
        from repro.tableaux.tableau import Tableau

        database = GlobalDatabase([fact("R", "a"), fact("R", "b")])
        tableau = Tableau([Atom("R", (Variable("x"),))])
        assert tableau.embeds_in(database)  # populate both core caches
        database_clone = pickle.loads(pickle.dumps(database))
        tableau_clone = pickle.loads(pickle.dumps(tableau))
        assert database_clone == database
        assert tableau_clone == tableau
        assert tableau_clone.embeds_in(database_clone)
