"""The hot-path lint must pass on the checked-in tree (tier-1 guard)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_hot_modules_are_free_of_boxed_construction():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_no_boxed_hotpath.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_lint_catches_a_violation(tmp_path):
    hot = tmp_path / "src" / "repro" / "core"
    hot.mkdir(parents=True)
    for module in (
        "symbols.py",
        "iatoms.py",
        "factset.py",
        "views.py",
    ):
        (hot / module).write_text("x = 1\n")
    (tmp_path / "src" / "repro" / "tableaux").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "consistency").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "confidence" / "engine").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "tableaux" / "core.py").write_text(
        "bad = Constant('a')\n"
    )
    (tmp_path / "src" / "repro" / "consistency" / "coresearch.py").write_text(
        "ok = set()\nwaived = frozenset([1])  # boxed-ok: ints\n"
    )
    (tmp_path / "src" / "repro" / "confidence" / "engine" / "kernel.py").write_text(
        "s = frozenset(signature)\n"
    )
    (tmp_path / "src" / "repro" / "confidence" / "engine" / "memo.py").write_text(
        '"""Docstrings may say Constant( freely."""\nx = 2\n'
    )
    result = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "tools" / "check_no_boxed_hotpath.py"),
            str(tmp_path),
        ],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 1
    assert "tableaux/core.py" in result.stdout  # Constant( construction
    assert "kernel.py" in result.stdout  # frozenset( construction
    assert "coresearch.py" not in result.stdout  # waiver honoured
    assert "memo.py" not in result.stdout  # docstring mention ignored
