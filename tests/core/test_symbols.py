"""Unit tests for the symbol table: interning, namespaces, transactions."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.core import IAtom, IFactSet, SymbolTable, global_table
from repro.exceptions import ModelError


def test_constant_interning_is_idempotent():
    table = SymbolTable()
    assert table.constant("a") == table.constant("a")
    assert table.constant("a") != table.constant("b")
    assert table.constant("a") >= 0


def test_constant_equality_mirrors_boxed_semantics():
    # Constant(1) == Constant(True) == Constant(1.0) in the boxed model
    # (Python value equality); interning collides identically.
    table = SymbolTable()
    assert table.constant(1) == table.constant(True)
    assert table.constant(1) == table.constant(1.0)
    assert table.constant(0) != table.constant("")


def test_unhashable_constant_raises():
    table = SymbolTable()
    with pytest.raises(ModelError):
        table.constant(["not", "hashable"])


def test_variable_ids_are_negative_and_disjoint():
    table = SymbolTable()
    x = table.variable("x")
    assert x < 0
    assert table.variable("x") == x
    assert table.variable("y") != x
    # Same spelling in both namespaces never collides: sign discriminates.
    assert table.constant("x") >= 0
    assert table.variable_name(x) == "x"
    with pytest.raises(ModelError):
        table.variable("")


def test_fact_interning_and_reverse_lookup():
    table = SymbolTable()
    r = table.relation("R")
    a, b = table.constant("a"), table.constant("b")
    fid = table.fact(r, (a, b))
    assert table.fact(r, (a, b)) == fid
    assert table.fact_tuple(fid) == (r, a, b)
    assert table.fact_relation(fid) == r
    assert table.fact_args(fid) == (a, b)
    assert table.fact(r, (b, a)) != fid


def test_fact_rejects_variable_ids():
    table = SymbolTable()
    r = table.relation("R")
    x = table.variable("x")
    with pytest.raises(ModelError):
        table.fact(r, (x,))


def test_iatoms_are_hash_consed():
    table = SymbolTable()
    r = table.relation("R")
    x = table.variable("x")
    a = table.constant("a")
    atom = table.iatom(r, (x, a))
    assert table.iatom(r, (x, a)) is atom
    assert isinstance(atom, IAtom)
    assert not atom.ground
    assert table.iatom(r, (a, a)).ground
    assert atom.variable_ids() == (x,)
    assert atom.constant_ids() == (a,)


def test_find_lookups_do_not_grow():
    table = SymbolTable()
    before = table.counts()
    assert table.find_constant("nope") is None
    assert table.find_relation("nope") is None
    assert table.find_fact(0, (0,)) is None
    assert table.find_constant(["unhashable"]) is None
    assert table.counts() == before


def test_snapshot_rollback_truncates_every_namespace():
    table = SymbolTable()
    r = table.relation("R")
    a = table.constant("a")
    table.fact(r, (a,))
    snap = table.snapshot()

    b = table.constant("b")
    table.variable("x")
    s = table.relation("S")
    table.fact(r, (b,))
    table.iatom(s, (b,))
    removed = table.rollback(snap)

    assert removed == 5
    assert table.counts() == snap
    assert table.find_constant("b") is None
    assert table.find_relation("S") is None
    # Pre-snapshot symbols survive with their IDs intact.
    assert table.constant("a") == a
    assert table.relation("R") == r
    # Re-interning after rollback reuses the freed dense range.
    assert table.constant("z") == b


def test_rollback_under_exclusive_lock_is_thread_safe():
    table = SymbolTable()
    stop = threading.Event()
    errors = []

    def intern_loop():
        i = 0
        while not stop.is_set():
            try:
                cid = table.constant(f"bg{i % 50}")
                if table.constant_value(cid) != f"bg{i % 50}":
                    errors.append("id remapped under rollback")
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(repr(exc))
            i += 1

    thread = threading.Thread(target=intern_loop)
    thread.start()
    try:
        for round_ in range(200):
            with table.exclusive():
                snap = table.snapshot()
                table.constant(("txn", round_))
                table.relation(f"Txn{round_}")
                table.rollback(snap)
                assert table.counts() == snap
    finally:
        stop.set()
        thread.join()
    assert errors == []


def test_global_table_is_shared():
    assert global_table() is global_table()


def test_factset_pickles_by_value_not_by_table():
    table = global_table()
    r = table.relation("R_pickle")
    fid = table.fact(r, (table.constant("pkl"),))
    facts = IFactSet(table, {fid})
    # The table holds an RLock: shipping raw IDs across processes is a bug
    # by design, so IFactSet must refuse (or at minimum the table must).
    with pytest.raises(Exception):
        pickle.dumps(facts)
