"""Unit tests for IFactSet: membership, algebra, relational index."""

from __future__ import annotations

from array import array

from repro.core import IFactSet, SymbolTable


def make_table():
    table = SymbolTable()
    r = table.relation("R")
    s = table.relation("S")
    fids_r = [table.fact(r, (table.constant(i),)) for i in range(5)]
    fids_s = [table.fact(s, (table.constant(i), table.constant(i))) for i in range(3)]
    return table, r, s, fids_r, fids_s


def test_membership_and_len():
    table, _, _, fids_r, fids_s = make_table()
    facts = IFactSet(table, fids_r[:3])
    assert len(facts) == 3
    assert fids_r[0] in facts
    assert fids_r[4] not in facts
    assert fids_s[0] not in facts or fids_s[0] in fids_r[:3]


def test_sorted_ids_is_a_sorted_int_array():
    table, _, _, fids_r, _ = make_table()
    facts = IFactSet(table, reversed(fids_r))
    ids = facts.sorted_ids()
    assert isinstance(ids, array)
    assert list(ids) == sorted(fids_r)
    assert list(facts) == sorted(fids_r)


def test_set_algebra():
    table, _, _, fids_r, _ = make_table()
    left = IFactSet(table, fids_r[:3])
    right = IFactSet(table, fids_r[2:])
    assert (left | right).ids() == frozenset(fids_r)
    assert (left & right).ids() == frozenset(fids_r[2:3])
    assert (left - right).ids() == frozenset(fids_r[:2])
    assert left.union(right) == left | right
    assert left.with_ids([fids_r[4]]).ids() == frozenset(fids_r[:3] + fids_r[4:])
    assert left.without_ids([fids_r[0]]).ids() == frozenset(fids_r[1:3])


def test_equality_and_hash_by_content():
    table, _, _, fids_r, _ = make_table()
    assert IFactSet(table, fids_r) == IFactSet(table, list(reversed(fids_r)))
    assert hash(IFactSet(table, fids_r)) == hash(IFactSet(table, fids_r))
    assert IFactSet(table, fids_r[:1]) <= IFactSet(table, fids_r)
    assert IFactSet(table, fids_r[:1]) < IFactSet(table, fids_r)


def test_by_relation_index():
    table, r, s, fids_r, fids_s = make_table()
    facts = IFactSet(table, fids_r[:2] + fids_s)
    assert facts.by_relation(r) == frozenset(fids_r[:2])
    assert facts.by_relation(s) == frozenset(fids_s)
    assert facts.by_relation(999) == frozenset()
    assert facts.relations() == tuple(sorted((r, s)))


def test_empty_factset():
    table = SymbolTable()
    empty = IFactSet(table)
    assert len(empty) == 0
    assert list(empty) == []
    assert empty.relations() == ()
