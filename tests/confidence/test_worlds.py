"""Tests for possible-world enumeration."""

import pytest

from repro.exceptions import DomainTooLargeError, SourceError
from repro.model import GlobalDatabase, fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence.worlds import (
    count_possible_worlds,
    fact_space,
    is_consistent_over,
    possible_worlds,
    possible_worlds_identity,
)

from tests.conftest import example51_domain, make_example51_collection


class TestFactSpace:
    def test_identity_space(self, example51):
        space = fact_space(example51, ["a", "b"])
        assert space == [fact("R", "a"), fact("R", "b")]

    def test_multi_relation_space(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    parse_rule("V(x) <- R(x, y), S(y)"), [], 0, 0, name="A"
                )
            ]
        )
        space = fact_space(col, ["a", "b"])
        assert len(space) == 4 + 2  # R/2 and S/1


class TestEnumeration:
    def test_example51_m1(self, example51):
        worlds = set(possible_worlds(example51, example51_domain(1)))
        assert len(worlds) == 7
        assert GlobalDatabase([fact("R", "b")]) in worlds
        assert GlobalDatabase([]) not in worlds

    def test_every_world_admitted(self, example51):
        for world in possible_worlds(example51, example51_domain(1)):
            assert example51.admits(world)

    def test_max_facts_cutoff(self, example51):
        small = list(possible_worlds(example51, example51_domain(1), max_facts=1))
        assert small == [GlobalDatabase([fact("R", "b")])]

    def test_count(self, example51):
        assert count_possible_worlds(example51, example51_domain(1)) == 7

    def test_consistency_probe(self, example51):
        assert is_consistent_over(example51, example51_domain(1))

    def test_inconsistent_over_domain(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 1, 1, name="S1"
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1), [fact("V2", "b")], 0, 1, name="S2"
                ),
            ]
        )
        assert not is_consistent_over(col, ["a", "b"])

    def test_domain_guard(self, example51):
        with pytest.raises(DomainTooLargeError):
            list(possible_worlds(example51, example51_domain(30)))


class TestIdentityRoute:
    def test_agrees_with_generic(self, example51):
        domain = example51_domain(1)
        generic = set(possible_worlds(example51, domain))
        identity = set(possible_worlds_identity(example51, domain))
        assert generic == identity

    def test_requires_identity(self):
        col = SourceCollection(
            [SourceDescriptor(parse_rule("V(x) <- R(x, y)"), [], 0, 0, name="A")]
        )
        with pytest.raises(SourceError):
            list(possible_worlds_identity(col, ["a"]))


class TestGeneralViews:
    def test_projection_view_worlds(self):
        view = parse_rule("V(x) <- R(x, y)")
        col = SourceCollection(
            [SourceDescriptor(view, [fact("V", "a")], 1, 1, name="S1")]
        )
        worlds = list(possible_worlds(col, ["a", "b"]))
        assert worlds  # consistent
        for world in worlds:
            derived = {f.args[0].value for f in view.apply(world)}
            assert derived == {"a"}
