"""Canonical memo keys (alpha-equivalence) and LRU cache behaviour."""

from fractions import Fraction

from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence import IdentityInstance
from repro.confidence.engine import LRUMemo, canonical_key, kernel
from repro.confidence.engine.kernel import ReducedProblem


def problem(signatures, sizes, min_sound, completeness, anonymous,
            seed_sound=None, seed_total=0):
    n = len(min_sound)
    return ReducedProblem(
        signatures=tuple(tuple(sig) for sig in signatures),
        sizes=tuple(sizes),
        min_sound=tuple(min_sound),
        completeness=tuple(completeness),
        anonymous_size=anonymous,
        seed_sound=tuple(seed_sound) if seed_sound else (0,) * n,
        seed_total=seed_total,
    )


BASE = problem(
    signatures=[(0,), (0, 1), (1,)],
    sizes=[1, 1, 1],
    min_sound=[1, 1],
    completeness=[Fraction(1, 2), Fraction(1, 3)],
    anonymous=4,
)


def permute_sources(p: ReducedProblem, perm) -> ReducedProblem:
    """Relabel source i as perm[i], keeping block order."""
    inverse = {new: old for old, new in enumerate(perm)}
    return ReducedProblem(
        signatures=tuple(
            tuple(sorted(perm[i] for i in sig)) for sig in p.signatures
        ),
        sizes=p.sizes,
        min_sound=tuple(p.min_sound[inverse[i]] for i in range(len(perm))),
        completeness=tuple(
            p.completeness[inverse[i]] for i in range(len(perm))
        ),
        anonymous_size=p.anonymous_size,
        seed_sound=tuple(p.seed_sound[inverse[i]] for i in range(len(perm))),
        seed_total=p.seed_total,
    )


def test_key_invariant_under_source_permutation():
    swapped = permute_sources(BASE, (1, 0))
    assert canonical_key(BASE) == canonical_key(swapped)
    # Sanity: the two renderings really describe the same count.
    assert kernel.solve(BASE)[0] == kernel.solve(swapped)[0]


def test_key_invariant_under_block_reordering():
    reordered = ReducedProblem(
        signatures=(BASE.signatures[2], BASE.signatures[0], BASE.signatures[1]),
        sizes=(BASE.sizes[2], BASE.sizes[0], BASE.sizes[1]),
        min_sound=BASE.min_sound,
        completeness=BASE.completeness,
        anonymous_size=BASE.anonymous_size,
        seed_sound=BASE.seed_sound,
        seed_total=BASE.seed_total,
    )
    assert canonical_key(BASE) == canonical_key(reordered)


def test_key_invariant_under_symmetric_tie():
    # Both sources have identical profiles: only the exact permutation
    # tie-break can collapse the two renderings.
    symmetric = problem(
        signatures=[(0,), (1,)],
        sizes=[2, 2],
        min_sound=[1, 1],
        completeness=[Fraction(1, 2), Fraction(1, 2)],
        anonymous=3,
    )
    swapped = permute_sources(symmetric, (1, 0))
    assert canonical_key(symmetric) == canonical_key(swapped)


def test_fact_renaming_collides_via_instances():
    def collection(values):
        return SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", v) for v in values[:2]],
                    "1/2", "1/2", name="S1",
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1),
                    [fact("V2", v) for v in values[1:3]],
                    "1/2", "1/2", name="S2",
                ),
            ]
        )

    spec_1 = kernel.spec_of(
        IdentityInstance(collection(["a", "b", "c"]), ["a", "b", "c", "d"])
    )
    spec_2 = kernel.spec_of(
        IdentityInstance(collection(["p", "q", "r"]), ["p", "q", "r", "s"])
    )
    assert canonical_key(kernel.reduce_spec(spec_1)) == canonical_key(
        kernel.reduce_spec(spec_2)
    )


def test_distinct_bounds_get_distinct_keys():
    tighter = BASE._replace(completeness=(Fraction(1, 2), Fraction(1, 2)))
    assert canonical_key(BASE) != canonical_key(tighter)
    stronger = BASE._replace(min_sound=(2, 1))
    assert canonical_key(BASE) != canonical_key(stronger)
    seeded = BASE._replace(seed_sound=(1, 0), seed_total=1)
    assert canonical_key(BASE) != canonical_key(seeded)
    bigger_anonymous = BASE._replace(anonymous_size=5)
    assert canonical_key(BASE) != canonical_key(bigger_anonymous)


def test_lru_counters_and_eviction():
    memo = LRUMemo(2)
    hit, _ = memo.lookup("k1")
    assert not hit
    memo.store("k1", 10)
    memo.store("k2", 20)
    hit, value = memo.lookup("k1")
    assert hit and value == 10
    memo.store("k3", 30)  # k2 is now least recent -> evicted
    assert "k2" not in memo
    assert "k1" in memo and "k3" in memo
    stats = memo.stats()
    assert stats.hits == 1
    assert stats.misses == 1  # only lookup() counts; __contains__ does not
    assert stats.evictions == 1
    assert stats.size == 2
    assert 0 < stats.hit_rate < 1
    memo.clear()
    assert len(memo) == 0


def test_lru_store_is_idempotent_for_size():
    memo = LRUMemo(2)
    memo.store("k", 1)
    memo.store("k", 1)
    assert len(memo) == 1
    assert memo.stats().evictions == 0
