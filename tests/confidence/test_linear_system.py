"""Tests for the explicit Γ system of Section 5.1."""

from fractions import Fraction

import pytest

from repro.exceptions import DomainTooLargeError
from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence import GammaSystem, IdentityInstance

from tests.conftest import example51_domain, make_example51_collection


@pytest.fixture
def gamma():
    return GammaSystem(
        IdentityInstance(make_example51_collection(), example51_domain(1))
    )


class TestConstruction:
    def test_variable_count(self, gamma):
        assert gamma.n_variables == 4  # a, b, c, d1

    def test_two_inequalities_per_source(self, gamma):
        assert len(gamma.inequalities) == 4
        labels = {i.label for i in gamma.inequalities}
        assert "completeness[S1]" in labels and "soundness[S2]" in labels

    def test_completeness_coefficients(self, gamma):
        """Members get (1−c), non-members −c — the paper's final form."""
        ineq = next(i for i in gamma.inequalities if i.label == "completeness[S1]")
        member_index = gamma.variable_of(fact("R", "a"))
        outside_index = gamma.variable_of(fact("R", "d1"))
        assert ineq.coefficients[member_index] == Fraction(1, 2)
        assert ineq.coefficients[outside_index] == Fraction(-1, 2)
        assert ineq.bound == 0

    def test_soundness_bound_value(self, gamma):
        ineq = next(i for i in gamma.inequalities if i.label == "soundness[S1]")
        assert ineq.bound == Fraction(1)  # s*k = 0.5 * 2

    def test_variable_of_local_name(self, gamma):
        assert gamma.variable_of(fact("V1", "a")) == gamma.variable_of(
            fact("R", "a")
        )
        assert gamma.variable_of(fact("R", "zz")) is None


class TestSolutions:
    def test_solution_count_m1(self, gamma):
        assert gamma.count_solutions() == 7

    def test_solution_databases_are_possible_worlds(self, gamma):
        collection = make_example51_collection()
        worlds = list(gamma.solution_databases())
        assert len(worlds) == 7
        for world in worlds:
            assert collection.admits(world)

    def test_fixed_variable_counting(self, gamma):
        total = gamma.count_solutions()
        with_b = gamma.count_solutions({fact("R", "b"): 1})
        without_b = gamma.count_solutions({fact("R", "b"): 0})
        assert with_b + without_b == total
        assert with_b == 6 and without_b == 1

    def test_forcing_outside_fact_space(self, gamma):
        assert gamma.count_solutions({fact("R", "zz"): 1}) == 0
        assert gamma.count_solutions({fact("R", "zz"): 0}) == 7

    def test_confidence(self, gamma):
        assert gamma.confidence(fact("R", "b")) == Fraction(6, 7)

    def test_satisfied_by_spot_checks(self, gamma):
        index = {f: j for j, f in enumerate(gamma.facts)}
        only_b = [0] * 4
        only_b[index[fact("R", "b")]] = 1
        assert gamma.satisfied_by(only_b)
        assert not gamma.satisfied_by([0, 0, 0, 0])


class TestSizeGuard:
    def test_large_domain_rejected(self):
        collection = make_example51_collection()
        domain = example51_domain(30)  # 33 variables > cap
        gamma = GammaSystem(IdentityInstance(collection, domain))
        with pytest.raises(DomainTooLargeError):
            gamma.count_solutions()
