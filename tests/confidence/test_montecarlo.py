"""Tests for exact world sampling and Monte-Carlo estimation."""

import random
from collections import Counter

import pytest

from repro.exceptions import InconsistentCollectionError
from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence import BlockCounter, IdentityInstance, WorldSampler
from repro.confidence.montecarlo import rejection_sample_worlds

from tests.conftest import example51_domain, make_example51_collection


@pytest.fixture
def sampler(rng):
    instance = IdentityInstance(make_example51_collection(), example51_domain(1))
    return WorldSampler(instance, rng)


class TestSamplerCorrectness:
    def test_count_matches_block_counter(self, sampler):
        instance = sampler.instance
        assert sampler.count_worlds() == BlockCounter(instance).count_worlds() == 7

    def test_samples_are_possible_worlds(self, sampler):
        collection = make_example51_collection()
        for _ in range(200):
            assert collection.admits(sampler.sample())

    def test_distribution_is_uniform(self, rng):
        """χ²-style sanity: each of the 7 worlds appears ≈ 1/7 of the time."""
        instance = IdentityInstance(
            make_example51_collection(), example51_domain(1)
        )
        sampler = WorldSampler(instance, rng)
        draws = 7000
        histogram = Counter(sampler.sample() for _ in range(draws))
        assert len(histogram) == 7
        for world, count in histogram.items():
            assert abs(count / draws - 1 / 7) < 0.03, world

    def test_estimate_converges_to_exact(self, rng):
        instance = IdentityInstance(
            make_example51_collection(), example51_domain(3)
        )
        sampler = WorldSampler(instance, rng)
        exact = float(BlockCounter(instance).confidence(fact("R", "b")))
        estimate = sampler.estimate_confidence(fact("R", "b"), 4000)
        assert abs(estimate - exact) < 0.03

    def test_estimate_confidences_batch(self, sampler):
        estimates = sampler.estimate_confidences(
            [fact("R", "a"), fact("R", "b")], 500
        )
        assert set(estimates) == {fact("R", "a"), fact("R", "b")}
        assert estimates[fact("R", "b")] > estimates[fact("R", "a")]

    def test_inconsistent_collection_raises(self, rng):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 1, 1, name="S1"
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1), [fact("V2", "b")], 0, 1, name="S2"
                ),
            ]
        )
        sampler = WorldSampler(IdentityInstance(col, ["a", "b"]), rng)
        assert sampler.count_worlds() == 0
        with pytest.raises(InconsistentCollectionError):
            sampler.sample()

    def test_large_anonymous_block(self, rng):
        """Sampling must work when the anonymous pool is big (rejection path)."""
        instance = IdentityInstance(
            make_example51_collection(), example51_domain(300)
        )
        sampler = WorldSampler(instance, rng)
        world = sampler.sample()
        assert make_example51_collection().admits(world)


class TestRejectionSampler:
    def test_generic_views(self, rng, example51):
        worlds = rejection_sample_worlds(
            example51, example51_domain(1), samples=20, rng=rng
        )
        assert len(worlds) == 20
        for world in worlds:
            assert example51.admits(world)
