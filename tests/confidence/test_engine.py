"""ConfidenceEngine: executor equivalence, caching modes, stats, fallback."""

from fractions import Fraction

import pytest

from repro.exceptions import SourceError
from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence import (
    BlockCounter,
    ConfidenceEngine,
    IdentityInstance,
    covered_fact_confidences,
)
from repro.confidence.engine import (
    ChunkedExecutor,
    LRUMemo,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.consistency import (
    check_consistency,
    check_consistency_parallel,
    independent_groups,
)


def example51() -> SourceCollection:
    return SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1),
                [fact("V1", "a"), fact("V1", "b")],
                "1/2", "1/2", name="S1",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "b"), fact("V2", "c")],
                "1/2", "1/2", name="S2",
            ),
        ]
    )


DOMAIN = ["a", "b", "c", "d1", "d2"]


def serial_reference():
    return covered_fact_confidences(example51(), DOMAIN)


def test_serial_engine_matches_covered_fact_confidences():
    with ConfidenceEngine(example51(), DOMAIN, cache_size=0) as engine:
        assert engine.confidences() == serial_reference()
        assert engine.confidences()[fact("R", "b")] == Fraction(8, 9)


def test_parallel_engine_matches_serial_exactly():
    reference = serial_reference()
    with ConfidenceEngine(
        example51(), DOMAIN, workers=2, cache_size=0
    ) as engine:
        assert engine.confidences() == reference


def test_chunked_engine_matches_serial_exactly():
    reference = serial_reference()
    with ConfidenceEngine(
        example51(), DOMAIN, workers=2, mode="chunked", cache_size=0
    ) as engine:
        assert engine.confidences() == reference


def test_joint_and_single_confidence_match_block_counter():
    counter = BlockCounter(IdentityInstance(example51(), DOMAIN))
    with ConfidenceEngine(example51(), DOMAIN, cache_size=0) as engine:
        for name in ("a", "b", "c", "d1"):
            assert engine.confidence(fact("R", name)) == counter.confidence(
                fact("R", name)
            )
        pair = [fact("R", "a"), fact("R", "c")]
        assert engine.joint_confidence(pair) == counter.joint_confidence(pair)


def test_count_worlds_and_consistency():
    with ConfidenceEngine(example51(), ["a", "b", "c"], cache_size=0) as engine:
        assert engine.count_worlds() == 5  # Example 5.1, m = 0: 2m + 5
        assert engine.is_consistent()


def test_cache_disabled_recomputes_every_task():
    with ConfidenceEngine(example51(), DOMAIN, cache_size=0) as engine:
        engine.confidences()
        engine.confidences()
        assert engine.memo is None
        assert engine.stats.tasks_memoized == 0
        assert engine.stats.tasks_dispatched > 0


def test_private_memo_serves_second_pass():
    memo = LRUMemo(64)
    with ConfidenceEngine(example51(), DOMAIN, memo=memo) as engine:
        first = engine.confidences()
        dispatched_cold = engine.stats.tasks_dispatched
        second = engine.confidences()
        assert first == second
        assert engine.stats.tasks_dispatched == dispatched_cold
        assert engine.stats.tasks_memoized > 0


def test_stats_sanity():
    with ConfidenceEngine(example51(), DOMAIN, cache_size=0) as engine:
        engine.confidences()
        stats = engine.stats
        assert stats.executor == "serial"
        assert stats.tasks_submitted >= stats.tasks_dispatched > 0
        assert stats.worlds_counted > 0
        assert stats.dp_states > 0
        assert set(stats.stages) >= {"decompose", "plan", "count", "assemble"}
        assert all(s.seconds >= 0 for s in stats.stages.values())
        report = stats.render()
        assert "executor: serial" in report
        assert "counting tasks" in report


def test_montecarlo_estimates_are_executor_independent():
    facts = [fact("R", "a"), fact("R", "b"), fact("R", "d1")]
    with ConfidenceEngine(example51(), DOMAIN, cache_size=0) as engine:
        serial = engine.estimate_confidences(
            facts, samples=500, seed=3, samples_per_chunk=100
        )
    with ConfidenceEngine(
        example51(), DOMAIN, workers=2, mode="chunked", cache_size=0
    ) as engine:
        parallel = engine.estimate_confidences(
            facts, samples=500, seed=3, samples_per_chunk=100
        )
    assert serial == parallel  # bit-identical floats, not just close


def test_degraded_fallback_stays_correct(monkeypatch):
    import multiprocessing

    def refuse(method=None):
        raise OSError("no processes in this sandbox")

    executor = ProcessExecutor(workers=2)
    monkeypatch.setattr(multiprocessing, "get_context", refuse)
    with ConfidenceEngine(example51(), DOMAIN, executor=executor) as engine:
        assert engine.confidences() == serial_reference()
        assert executor.degraded


def test_make_executor_selects_by_workers_and_mode():
    assert isinstance(make_executor(0), SerialExecutor)
    assert isinstance(make_executor(1, mode="chunked"), SerialExecutor)
    process = make_executor(4)
    assert isinstance(process, ProcessExecutor)
    assert not isinstance(process, ChunkedExecutor)
    assert isinstance(make_executor(4, mode="chunked"), ChunkedExecutor)
    assert isinstance(make_executor(4, mode="serial"), SerialExecutor)


def test_non_identity_views_are_rejected():
    collection = SourceCollection(
        [
            SourceDescriptor(
                parse_rule("V1(x) <- R(x), T(x)"), [fact("V1", "a")], 1, 1
            )
        ]
    )
    with pytest.raises(SourceError):
        ConfidenceEngine(collection, ["a", "b"])


def multi_relation_collection() -> SourceCollection:
    """Two independent groups: identity sources on R and on T."""
    return SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1),
                [fact("V1", "a"), fact("V1", "b")],
                "1/2", "1/2", name="S1",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "b")],
                "1/3", "1/2", name="S2",
            ),
            SourceDescriptor(
                identity_view("W1", "T", 1),
                [fact("W1", "x"), fact("W1", "y")],
                "1/2", "1", name="S3",
            ),
        ]
    )


def test_independent_groups_split_by_relation():
    groups = independent_groups(multi_relation_collection())
    names = [sorted(s.name for s in group) for group in groups]
    assert names == [["S1", "S2"], ["S3"]]


def test_parallel_consistency_matches_serial():
    collection = multi_relation_collection()
    serial = check_consistency(collection)
    parallel = check_consistency_parallel(collection, workers=2)
    assert parallel.consistent == serial.consistent
    assert parallel.consistent
    assert parallel.method.startswith("independent-groups[2]")
    # The merged witness must itself be admitted by the full collection.
    assert collection.admits(parallel.witness)


def test_parallel_consistency_single_group_delegates():
    collection = example51()
    result = check_consistency_parallel(collection, workers=2)
    assert result.consistent == check_consistency(collection).consistent
    assert not result.method.startswith("independent-groups")
