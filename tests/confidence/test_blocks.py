"""Tests for the signature-block decomposition and BlockCounter."""

from fractions import Fraction

import pytest

from repro.exceptions import InconsistentCollectionError, SourceError
from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence import BlockCounter, IdentityInstance

from tests.conftest import example51_domain, make_example51_collection


def single_source(ext_values, c, s, relation="R"):
    return SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", relation, 1),
                [fact("V1", v) for v in ext_values],
                c,
                s,
                name="S1",
            )
        ]
    )


class TestIdentityInstance:
    def test_blocks_of_example51(self, example51):
        inst = IdentityInstance(example51, example51_domain(3))
        signatures = {b.signature: b.size for b in inst.blocks}
        assert signatures == {
            frozenset({0}): 1,       # a
            frozenset({0, 1}): 1,    # b
            frozenset({1}): 1,       # c
        }
        assert inst.anonymous_size == 3
        assert inst.fact_space_size == 6

    def test_block_of(self, example51):
        inst = IdentityInstance(example51, example51_domain(1))
        b_block = inst.block_of(fact("R", "b"))
        assert inst.blocks[b_block].signature == frozenset({0, 1})
        assert inst.block_of(fact("R", "d1")) is None

    def test_block_of_accepts_local_names(self, example51):
        inst = IdentityInstance(example51, example51_domain(1))
        assert inst.block_of(fact("V1", "b")) == inst.block_of(fact("R", "b"))

    def test_requires_identity_views(self):
        view = parse_rule("V(x) <- R(x, y)")
        col = SourceCollection([SourceDescriptor(view, [], 0, 0, name="A")])
        with pytest.raises(SourceError):
            IdentityInstance(col, ["a"])

    def test_extension_outside_domain_rejected(self, example51):
        with pytest.raises(SourceError):
            IdentityInstance(example51, ["a", "b"])  # "c" missing

    def test_duplicate_domain_values_collapsed(self, example51):
        inst = IdentityInstance(example51, ["a", "b", "c", "c", "a"])
        assert inst.fact_space_size == 3

    def test_min_sound_counts(self, example51):
        inst = IdentityInstance(example51, example51_domain(1))
        assert inst.min_sound == [1, 1]


class TestBlockCounterBasics:
    def test_single_exact_source(self):
        col = single_source(["a", "b"], 1, 1)
        bc = BlockCounter(IdentityInstance(col, ["a", "b", "c"]))
        # only world: {a, b}
        assert bc.count_worlds() == 1
        assert bc.confidence(fact("R", "a")) == 1
        assert bc.confidence(fact("R", "c")) == 0

    def test_sound_only_source(self):
        col = single_source(["a"], 0, 1)
        bc = BlockCounter(IdentityInstance(col, ["a", "b"]))
        # a forced in; b free: 2 worlds
        assert bc.count_worlds() == 2
        assert bc.confidence(fact("R", "a")) == 1
        assert bc.confidence(fact("R", "b")) == Fraction(1, 2)

    def test_complete_only_source(self):
        col = single_source(["a"], 1, 0)
        bc = BlockCounter(IdentityInstance(col, ["a", "b"]))
        # D ⊆ {a}: worlds {} and {a}
        assert bc.count_worlds() == 2
        assert bc.confidence(fact("R", "a")) == Fraction(1, 2)
        assert bc.confidence(fact("R", "b")) == 0

    def test_unconstrained_source(self):
        col = single_source(["a"], 0, 0)
        bc = BlockCounter(IdentityInstance(col, ["a", "b"]))
        assert bc.count_worlds() == 4  # every subset

    def test_inconsistent_collection_raises_on_confidence(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 1, 1, name="S1"
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1), [fact("V2", "b")], 0, 1, name="S2"
                ),
            ]
        )
        bc = BlockCounter(IdentityInstance(col, ["a", "b"]))
        assert bc.count_worlds() == 0
        assert not bc.is_consistent()
        with pytest.raises(InconsistentCollectionError):
            bc.confidence(fact("R", "a"))


class TestCountingInvariants:
    def test_containing_plus_excluding_equals_total(self, example51):
        inst = IdentityInstance(example51, example51_domain(2))
        bc = BlockCounter(inst)
        total = bc.count_worlds()
        for value in example51_domain(2):
            f = fact("R", value)
            assert (
                bc.count_worlds_containing(f) + bc.count_worlds_excluding(f)
                == total
            ), value

    def test_fact_outside_space_has_zero_confidence(self, example51):
        bc = BlockCounter(IdentityInstance(example51, example51_domain(1)))
        assert bc.count_worlds_containing(fact("R", "zz")) == 0
        assert bc.confidence(fact("R", "zz")) == 0

    def test_same_block_same_confidence(self, example51):
        bc = BlockCounter(IdentityInstance(example51, example51_domain(4)))
        anonymous = [fact("R", f"d{i}") for i in range(1, 5)]
        confidences = {bc.confidence(f) for f in anonymous}
        assert len(confidences) == 1

    def test_confidences_in_unit_interval(self, example51):
        bc = BlockCounter(IdentityInstance(example51, example51_domain(3)))
        for value in example51_domain(3):
            confidence = bc.confidence(fact("R", value))
            assert 0 <= confidence <= 1


class TestArityTwo:
    def test_binary_relation(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "E", 2),
                    [fact("V1", 1, 2), fact("V1", 2, 1)],
                    "1/2",
                    "1/2",
                    name="S1",
                )
            ]
        )
        inst = IdentityInstance(col, [1, 2])
        bc = BlockCounter(inst)
        assert inst.fact_space_size == 4
        assert inst.anonymous_size == 2
        assert bc.count_worlds() > 0
        assert 0 < bc.confidence(fact("E", 1, 2)) <= 1
