"""Tests for the certain-base-facts route to certain answers, including its
incomparability with the Information-Manifold route."""

import pytest

from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.baselines import certain_answer_im
from repro.confidence import certain_answer, certain_answer_lower_bound


def identity_source(name, values, c, s):
    return SourceDescriptor(
        identity_view(f"V{name}", "R", 1),
        [fact(f"V{name}", v) for v in values],
        c,
        s,
        name=name,
    )


class TestSoundness:
    def test_subset_of_exact(self, example51):
        from tests.conftest import example51_domain

        q = parse_rule("ans(x) <- R(x)")
        domain = example51_domain(1)
        lower = certain_answer_lower_bound(q, example51, domain)
        exact = certain_answer(q, example51, domain)
        assert lower <= exact

    def test_sound_source_facts_found(self):
        col = SourceCollection([identity_source("A", ["a", "b"], 0, 1)])
        q = parse_rule("ans(x) <- R(x)")
        assert certain_answer_lower_bound(q, col, ["a", "b", "c"]) == frozenset(
            {fact("ans", "a"), fact("ans", "b")}
        )

    def test_join_over_certain_facts(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "E", 2),
                    [fact("V1", 1, 2), fact("V1", 2, 3)],
                    0,
                    1,
                    name="A",
                )
            ]
        )
        q = parse_rule("ans(x, z) <- E(x, y), E(y, z)")
        result = certain_answer_lower_bound(q, col, [1, 2, 3])
        assert result == frozenset({fact("ans", 1, 3)})


class TestIncomparabilityWithIM:
    def test_completeness_forced_fact_visible_here_not_im(self):
        """This route sees completeness-forced certain facts; IM cannot."""
        col = SourceCollection(
            [
                identity_source("A", ["a"], 1, 0),        # complete
                identity_source("B", ["a", "b"], 0, "1/2"),  # partially sound
            ]
        )
        q = parse_rule("ans(x) <- R(x)")
        lower = certain_answer_lower_bound(q, col, ["a", "b"])
        via_im = certain_answer_im(q, col)
        exact = certain_answer(q, col, ["a", "b"])
        assert fact("ans", "a") in exact
        assert fact("ans", "a") in lower       # forced fact has confidence 1
        assert via_im == frozenset()           # no fully sound source

    def test_existential_witness_visible_to_im_not_here(self):
        """IM uses witnesses from non-identity sound views; this route is
        identity-only and cannot (covered_fact_confidences requires the
        §5.1 shape)."""
        from repro.exceptions import SourceError

        view = parse_rule("V(x) <- R(x, y)")
        col = SourceCollection(
            [SourceDescriptor(view, [fact("V", "a")], 0, 1, name="A")]
        )
        q = parse_rule("ans(x) <- R(x, y)")
        assert certain_answer_im(q, col) == frozenset({fact("ans", "a")})
        with pytest.raises(SourceError):
            certain_answer_lower_bound(q, col, ["a", "b"])


class TestAlgebraQueries:
    def test_algebra_tree_supported(self):
        from repro.algebra import RelationScan
        from repro.model import Constant

        col = SourceCollection([identity_source("A", ["a"], 0, 1)])
        result = certain_answer_lower_bound(
            RelationScan("R", 1), col, ["a", "b"]
        )
        assert result == frozenset({(Constant("a"),)})
