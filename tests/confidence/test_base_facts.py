"""Tests for the base-fact confidence API."""

from fractions import Fraction

import pytest

from repro.exceptions import InconsistentCollectionError
from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence import (
    anonymous_fact_confidence,
    certain_facts,
    covered_fact_confidences,
    enumeration_confidences,
    fact_confidence,
    plausible_facts,
)

from tests.conftest import example51_domain, make_example51_collection


class TestFactConfidence:
    def test_identity_route(self, example51):
        assert fact_confidence(
            example51, example51_domain(1), fact("R", "b")
        ) == Fraction(6, 7)

    def test_general_route_matches_identity(self, example51):
        domain = example51_domain(1)
        via_enumeration = enumeration_confidences(
            example51, domain, [fact("R", "b"), fact("R", "a")]
        )
        assert via_enumeration[fact("R", "b")] == Fraction(6, 7)
        assert via_enumeration[fact("R", "a")] == Fraction(4, 7)

    def test_non_identity_views(self):
        view = parse_rule("V(x) <- R(x, y)")
        col = SourceCollection(
            [SourceDescriptor(view, [fact("V", "a")], 1, 1, name="S1")]
        )
        confidences = enumeration_confidences(col, ["a", "b"])
        # every world derives V(a), so some R(a, _) fact must exist
        r_aa = confidences[fact("R", "a", "a")]
        r_ab = confidences[fact("R", "a", "b")]
        assert r_aa > 0 and r_ab > 0
        # and nothing may produce V(b)
        assert confidences[fact("R", "b", "a")] == 0
        assert confidences[fact("R", "b", "b")] == 0


class TestCoveredConfidences:
    def test_example51(self, example51):
        confidences = covered_fact_confidences(example51, example51_domain(2))
        assert confidences[fact("R", "b")] == Fraction(8, 9)
        assert confidences[fact("R", "a")] == confidences[fact("R", "c")]
        assert set(confidences) == {
            fact("R", "a"),
            fact("R", "b"),
            fact("R", "c"),
        }

    def test_anonymous_confidence(self, example51):
        confidence = anonymous_fact_confidence(example51, example51_domain(2))
        assert confidence == Fraction(2, 9)

    def test_anonymous_none_when_fully_covered(self, example51):
        assert anonymous_fact_confidence(example51, ["a", "b", "c"]) is None

    def test_inconsistent_raises(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 1, 1, name="S1"
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1), [fact("V2", "b")], 0, 1, name="S2"
                ),
            ]
        )
        with pytest.raises(InconsistentCollectionError):
            covered_fact_confidences(col, ["a", "b"])


class TestSelectors:
    def test_certain_facts(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 0, 1, name="S1"
                )
            ]
        )
        confidences = covered_fact_confidences(col, ["a", "b"])
        assert certain_facts(confidences) == frozenset({fact("R", "a")})

    def test_plausible_facts_threshold(self, example51):
        confidences = covered_fact_confidences(example51, example51_domain(2))
        above_half = plausible_facts(confidences, Fraction(3, 5))
        assert above_half == frozenset({fact("R", "b")})
        assert plausible_facts(confidences) == frozenset(confidences)
