"""Tests for block-level confidences and top-k ranking."""

from fractions import Fraction

import pytest

from repro.exceptions import InconsistentCollectionError
from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence import BlockCounter, IdentityInstance

from tests.conftest import example51_domain, make_example51_collection


@pytest.fixture
def counter():
    return BlockCounter(
        IdentityInstance(make_example51_collection(), example51_domain(2))
    )


class TestBlockConfidences:
    def test_matches_per_fact(self, counter):
        per_block = counter.block_confidences()
        for j, confidence in per_block.items():
            for f in counter.instance.blocks[j].facts:
                assert counter.confidence(f) == confidence

    def test_inconsistent_raises(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 1, 1, name="S1"
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1), [fact("V2", "b")], 0, 1, name="S2"
                ),
            ]
        )
        counter = BlockCounter(IdentityInstance(col, ["a", "b"]))
        with pytest.raises(InconsistentCollectionError):
            counter.block_confidences()


class TestTopK:
    def test_ordering(self, counter):
        ranked = counter.top_k_facts(3)
        assert ranked[0] == (fact("R", "b"), Fraction(8, 9))
        confidences = [c for _, c in ranked]
        assert confidences == sorted(confidences, reverse=True)

    def test_k_larger_than_covered(self, counter):
        ranked = counter.top_k_facts(100)
        assert len(ranked) == 3  # a, b, c are covered

    def test_k_zero(self, counter):
        assert counter.top_k_facts(0) == []

    def test_memoized_world_count(self, counter):
        first = counter.count_worlds()
        assert counter.count_worlds() == first
        assert counter._world_count == first
