"""Guard-path tests for the Monte-Carlo module."""

import random

import pytest

from repro.exceptions import DomainTooLargeError, InconsistentCollectionError
from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence.montecarlo import rejection_sample_worlds

from tests.conftest import example51_domain, make_example51_collection


class TestRejectionSamplerGuards:
    def test_large_fact_space_rejected(self):
        collection = make_example51_collection()
        with pytest.raises(DomainTooLargeError):
            rejection_sample_worlds(
                collection, example51_domain(40), samples=1
            )

    def test_inconsistent_collection_times_out(self):
        collection = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 1, 1, name="S1"
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1), [fact("V2", "b")], 0, 1, name="S2"
                ),
            ]
        )
        with pytest.raises(InconsistentCollectionError):
            rejection_sample_worlds(
                collection, ["a", "b"], samples=1,
                rng=random.Random(0), max_tries=50,
            )

    def test_zero_samples(self):
        collection = make_example51_collection()
        assert rejection_sample_worlds(
            collection, example51_domain(1), samples=0
        ) == []
