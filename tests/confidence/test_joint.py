"""Tests for joint, conditional, and covariance confidences."""

from fractions import Fraction
from itertools import combinations

import pytest

from repro.exceptions import InconsistentCollectionError
from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence import BlockCounter, GammaSystem, IdentityInstance

from tests.conftest import example51_domain, make_example51_collection


@pytest.fixture
def counter():
    return BlockCounter(
        IdentityInstance(make_example51_collection(), example51_domain(2))
    )


class TestJointCounting:
    def test_pairwise_agrees_with_brute_force(self):
        collection = make_example51_collection()
        domain = example51_domain(2)
        instance = IdentityInstance(collection, domain)
        blocks = BlockCounter(instance)
        gamma = GammaSystem(instance)
        for left, right in combinations([fact("R", v) for v in domain], 2):
            brute = gamma.count_solutions({left: 1, right: 1})
            assert blocks.count_worlds_containing_all([left, right]) == brute

    def test_triple_agrees_with_brute_force(self):
        collection = make_example51_collection()
        domain = example51_domain(1)
        instance = IdentityInstance(collection, domain)
        blocks = BlockCounter(instance)
        gamma = GammaSystem(instance)
        triple = [fact("R", "a"), fact("R", "b"), fact("R", "d1")]
        brute = gamma.count_solutions({f: 1 for f in triple})
        assert blocks.count_worlds_containing_all(triple) == brute

    def test_empty_set_is_total(self, counter):
        assert counter.count_worlds_containing_all([]) == counter.count_worlds()

    def test_duplicates_collapsed(self, counter):
        single = counter.count_worlds_containing(fact("R", "b"))
        doubled = counter.count_worlds_containing_all(
            [fact("R", "b"), fact("R", "b")]
        )
        assert single == doubled

    def test_fact_outside_space_zero(self, counter):
        assert counter.count_worlds_containing_all(
            [fact("R", "b"), fact("R", "zz")]
        ) == 0

    def test_local_names_accepted(self, counter):
        assert counter.count_worlds_containing_all(
            [fact("V1", "b")]
        ) == counter.count_worlds_containing(fact("R", "b"))


class TestJointConfidence:
    def test_joint_at_most_marginals(self, counter):
        joint = counter.joint_confidence([fact("R", "a"), fact("R", "b")])
        assert joint <= counter.confidence(fact("R", "a"))
        assert joint <= counter.confidence(fact("R", "b"))

    def test_joint_of_singleton_is_marginal(self, counter):
        assert counter.joint_confidence([fact("R", "a")]) == counter.confidence(
            fact("R", "a")
        )

    def test_chain_rule(self, counter):
        """P(a, b) = P(b) · P(a | b)."""
        a, b = fact("R", "a"), fact("R", "b")
        assert counter.joint_confidence([a, b]) == (
            counter.confidence(b) * counter.conditional_confidence(a, [b])
        )


class TestConditional:
    def test_conditioning_on_impossible_raises(self, counter):
        with pytest.raises(InconsistentCollectionError):
            counter.conditional_confidence(fact("R", "a"), [fact("R", "zz")])

    def test_self_conditioning_is_one(self, counter):
        b = fact("R", "b")
        assert counter.conditional_confidence(b, [b]) == 1

    def test_negative_correlation_in_example51(self, counter):
        """Adding a forces the world bigger, making other facts harder."""
        a, b = fact("R", "a"), fact("R", "b")
        assert counter.conditional_confidence(a, [b]) < counter.confidence(a)


class TestCovariance:
    def test_sign_matches_conditional_shift(self, counter):
        a, b = fact("R", "a"), fact("R", "b")
        cov = counter.covariance(a, b)
        assert cov < 0  # negative correlation, cf. conditional test above

    def test_symmetry(self, counter):
        a, c = fact("R", "a"), fact("R", "c")
        assert counter.covariance(a, c) == counter.covariance(c, a)

    def test_certain_fact_has_zero_covariance(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 0, 1, name="S1"
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1), [fact("V2", "b")], 0, "1/2",
                    name="S2",
                ),
            ]
        )
        counter = BlockCounter(IdentityInstance(col, ["a", "b", "c"]))
        assert counter.confidence(fact("R", "a")) == 1
        assert counter.covariance(fact("R", "a"), fact("R", "b")) == 0
