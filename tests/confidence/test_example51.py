"""Example 5.1 end-to-end: the paper's only worked quantitative example.

Our exact counts (verified below against brute-force enumeration of the
definition, and by hand for m = 1) give

    confidence(R(a)) = confidence(R(c)) = (m+3)/(2m+5)
    confidence(R(b)) = (2m+4)/(2m+5)
    confidence(R(d_i)) = 2/(2m+5)

over dom = {a, b, c, d_1..d_m}. The paper prints (m+2)/(2m+3), (2m+2)/(2m+3)
and 2/(2m+3) — exactly our formulas with m replaced by m−1, i.e. an
off-by-one in the paper's arithmetic (its qualitative limits 1/2, 1, 0 as
m → ∞ are unaffected and are asserted here too).
"""

from fractions import Fraction

import pytest

from repro.model import fact
from repro.confidence import BlockCounter, GammaSystem, IdentityInstance

from tests.conftest import example51_domain, make_example51_collection


def counter(m: int) -> BlockCounter:
    return BlockCounter(
        IdentityInstance(make_example51_collection(), example51_domain(m))
    )


class TestClosedForms:
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 10, 50])
    def test_confidence_a_and_c(self, m):
        bc = counter(m)
        expected = Fraction(m + 3, 2 * m + 5)
        assert bc.confidence(fact("R", "a")) == expected
        assert bc.confidence(fact("R", "c")) == expected

    @pytest.mark.parametrize("m", [1, 2, 3, 5, 10, 50])
    def test_confidence_b(self, m):
        assert counter(m).confidence(fact("R", "b")) == Fraction(
            2 * m + 4, 2 * m + 5
        )

    @pytest.mark.parametrize("m", [1, 2, 3, 5, 10])
    def test_confidence_d(self, m):
        bc = counter(m)
        expected = Fraction(2, 2 * m + 5)
        for i in range(1, m + 1):
            assert bc.confidence(fact("R", f"d{i}")) == expected

    @pytest.mark.parametrize("m", [2, 4])
    def test_paper_formula_is_ours_shifted(self, m):
        """The paper's (m+2)/(2m+3) equals our exact value at m−1."""
        assert counter(m - 1).confidence(fact("R", "a")) == Fraction(
            m + 2, 2 * m + 3
        )
        assert counter(m - 1).confidence(fact("R", "b")) == Fraction(
            2 * m + 2, 2 * m + 3
        )


class TestHandEnumeration:
    def test_m1_worlds_by_hand(self):
        """For m = 1 the 7 possible worlds are checkable by hand."""
        bc = counter(1)
        assert bc.count_worlds() == 7
        assert bc.confidence(fact("R", "a")) == Fraction(4, 7)
        assert bc.confidence(fact("R", "b")) == Fraction(6, 7)
        assert bc.confidence(fact("R", "d1")) == Fraction(2, 7)


class TestLimits:
    def test_limits_match_paper_intuition(self):
        """m → ∞: conf(b) → 1, conf(a) → 1/2, conf(d_i) → 0."""
        bc = counter(400)
        assert abs(float(bc.confidence(fact("R", "b"))) - 1.0) < 0.01
        assert abs(float(bc.confidence(fact("R", "a"))) - 0.5) < 0.01
        assert float(bc.confidence(fact("R", "d1"))) < 0.01

    def test_monotone_in_m(self):
        """conf(b) increases with m; conf(d) decreases."""
        values_b = [counter(m).confidence(fact("R", "b")) for m in (1, 3, 6)]
        assert values_b == sorted(values_b)
        values_d = [counter(m).confidence(fact("R", "d1")) for m in (1, 3, 6)]
        assert values_d == sorted(values_d, reverse=True)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("m", [0, 1, 2])
    def test_gamma_system_agrees(self, m):
        collection = make_example51_collection()
        domain = example51_domain(m)
        instance = IdentityInstance(collection, domain)
        gamma = GammaSystem(instance)
        blocks = BlockCounter(instance)
        assert gamma.count_solutions() == blocks.count_worlds()
        for value in domain:
            f = fact("R", value)
            assert gamma.confidence(f) == blocks.confidence(f), (m, value)
