"""Tests for certain/possible answers and query confidence (Section 5)."""

from fractions import Fraction

import pytest

from repro.exceptions import InconsistentCollectionError
from repro.model import Constant, fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.algebra import Col, Comparison, Projection, RelationScan, Selection
from repro.confidence import (
    WorldSampler,
    IdentityInstance,
    answer_query,
    certain_answer,
    estimate_answer_confidences,
    possible_answer,
    query_confidence,
)

from tests.conftest import example51_domain, make_example51_collection


def row(*values):
    return tuple(Constant(v) for v in values)


class TestIdentityQuery:
    def test_answer_structure(self, example51):
        qa = answer_query(RelationScan("R", 1), example51, example51_domain(1))
        assert qa.world_count == 7
        assert qa.confidences[row("b")] == Fraction(6, 7)
        assert qa.certain == frozenset()          # nothing is in all 7 worlds
        assert row("d1") in qa.possible

    def test_certain_answer_when_forced(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 0, 1, name="S1"
                )
            ]
        )
        assert certain_answer(RelationScan("R", 1), col, ["a", "b"]) == frozenset(
            {row("a")}
        )

    def test_certain_subset_of_possible(self, example51):
        qa = answer_query(RelationScan("R", 1), example51, example51_domain(1))
        assert qa.certain <= qa.possible

    def test_ranked_ordering(self, example51):
        qa = answer_query(RelationScan("R", 1), example51, example51_domain(1))
        ranked = qa.ranked()
        confidences = [c for _, c in ranked]
        assert confidences == sorted(confidences, reverse=True)
        assert ranked[0][0] == row("b")


class TestConjunctiveQueries:
    def test_cq_answers_are_ans_facts(self, example51):
        q = parse_rule("ans(x) <- R(x)")
        qa = answer_query(q, example51, example51_domain(1))
        assert fact("ans", "b") in qa.possible
        assert qa.confidences[fact("ans", "b")] == Fraction(6, 7)

    def test_join_query_over_worlds(self):
        view = parse_rule("V(x) <- R(x, y)")
        col = SourceCollection(
            [SourceDescriptor(view, [fact("V", "a")], 1, 1, name="S1")]
        )
        q = parse_rule("ans(x, y) <- R(x, y)")
        qa = answer_query(q, col, ["a", "b"])
        # every possible world has some R(a, _) fact; none has R(b, _)
        possible_firsts = {f.args[0].value for f in qa.possible}
        assert possible_firsts == {"a"}


class TestAlgebraOperators:
    def test_selection_confidence(self, example51):
        q = Selection(Comparison(Col(0), "=", "b"), RelationScan("R", 1))
        assert query_confidence(
            q, example51, example51_domain(1), row("b")
        ) == Fraction(6, 7)
        assert query_confidence(
            q, example51, example51_domain(1), row("a")
        ) == 0

    def test_projection_confidence(self, example51):
        q = Projection([0], RelationScan("R", 1))
        qa = answer_query(q, example51, example51_domain(1))
        assert qa.confidences[row("b")] == Fraction(6, 7)

    def test_missing_answer_zero(self, example51):
        assert query_confidence(
            RelationScan("R", 1), example51, example51_domain(1), row("zz")
        ) == 0


class TestErrorsAndSampledWorlds:
    def test_inconsistent_raises(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 1, 1, name="S1"
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1), [fact("V2", "b")], 0, 1, name="S2"
                ),
            ]
        )
        with pytest.raises(InconsistentCollectionError):
            answer_query(RelationScan("R", 1), col, ["a", "b"])

    def test_precomputed_worlds(self, example51, rng):
        sampler = WorldSampler(
            IdentityInstance(example51, example51_domain(1)), rng
        )
        worlds = [sampler.sample() for _ in range(500)]
        qa = answer_query(
            RelationScan("R", 1), example51, example51_domain(1), worlds=worlds
        )
        assert qa.world_count == 500
        assert abs(float(qa.confidences[row("b")]) - 6 / 7) < 0.07

    def test_estimate_answer_confidences(self, example51, rng):
        sampler = WorldSampler(
            IdentityInstance(example51, example51_domain(1)), rng
        )
        estimates = estimate_answer_confidences(
            RelationScan("R", 1), sampler, 800
        )
        assert abs(estimates[row("b")] - 6 / 7) < 0.06
