"""Tests for the Definition 5.1 propagation calculus."""

from fractions import Fraction

import pytest

from repro.exceptions import QueryError
from repro.model import Constant, fact
from repro.algebra import (
    Col,
    Comparison,
    Product,
    Projection,
    RelationScan,
    Selection,
    UnionNode,
)
from repro.confidence import (
    answer_query,
    covered_fact_confidences,
    base_confidences_from_facts,
    oplus,
    propagate,
    propagate_facts,
)

from tests.conftest import example51_domain, make_example51_collection


def row(*values):
    return tuple(Constant(v) for v in values)


HALF = Fraction(1, 2)
THIRD = Fraction(1, 3)


@pytest.fixture
def base():
    return {
        "R": {row(1, "x"): HALF, row(2, "y"): THIRD, row(2, "x"): Fraction(1)},
        "S": {row("x"): Fraction(3, 4)},
    }


class TestOplus:
    def test_empty(self):
        assert oplus([]) == 0

    def test_single(self):
        assert oplus([HALF]) == HALF

    def test_two_halves(self):
        assert oplus([HALF, HALF]) == Fraction(3, 4)

    def test_one_dominates(self):
        assert oplus([Fraction(1), THIRD]) == 1

    def test_floats_supported(self):
        assert oplus([0.5, 0.5]) == pytest.approx(0.75)


class TestBaseCase:
    def test_scan_filters_arity_and_zeros(self, base):
        base_with_zero = dict(base)
        base_with_zero["R"] = dict(base["R"])
        base_with_zero["R"][row(9, "z")] = Fraction(0)
        result = propagate(RelationScan("R", 2), base_with_zero)
        assert row(9, "z") not in result
        assert result[row(1, "x")] == HALF

    def test_missing_relation_empty(self, base):
        assert propagate(RelationScan("T", 1), base) == {}


class TestOperatorRules:
    def test_selection_passthrough(self, base):
        q = Selection(Comparison(Col(0), "=", 2), RelationScan("R", 2))
        result = propagate(q, base)
        assert result == {row(2, "y"): THIRD, row(2, "x"): Fraction(1)}

    def test_projection_oplus(self, base):
        q = Projection([1], RelationScan("R", 2))
        result = propagate(q, base)
        # column 1 = "x" from rows with conf 1/2 and 1 -> oplus = 1
        assert result[row("x")] == 1
        assert result[row("y")] == THIRD

    def test_projection_with_literal(self, base):
        q = Projection([Constant("tag"), 0], RelationScan("R", 2))
        result = propagate(q, base)
        assert result[row("tag", 1)] == HALF

    def test_product_multiplies(self, base):
        q = Product(RelationScan("R", 2), RelationScan("S", 1))
        result = propagate(q, base)
        assert result[row(1, "x", "x")] == HALF * Fraction(3, 4)

    def test_union_oplus_on_overlap(self, base):
        q = UnionNode(
            Projection([1], RelationScan("R", 2)),
            RelationScan("S", 1),
        )
        result = propagate(q, base)
        # "x" from projection has conf 1; union with S's 3/4 stays 1
        assert result[row("x")] == 1
        assert result[row("y")] == THIRD

    def test_unknown_node_rejected(self, base):
        class Weird(RelationScan.__bases__[0]):
            pass

        with pytest.raises(QueryError):
            propagate(Weird(), base)


class TestMonotonicityInvariants:
    def test_selection_never_increases(self, base):
        before = propagate(RelationScan("R", 2), base)
        after = propagate(
            Selection(Comparison(Col(0), ">", 0), RelationScan("R", 2)), base
        )
        for r, confidence in after.items():
            assert confidence == before[r]

    def test_projection_at_least_max_contributor(self, base):
        before = propagate(RelationScan("R", 2), base)
        after = propagate(Projection([1], RelationScan("R", 2)), base)
        for r, confidence in before.items():
            image = (r[1],)
            assert after[image] >= confidence

    def test_product_at_most_min_factor(self, base):
        left = propagate(RelationScan("R", 2), base)
        right = propagate(RelationScan("S", 1), base)
        combined = propagate(
            Product(RelationScan("R", 2), RelationScan("S", 1)), base
        )
        for l_row, l_conf in left.items():
            for r_row, r_conf in right.items():
                assert combined[l_row + r_row] <= min(l_conf, r_conf)


class TestTheorem51Agreement:
    """Theorem 5.1: conf_Q == possible-world confidence. Exact for selection;
    for π over *distinct base facts* the independence assumption is the only
    gap, which the single-relation Example 5.1 lets us measure directly."""

    def test_selection_exact(self, example51):
        domain = example51_domain(1)
        base = base_confidences_from_facts(
            covered_fact_confidences(example51, domain)
        )
        q = Selection(Comparison(Col(0), "=", "b"), RelationScan("R", 1))
        propagated = propagate(q, base)
        exact = answer_query(q, example51, domain).confidences
        assert propagated[row("b")] == exact[row("b")]

    def test_projection_deviation_is_bounded(self, example51):
        """π merging correlated facts: calculus is approximate; measure it."""
        domain = example51_domain(1)
        base = base_confidences_from_facts(
            covered_fact_confidences(example51, domain)
        )
        # project R(x) onto a constant column: merges a, b, c into one tuple
        q = Projection([Constant("any")], RelationScan("R", 1))
        propagated = propagate(q, base)[row("any")]
        exact = answer_query(q, example51, domain).confidences[row("any")]
        assert exact == 1  # every world is nonempty on {a,b,c}
        assert propagated <= 1
        assert propagated > Fraction(9, 10)  # close, but the gap is real


class TestFactLevelWrapper:
    def test_propagate_facts(self, base):
        result = propagate_facts(
            Projection([1], RelationScan("R", 2)),
            {
                fact("R", 1, "x"): HALF,
                fact("R", 2, "x"): Fraction(1),
            },
        )
        assert result[fact("ans", "x")] == 1
