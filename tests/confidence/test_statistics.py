"""Tests for world-size distributions and expected cardinalities."""

from fractions import Fraction

import pytest

from repro.exceptions import InconsistentCollectionError
from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.algebra import RelationScan
from repro.confidence import (
    BlockCounter,
    GammaSystem,
    IdentityInstance,
    answer_cardinality_bounds,
    expected_answer_cardinality,
    expected_base_size,
    world_size_distribution,
)

from tests.conftest import example51_domain, make_example51_collection


@pytest.fixture
def counter():
    return BlockCounter(
        IdentityInstance(make_example51_collection(), example51_domain(1))
    )


class TestSizeDistribution:
    def test_sums_to_world_count(self, counter):
        distribution = counter.world_size_distribution()
        assert sum(distribution.values()) == counter.count_worlds() == 7

    def test_matches_enumeration(self, counter):
        """Hand-checkable m=1 case: sizes 1,2,2,2,2,3,4 of the 7 worlds."""
        assert counter.world_size_distribution() == {1: 1, 2: 4, 3: 1, 4: 1}

    def test_matches_brute_force_sizes(self):
        collection = make_example51_collection()
        domain = example51_domain(2)
        instance = IdentityInstance(collection, domain)
        gamma = GammaSystem(instance)
        expected: dict = {}
        for world in gamma.solution_databases():
            expected[len(world)] = expected.get(len(world), 0) + 1
        assert BlockCounter(instance).world_size_distribution() == expected

    def test_probability_version_normalized(self, example51):
        probabilities = world_size_distribution(example51, example51_domain(1))
        assert sum(probabilities.values()) == 1

    def test_inconsistent_raises(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 1, 1, name="S1"
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1), [fact("V2", "b")], 0, 1, name="S2"
                ),
            ]
        )
        with pytest.raises(InconsistentCollectionError):
            world_size_distribution(col, ["a", "b"])


class TestExpectedSize:
    def test_linearity_of_expectation(self, counter):
        """E[|D|] == Σ_t confidence(t) over the whole fact space."""
        total_confidence = sum(
            (counter.confidence(fact("R", v)) for v in example51_domain(1)),
            Fraction(0),
        )
        assert counter.expected_world_size() == total_confidence

    def test_value_m1(self, counter):
        # sizes {1:1, 2:4, 3:1, 4:1} -> (1 + 8 + 3 + 4)/7
        assert counter.expected_world_size() == Fraction(16, 7)

    def test_module_level_wrapper(self, example51):
        assert expected_base_size(
            example51, example51_domain(1)
        ) == Fraction(16, 7)


class TestExpectedAnswers:
    def test_scan_equals_base_size(self, example51):
        expected = expected_answer_cardinality(
            RelationScan("R", 1), example51, example51_domain(1)
        )
        assert expected == Fraction(16, 7)

    def test_bounds_ordering(self, example51):
        bounds = answer_cardinality_bounds(
            RelationScan("R", 1), example51, example51_domain(1)
        )
        assert bounds["certain"] <= bounds["expected"] <= bounds["possible"]
        assert bounds["certain"] == 0 and bounds["possible"] == 4

    def test_certain_only_collection(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a"), fact("V1", "b")],
                    1, 1, name="S1",
                )
            ]
        )
        bounds = answer_cardinality_bounds(
            RelationScan("R", 1), col, ["a", "b", "c"]
        )
        assert bounds == {
            "certain": Fraction(2),
            "expected": Fraction(2),
            "possible": Fraction(2),
        }

    def test_cq_query(self, example51):
        q = parse_rule("ans(x) <- R(x)")
        expected = expected_answer_cardinality(q, example51, example51_domain(1))
        assert expected == Fraction(16, 7)
