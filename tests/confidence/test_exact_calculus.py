"""Tests for the exact (independence-free) confidence calculus."""

from fractions import Fraction

import pytest

from repro.exceptions import DomainTooLargeError, QueryError
from repro.model import Constant, fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.algebra import (
    Col,
    Comparison,
    Product,
    Projection,
    RelationScan,
    Selection,
    UnionNode,
)
from repro.confidence import (
    ExactCalculus,
    IdentityInstance,
    answer_query,
    covered_fact_confidences,
    event_probability,
    propagate,
    base_confidences_from_facts,
)

from tests.conftest import example51_domain, make_example51_collection


def row(*values):
    return tuple(Constant(v) for v in values)


@pytest.fixture
def calculus():
    return ExactCalculus(
        IdentityInstance(make_example51_collection(), example51_domain(1))
    )


SCAN = RelationScan("R", 1)


class TestEvents:
    def test_scan_events_single_monomials(self, calculus):
        events = calculus.events(SCAN)
        # covered facts a, b, c plus the enumerated anonymous fact d1
        assert set(events) == {row("a"), row("b"), row("c"), row("d1")}
        assert events[row("b")] == frozenset({frozenset({fact("R", "b")})})

    def test_projection_merges_alternatives(self, calculus):
        events = calculus.events(Projection([Constant("t")], SCAN))
        merged = events[row("t")]
        assert len(merged) == 4  # a or b or c or the anonymous d1

    def test_product_conjoins(self, calculus):
        events = calculus.events(Product(SCAN, SCAN))
        pair = events[row("a", "b")]
        assert pair == frozenset({frozenset({fact("R", "a"), fact("R", "b")})})

    def test_absorption(self, calculus):
        """(a) ∨ (a ∧ b) absorbs to (a): self-union after product shape."""
        q = UnionNode(SCAN, Projection([0], Product(SCAN, SCAN)))
        events = calculus.events(q)
        assert events[row("a")] == frozenset({frozenset({fact("R", "a")})})

    def test_wrong_relation_rejected(self, calculus):
        with pytest.raises(QueryError):
            calculus.events(RelationScan("S", 1))

    def test_wrong_arity_rejected(self, calculus):
        with pytest.raises(QueryError):
            calculus.events(RelationScan("R", 2))


class TestExactness:
    """The calculus must equal world enumeration on every operator —
    including exactly the cases where Definition 5.1 deviates (E6)."""

    QUERIES = [
        SCAN,
        Selection(Comparison(Col(0), "=", "b"), SCAN),
        Projection([0], SCAN),
        Projection([Constant("t")], SCAN),          # merging projection
        Product(SCAN, SCAN),                        # correlated self-product
        UnionNode(SCAN, SCAN),                      # self-union
        Projection([0], Product(SCAN, SCAN)),
    ]

    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: type(q).__name__)
    def test_matches_enumeration(self, query):
        collection = make_example51_collection()
        domain = example51_domain(1)
        calculus = ExactCalculus(IdentityInstance(collection, domain))
        enumerated = answer_query(query, collection, domain).confidences
        for r, confidence in calculus.confidences(query).items():
            assert enumerated.get(r, Fraction(0)) == confidence, r

    def test_repairs_def51_deviation(self):
        """Where the ⊕/· calculus is approximate, the exact calculus is not."""
        collection = make_example51_collection()
        domain = example51_domain(1)
        calculus = ExactCalculus(IdentityInstance(collection, domain))
        query = Projection([Constant("t")], SCAN)
        exact = answer_query(query, collection, domain).confidences[row("t")]
        via_exact_calculus = calculus.confidence(query, row("t"))
        base = base_confidences_from_facts(
            covered_fact_confidences(collection, domain)
        )
        via_def51 = propagate(query, base)[row("t")]
        assert via_exact_calculus == exact == 1
        assert via_def51 != exact  # Def 5.1's independence gap

    def test_confidence_of_missing_row_zero(self, calculus):
        assert calculus.confidence(SCAN, row("zz")) == 0


class TestAnonymousPopulation:
    def test_anonymous_facts_in_population(self, calculus):
        assert calculus.population_complete
        confidence = calculus.confidence(SCAN, row("d1"))
        assert confidence == Fraction(2, 7)  # the Example 5.1 anonymous value

    def test_collapse_counts_anonymous_contribution(self):
        """The bug hypothesis found: P(R nonempty) must include worlds made
        only of anonymous facts."""
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a")], "1/4", "1/4", name="S1",
                )
            ]
        )
        domain = ["a", "b", "c", "d"]
        calculus = ExactCalculus(IdentityInstance(col, domain))
        query = Projection([Constant("t")], SCAN)
        exact = answer_query(query, col, domain).confidences[row("t")]
        assert calculus.confidence(query, row("t")) == exact

    def test_huge_anonymous_lossy_query_refused(self):
        collection = make_example51_collection()
        domain = example51_domain(100)  # 100 anonymous facts > cap
        calculus = ExactCalculus(IdentityInstance(collection, domain))
        assert not calculus.population_complete
        with pytest.raises(DomainTooLargeError):
            calculus.confidences(Projection([Constant("t")], SCAN))

    def test_huge_anonymous_lossless_query_ok(self):
        collection = make_example51_collection()
        domain = example51_domain(100)
        calculus = ExactCalculus(IdentityInstance(collection, domain))
        confidences = calculus.confidences(
            Projection([0], SCAN)  # information-preserving
        )
        assert confidences[row("b")] == calculus.counter.confidence(
            fact("R", "b")
        )


class TestEventProbability:
    def test_single_monomial_is_marginal(self, calculus):
        probability = event_probability(
            frozenset({frozenset({fact("R", "b")})}), calculus.counter
        )
        assert probability == Fraction(6, 7)

    def test_empty_event_zero(self, calculus):
        assert event_probability(frozenset(), calculus.counter) == 0

    def test_inclusion_exclusion_pair(self, calculus):
        """P(a ∨ c) = P(a) + P(c) − P(a ∧ c), against direct counting."""
        a, c = fact("R", "a"), fact("R", "c")
        event = frozenset({frozenset({a}), frozenset({c})})
        counter = calculus.counter
        direct = Fraction(
            counter.count_worlds_containing(a)
            + counter.count_worlds_containing(c)
            - counter.count_worlds_containing_all([a, c]),
            counter.count_worlds(),
        )
        assert event_probability(event, counter) == direct

    def test_alternative_cap(self, calculus):
        big_event = frozenset(
            frozenset({fact("R", f"x{i}")}) for i in range(20)
        )
        with pytest.raises(DomainTooLargeError):
            event_probability(big_event, calculus.counter)
