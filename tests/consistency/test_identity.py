"""Tests for the identity-view consistency DP."""

import pytest

from repro.exceptions import SourceError
from repro.model import GlobalDatabase, fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.consistency import check_identity, verify_witness
from repro.confidence import BlockCounter, IdentityInstance


def identity_col(*specs):
    """specs: (values, c, s) triples."""
    sources = []
    for i, (values, c, s) in enumerate(specs, start=1):
        sources.append(
            SourceDescriptor(
                identity_view(f"V{i}", "R", 1),
                [fact(f"V{i}", v) for v in values],
                c,
                s,
                name=f"S{i}",
            )
        )
    return SourceCollection(sources)


class TestBasicDecisions:
    def test_example51_consistent(self, example51):
        result = check_identity(example51)
        assert result.consistent and result.method == "identity-dp"
        assert verify_witness(example51, result.witness)

    def test_single_exact_source(self):
        col = identity_col((["a", "b"], 1, 1))
        result = check_identity(col)
        assert result.consistent
        assert result.witness == GlobalDatabase([fact("R", "a"), fact("R", "b")])

    def test_conflicting_exact_sources(self):
        col = identity_col((["a"], 1, 1), (["b"], 1, 1))
        assert not check_identity(col).consistent

    def test_sound_fact_vs_foreign_completeness(self):
        # S1 exact on {a}; S2 sound on {b}: D must contain b but equal {a}.
        col = identity_col((["a"], 1, 1), (["b"], 0, 1))
        assert not check_identity(col).consistent

    def test_empty_collection_like(self):
        col = identity_col(([], 0, 0))
        result = check_identity(col)
        assert result.consistent and len(result.witness) == 0

    def test_zero_bounds_always_consistent(self):
        col = identity_col((["a", "b"], 0, 0), (["c"], 0, 0))
        assert check_identity(col).consistent

    def test_requires_identity_shape(self):
        col = SourceCollection(
            [SourceDescriptor(parse_rule("V(x) <- R(x,y)"), [], 0, 0, name="A")]
        )
        with pytest.raises(SourceError):
            check_identity(col)


class TestWitnessProperties:
    def test_witness_minimal_size(self, example51):
        # smallest possible world of Example 5.1 is {b}
        result = check_identity(example51)
        assert result.witness == GlobalDatabase([fact("R", "b")])

    def test_witness_within_lemma_bound(self):
        col = identity_col((["a", "b", "c"], "1/3", "2/3"), (["b", "d"], "1/2", "1/2"))
        result = check_identity(col)
        if result.consistent:
            assert verify_witness(col, result.witness)

    def test_witness_subset_of_union(self, example51):
        result = check_identity(example51)
        union = {fact("R", "a"), fact("R", "b"), fact("R", "c")}
        assert set(result.witness.facts()) <= union


class TestAgainstBlockCounter:
    """DP consistency must agree with world counting over the same domain."""

    @pytest.mark.parametrize(
        "specs",
        [
            ((["a", "b"], "1/2", "1/2"), (["b", "c"], "1/2", "1/2")),
            ((["a"], 1, 1), (["b"], 0, 1)),
            ((["a", "b"], 1, "1/2"), (["b"], "1/2", 1)),
            ((["a", "b", "c"], "2/3", "2/3"),),
            ((["a"], 1, 1), (["a", "b"], "1/2", "1/2")),
        ],
    )
    def test_agreement(self, specs):
        col = identity_col(*specs)
        domain = sorted({v for values, _, _ in specs for v in values})
        dp_says = check_identity(col).consistent
        counting_says = BlockCounter(IdentityInstance(col, domain)).is_consistent()
        assert dp_says == counting_says
