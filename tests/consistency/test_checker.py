"""Tests for the general CONSISTENCY checker."""

import pytest

from repro.exceptions import SourceError
from repro.model import Constant, GlobalDatabase, Variable, fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.consistency import (
    check_consistency,
    is_consistent,
    quotient_valuations,
    verify_witness,
)


class TestDispatch:
    def test_empty_collection_consistent(self):
        result = check_consistency(SourceCollection([]))
        assert result.consistent and result.method == "empty-collection"

    def test_identity_fast_path_used(self, example51):
        assert check_consistency(example51).method == "identity-dp"

    def test_builtins_rejected(self):
        view = parse_rule("V(x) <- R(x), After(x, 0)")
        col = SourceCollection([SourceDescriptor(view, [], 0, 0, name="A")])
        with pytest.raises(SourceError):
            check_consistency(col)


class TestGeneralViews:
    def test_projection_view_exact(self, exact_single_source):
        result = check_consistency(exact_single_source)
        assert result.consistent and result.method == "canonical-freeze"
        assert verify_witness(exact_single_source, result.witness)

    def test_join_view(self):
        view = parse_rule("V(x, z) <- R(x, y), S(y, z)")
        col = SourceCollection(
            [SourceDescriptor(view, [fact("V", "a", "b")], 1, 1, name="S1")]
        )
        result = check_consistency(col)
        assert result.consistent
        assert fact("V", "a", "b") in view.apply(result.witness)

    def test_partial_bounds_general_view(self):
        view = parse_rule("V(x) <- R(x, y)")
        col = SourceCollection(
            [
                SourceDescriptor(
                    view,
                    [fact("V", "a"), fact("V", "b"), fact("V", "junk")],
                    "1/2",
                    "2/3",
                    name="S1",
                )
            ]
        )
        result = check_consistency(col)
        assert result.consistent
        assert verify_witness(col, result.witness)

    def test_inconsistent_exact_empty_vs_nonempty(self):
        v1 = parse_rule("V1(x) <- R(x, y)")
        v2 = parse_rule("V2(x) <- R(x, y)")
        col = SourceCollection(
            [
                SourceDescriptor(v1, [fact("V1", "a")], 1, 1, name="S1"),
                SourceDescriptor(v2, [], 1, 1, name="S2"),
            ]
        )
        result = check_consistency(col)
        assert not result.consistent and result.decisive

    def test_two_sources_shared_relation(self):
        v1 = parse_rule("V1(x) <- R(x, y)")
        v2 = parse_rule("V2(y) <- R(x, y)")
        col = SourceCollection(
            [
                SourceDescriptor(v1, [fact("V1", "a")], 1, 1, name="S1"),
                SourceDescriptor(v2, [fact("V2", "b")], 1, 1, name="S2"),
            ]
        )
        result = check_consistency(col)
        assert result.consistent
        witness = result.witness
        assert {f.args[0].value for f in v1.apply(witness)} == {"a"}
        assert {f.args[0].value for f in v2.apply(witness)} == {"b"}

    def test_quotient_search_needed(self):
        """A case the canonical freeze cannot solve: completeness forces the
        two grounded bodies to merge into a single R fact."""
        view = parse_rule("W(x) <- R(x, y)")
        exact_projection = parse_rule("U(y) <- R(x, y)")
        col = SourceCollection(
            [
                SourceDescriptor(view, [fact("W", "a")], 1, 1, name="S1"),
                # exact: the second column takes exactly the single value "z"
                SourceDescriptor(
                    exact_projection, [fact("U", "z")], 1, 1, name="S2"
                ),
            ]
        )
        result = check_consistency(col)
        assert result.consistent
        assert verify_witness(col, result.witness)


class TestTruncation:
    def test_truncated_negative_is_indecisive(self):
        view = parse_rule("W(x) <- R(x, y)")
        exact_projection = parse_rule("U(y) <- R(x, y)")
        col = SourceCollection(
            [
                SourceDescriptor(view, [fact("W", "a")], 1, 1, name="S1"),
                SourceDescriptor(exact_projection, [fact("U", "z")], 1, 1, name="S2"),
            ]
        )
        result = check_consistency(col, max_quotients=0)
        # freeze fails, quotients capped at 0 -> indecisive negative
        assert not result.consistent and not result.decisive


class TestQuotientValuations:
    def test_canonical_fresh_growth(self):
        x, y = Variable("x"), Variable("y")
        constants = [Constant("a")]
        valuations = list(quotient_valuations([x, y], constants))
        # images: {a,f1} x {a, f_used+1} with restricted growth:
        # (a,a), (a,f1), (f1,a), (f1,f1), (f1,f2) -> 5
        assert len(valuations) == 5
        images = {
            (v.get(x).value, v.get(y).value) for v in valuations
        }
        assert ("a", "a") in images
        assert len(images) == 5

    def test_no_variables(self):
        valuations = list(quotient_valuations([], [Constant("a")]))
        assert len(valuations) == 1 and len(valuations[0]) == 0
