"""Tests for the Lemma 3.1 bounds and the canonical domain."""

from repro.model import Constant, GlobalDatabase, fact
from repro.queries import parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.consistency import (
    canonical_domain,
    check_consistency,
    constant_bound,
    size_bound,
    verify_witness,
)


class TestBounds:
    def test_size_bound_formula(self, example51):
        assert size_bound(example51) == 1 * 4  # max body 1, total ext 4

    def test_size_bound_with_join_bodies(self):
        view = parse_rule("V(x) <- R(x, y), S(y, z), T(z)")
        col = SourceCollection(
            [
                SourceDescriptor(
                    view, [fact("V", 1), fact("V", 2)], "1/2", "1/2", name="A"
                )
            ]
        )
        assert size_bound(col) == 3 * 2

    def test_constant_bound(self, example51):
        assert constant_bound(example51) == size_bound(example51) * 1


class TestCanonicalDomain:
    def test_contains_extension_constants(self, example51):
        domain = canonical_domain(example51)
        values = {c.value for c in domain}
        assert {"a", "b", "c"} <= values

    def test_fresh_constants_added(self, example51):
        domain = canonical_domain(example51, extra=2)
        assert len(domain) == 3 + 2
        assert len(set(domain)) == len(domain)

    def test_default_covers_view_variables(self):
        view = parse_rule("V(x) <- R(x, y), S(y, z)")
        col = SourceCollection([SourceDescriptor(view, [], 0, 0, name="A")])
        domain = canonical_domain(col)
        assert len(domain) >= 3  # x, y, z at least


class TestLemma31Property:
    """Every positive verdict must come with a witness inside the bound."""

    def test_identity_witness(self, example51):
        result = check_consistency(example51)
        assert len(result.witness) <= size_bound(example51)

    def test_general_witness(self, exact_single_source):
        result = check_consistency(exact_single_source)
        assert verify_witness(exact_single_source, result.witness)
        assert len(result.witness) <= size_bound(exact_single_source)
