"""Tests for SourceCollection and the poss(S) predicate."""

import pytest

from repro.exceptions import SourceError
from repro.model import Constant, GlobalDatabase, fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor

from tests.conftest import make_example51_collection


class TestStructure:
    def test_duplicate_names_rejected(self):
        s = SourceDescriptor(identity_view("V", "R", 1), [], 0, 0, name="dup")
        with pytest.raises(SourceError):
            SourceCollection([s, s])

    def test_by_name(self, example51):
        assert example51.by_name("S1").name == "S1"
        with pytest.raises(SourceError):
            example51.by_name("S99")

    def test_indexing_and_iteration(self, example51):
        assert example51[0].name == "S1"
        assert [s.name for s in example51] == ["S1", "S2"]

    def test_extended(self, example51):
        extra = SourceDescriptor(identity_view("V9", "R", 1), [], 0, 0, name="S9")
        assert len(example51.extended(extra)) == 3
        assert len(example51) == 2  # original untouched


class TestSchemaAndConstants:
    def test_schema_from_view_bodies(self):
        col = SourceCollection(
            [
                SourceDescriptor(parse_rule("V(x) <- R(x, y)"), [], 0, 0, name="A"),
                SourceDescriptor(parse_rule("W(x) <- S(x)"), [], 0, 0, name="B"),
            ]
        )
        schema = col.schema()
        assert schema.arity("R") == 2 and schema.arity("S") == 1

    def test_extension_constants(self, example51):
        values = {c.value for c in example51.extension_constants()}
        assert values == {"a", "b", "c"}

    def test_view_constants(self):
        col = SourceCollection(
            [SourceDescriptor(parse_rule('V(x) <- R(x, "k")'), [], 0, 0, name="A")]
        )
        assert Constant("k") in col.view_constants()


class TestPaperQuantities:
    def test_lemma31_bound(self, example51):
        # max body size 1, total extension size 4
        assert example51.lemma31_size_bound() == 4

    def test_lemma31_bound_with_joins(self):
        view = parse_rule("V(x) <- R(x, y), S(y)")
        col = SourceCollection(
            [SourceDescriptor(view, [fact("V", 1), fact("V", 2)], 0, 0, name="A")]
        )
        assert col.lemma31_size_bound() == 2 * 2

    def test_constant_bound(self, example51):
        assert example51.lemma31_constant_bound() == 4 * 1


class TestPossPredicate:
    def test_admits_example51(self, example51):
        assert example51.admits(GlobalDatabase([fact("R", "b")]))
        assert not example51.admits(GlobalDatabase([]))
        # too many unsupported facts break completeness
        assert not example51.admits(
            GlobalDatabase([fact("R", "b"), fact("R", "x"), fact("R", "y")])
        )

    def test_violations_messages(self, example51):
        problems = example51.violations(GlobalDatabase([]))
        assert len(problems) == 2  # soundness of both sources
        assert all("soundness" in p for p in problems)

    def test_violations_empty_for_possible_world(self, example51):
        assert example51.violations(GlobalDatabase([fact("R", "b")])) == []


class TestIdentityDetection:
    def test_identity_relation(self, example51):
        assert example51.identity_relation() == "R"
        assert example51.all_identity()

    def test_mixed_relations_not_identity_case(self):
        col = SourceCollection(
            [
                SourceDescriptor(identity_view("V1", "R", 1), [], 0, 0, name="A"),
                SourceDescriptor(identity_view("V2", "S", 1), [], 0, 0, name="B"),
            ]
        )
        assert col.identity_relation() is None

    def test_mixed_arities_not_identity_case(self):
        col = SourceCollection(
            [
                SourceDescriptor(identity_view("V1", "R", 1), [], 0, 0, name="A"),
                SourceDescriptor(identity_view("V2", "R", 2), [], 0, 0, name="B"),
            ]
        )
        assert col.identity_relation() is None

    def test_non_identity_view(self):
        col = SourceCollection(
            [SourceDescriptor(parse_rule("V(x) <- R(x, y)"), [], 0, 0, name="A")]
        )
        assert col.identity_relation() is None

    def test_empty_collection(self):
        assert SourceCollection([]).identity_relation() is None
