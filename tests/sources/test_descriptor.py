"""Tests for SourceDescriptor ⟨φ, v, c, s⟩."""

from fractions import Fraction

import pytest

from repro.exceptions import ArityError, BoundError, SourceError
from repro.model import GlobalDatabase, fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceDescriptor, as_bound


class TestBoundCoercion:
    def test_fraction_passthrough(self):
        assert as_bound(Fraction(1, 3)) == Fraction(1, 3)

    def test_string_fraction(self):
        assert as_bound("1/3") == Fraction(1, 3)

    def test_string_decimal(self):
        assert as_bound("0.5") == Fraction(1, 2)

    def test_float_uses_decimal_intent(self):
        assert as_bound(0.1) == Fraction(1, 10)

    def test_int(self):
        assert as_bound(1) == Fraction(1)
        assert as_bound(0) == Fraction(0)

    def test_out_of_range(self):
        with pytest.raises(BoundError):
            as_bound(1.5)
        with pytest.raises(BoundError):
            as_bound(-0.1)

    def test_garbage(self):
        with pytest.raises(BoundError):
            as_bound("not-a-number")
        with pytest.raises(BoundError):
            as_bound(True)


class TestValidation:
    def test_extension_relation_must_match_head(self):
        with pytest.raises(SourceError):
            SourceDescriptor(
                identity_view("V1", "R", 1), [fact("V2", "a")], 1, 1
            )

    def test_extension_arity_must_match_head(self):
        with pytest.raises(ArityError):
            SourceDescriptor(
                identity_view("V1", "R", 1), [fact("V1", "a", "b")], 1, 1
            )

    def test_default_name_is_view_relation(self):
        s = SourceDescriptor(identity_view("V1", "R", 1), [], 1, 1)
        assert s.name == "V1"


class TestDerivedQuantities:
    def test_min_sound_count_ceil(self):
        s = SourceDescriptor(
            identity_view("V", "R", 1),
            [fact("V", i) for i in range(3)],
            0,
            "1/2",
        )
        assert s.min_sound_count() == 2  # ceil(1.5)

    def test_min_sound_count_zero_bound(self):
        s = SourceDescriptor(
            identity_view("V", "R", 1), [fact("V", 1)], 0, 0
        )
        assert s.min_sound_count() == 0

    def test_max_intended_size_floor(self):
        s = SourceDescriptor(identity_view("V", "R", 1), [], "1/3", 0)
        assert s.max_intended_size(2) == 6  # floor(2 / (1/3))

    def test_max_intended_size_unbounded(self):
        s = SourceDescriptor(identity_view("V", "R", 1), [], 0, 0)
        assert s.max_intended_size(2) is None

    def test_size(self):
        s = SourceDescriptor(
            identity_view("V", "R", 1), [fact("V", 1), fact("V", 2)], 0, 0
        )
        assert s.size() == 2


class TestMeasuresAndSatisfaction:
    def test_satisfied_by(self):
        view = parse_rule("V(x) <- R(x, y)")
        s = SourceDescriptor(view, [fact("V", 1), fact("V", 9)], "1/2", "1/2")
        db = GlobalDatabase([fact("R", 1, 2), fact("R", 2, 3)])
        # completeness 1/2, soundness 1/2 -> bounds met with equality
        assert s.satisfied_by(db)
        tighter = s.with_bounds(soundness_bound="3/4")
        assert not tighter.satisfied_by(db)

    def test_intended_content(self):
        view = parse_rule("V(x) <- R(x, y)")
        s = SourceDescriptor(view, [], 0, 0)
        db = GlobalDatabase([fact("R", 1, 2)])
        assert s.intended_content(db) == frozenset({fact("V", 1)})

    def test_is_identity(self):
        assert SourceDescriptor(identity_view("V", "R", 2), [], 0, 0).is_identity()
        view = parse_rule("V(x) <- R(x, y)")
        assert not SourceDescriptor(view, [], 0, 0).is_identity()

    def test_equality_and_hash(self):
        a = SourceDescriptor(identity_view("V", "R", 1), [fact("V", 1)], 0, 1)
        b = SourceDescriptor(identity_view("V", "R", 1), [fact("V", 1)], 0, 1)
        assert a == b and hash(a) == hash(b)
        assert a != a.with_bounds(completeness_bound="1/2")
