"""Tests for the §2.2 quality estimators."""

import random
from fractions import Fraction

import pytest

from repro.exceptions import SourceError
from repro.model import fact
from repro.sources.quality import (
    clopper_pearson_lower,
    completeness_from_fd,
    estimate_completeness,
    estimate_soundness,
    intended_size_from_fd,
    required_sample_size,
)


class TestClopperPearson:
    def test_all_successes_high_bound(self):
        assert clopper_pearson_lower(100, 100, 0.95) > 0.96

    def test_zero_successes(self):
        assert clopper_pearson_lower(0, 50, 0.95) == 0.0

    def test_bound_below_point_estimate(self):
        assert clopper_pearson_lower(80, 100, 0.95) < 0.8

    def test_monotone_in_confidence(self):
        loose = clopper_pearson_lower(80, 100, 0.9)
        tight = clopper_pearson_lower(80, 100, 0.99)
        assert tight < loose

    def test_invalid_arguments(self):
        with pytest.raises(SourceError):
            clopper_pearson_lower(5, 0, 0.95)
        with pytest.raises(SourceError):
            clopper_pearson_lower(5, 4, 0.95)
        with pytest.raises(SourceError):
            clopper_pearson_lower(1, 4, 1.5)


class TestEstimateSoundness:
    def test_lower_bound_actually_holds(self):
        rng = random.Random(11)
        truth = {fact("V", i) for i in range(80)}
        junk = {fact("V", 1000 + i) for i in range(20)}
        extension = truth | junk  # true soundness 0.8
        bound = estimate_soundness(
            extension, lambda f: f in truth, sample_size=60,
            confidence=0.95, rng=rng,
        )
        assert 0 < bound <= 0.9

    def test_empty_extension_is_sound(self):
        assert estimate_soundness([], lambda f: True, 10) == 1.0

    def test_sample_larger_than_extension_uses_all(self):
        truth = {fact("V", 1)}
        bound = estimate_soundness(truth, lambda f: True, 100, rng=random.Random(0))
        assert bound > 0


class TestSampleSize:
    def test_classic_values(self):
        # 95% confidence, 5% margin, p=0.5 -> ~385
        assert 380 <= required_sample_size(0.95, 0.05) <= 390

    def test_tighter_margin_needs_more(self):
        assert required_sample_size(0.95, 0.01) > required_sample_size(0.95, 0.1)

    def test_invalid(self):
        with pytest.raises(SourceError):
            required_sample_size(0, 0.05)
        with pytest.raises(SourceError):
            required_sample_size(0.95, 0)


class TestFDBasedCompleteness:
    def test_intended_size(self):
        # the paper's climatology case: stations x months
        assert intended_size_from_fd([6000, 12 * 294]) == 6000 * 3528

    def test_completeness_from_fd(self):
        assert completeness_from_fd(50, [10, 10]) == Fraction(1, 2)

    def test_capped_at_one(self):
        assert completeness_from_fd(200, [10, 10]) == 1

    def test_zero_domain(self):
        assert completeness_from_fd(0, [0, 5]) == 1

    def test_negative_rejected(self):
        with pytest.raises(SourceError):
            completeness_from_fd(-1, [10])
        with pytest.raises(SourceError):
            intended_size_from_fd([-2])


class TestEstimateCompleteness:
    def test_basic(self):
        assert estimate_completeness(50, 100, 0.8) == pytest.approx(0.4)

    def test_capped(self):
        assert estimate_completeness(300, 100, 1.0) == 1.0

    def test_trivial_intended(self):
        assert estimate_completeness(5, 0, 0.5) == 1.0

    def test_invalid(self):
        with pytest.raises(SourceError):
            estimate_completeness(-1, 10, 0.5)
        with pytest.raises(SourceError):
            estimate_completeness(1, 10, 1.5)
