"""Tests for Definitions 2.1/2.2 — completeness and soundness measures."""

from fractions import Fraction

from repro.model import GlobalDatabase, fact
from repro.queries import identity_view, parse_rule
from repro.sources.measures import (
    completeness,
    completeness_of_extension,
    is_complete,
    is_exact,
    is_sound,
    precision,
    recall,
    soundness,
    soundness_of_extension,
)


class TestSetLevelMeasures:
    def test_completeness_fraction(self):
        intended = [fact("V", i) for i in range(4)]
        held = [fact("V", 0), fact("V", 1), fact("V", 99)]
        assert completeness_of_extension(held, intended) == Fraction(1, 2)

    def test_soundness_fraction(self):
        intended = [fact("V", i) for i in range(4)]
        held = [fact("V", 0), fact("V", 1), fact("V", 99)]
        assert soundness_of_extension(held, intended) == Fraction(2, 3)

    def test_empty_intended_is_fully_complete(self):
        assert completeness_of_extension([fact("V", 1)], []) == 1

    def test_empty_extension_is_fully_sound(self):
        assert soundness_of_extension([], [fact("V", 1)]) == 1

    def test_both_empty(self):
        assert completeness_of_extension([], []) == 1
        assert soundness_of_extension([], []) == 1

    def test_measures_are_exact_rationals(self):
        intended = [fact("V", i) for i in range(3)]
        held = [fact("V", 0)]
        c = completeness_of_extension(held, intended)
        assert isinstance(c, Fraction) and c == Fraction(1, 3)


class TestViewLevelMeasures:
    def test_against_database(self):
        view = parse_rule("V(x) <- R(x, y)")
        db = GlobalDatabase([fact("R", 1, 2), fact("R", 2, 3)])
        held = [fact("V", 1), fact("V", 7)]
        assert completeness(view, held, db) == Fraction(1, 2)
        assert soundness(view, held, db) == Fraction(1, 2)

    def test_qualitative_iff_quantitative(self):
        view = identity_view("V", "R", 1)
        db = GlobalDatabase([fact("R", 1), fact("R", 2)])
        sound_ext = [fact("V", 1)]
        complete_ext = [fact("V", 1), fact("V", 2), fact("V", 3)]
        exact_ext = [fact("V", 1), fact("V", 2)]
        assert is_sound(view, sound_ext, db) and soundness(view, sound_ext, db) == 1
        assert is_complete(view, complete_ext, db)
        assert completeness(view, complete_ext, db) == 1
        assert is_exact(view, exact_ext, db)
        assert not is_exact(view, sound_ext, db)

    def test_sound_iff_s_equals_one(self):
        view = identity_view("V", "R", 1)
        db = GlobalDatabase([fact("R", 1)])
        for ext in ([], [fact("V", 1)], [fact("V", 1), fact("V", 2)]):
            assert is_sound(view, ext, db) == (soundness(view, ext, db) == 1)

    def test_complete_iff_c_equals_one(self):
        view = identity_view("V", "R", 1)
        db = GlobalDatabase([fact("R", 1)])
        for ext in ([], [fact("V", 1)], [fact("V", 2)]):
            assert is_complete(view, ext, db) == (completeness(view, ext, db) == 1)


class TestIRCorrespondence:
    """Paper §2.2: recall ↔ completeness, precision ↔ soundness."""

    def test_recall_is_completeness(self):
        returned = ["d1", "d2"]
        correct = ["d1", "d3", "d4"]
        assert recall(returned, correct) == Fraction(1, 3)

    def test_precision_is_soundness(self):
        returned = ["d1", "d2"]
        correct = ["d1", "d3", "d4"]
        assert precision(returned, correct) == Fraction(1, 2)
