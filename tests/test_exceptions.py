"""Tests for the exception hierarchy and miscellaneous small objects."""

import pytest

from repro import exceptions
from repro.consistency import ConsistencyResult
from repro.model import GlobalDatabase, fact


class TestHierarchy:
    SUBCLASSES = [
        exceptions.ModelError,
        exceptions.ArityError,
        exceptions.NotGroundError,
        exceptions.QueryError,
        exceptions.UnsafeQueryError,
        exceptions.ParseError,
        exceptions.BuiltinError,
        exceptions.SourceError,
        exceptions.BoundError,
        exceptions.InconsistentCollectionError,
        exceptions.DomainTooLargeError,
        exceptions.ReductionError,
    ]

    @pytest.mark.parametrize("cls", SUBCLASSES, ids=lambda c: c.__name__)
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, exceptions.ReproError)

    def test_catching_base_catches_all(self):
        for cls in self.SUBCLASSES:
            with pytest.raises(exceptions.ReproError):
                raise cls("boom")

    def test_specific_relationships(self):
        assert issubclass(exceptions.ArityError, exceptions.ModelError)
        assert issubclass(exceptions.UnsafeQueryError, exceptions.QueryError)
        assert issubclass(exceptions.ParseError, exceptions.QueryError)
        assert issubclass(exceptions.BoundError, exceptions.SourceError)


class TestConsistencyResult:
    def test_truthiness(self):
        assert ConsistencyResult(consistent=True)
        assert not ConsistencyResult(consistent=False)

    def test_repr_mentions_method(self):
        result = ConsistencyResult(
            consistent=True,
            witness=GlobalDatabase([fact("R", 1)]),
            method="identity-dp",
            combinations_tried=3,
        )
        text = repr(result)
        assert "identity-dp" in text and "combinations_tried=3" in text

    def test_defaults(self):
        result = ConsistencyResult(consistent=False)
        assert result.witness is None and result.decisive
