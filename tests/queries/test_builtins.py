"""Tests for the built-in predicate registry."""

import pytest

from repro.exceptions import BuiltinError
from repro.model import atom, fact
from repro.queries.builtins import (
    Builtin,
    BuiltinRegistry,
    default_registry,
)


class TestBuiltin:
    def test_check(self):
        after = Builtin("After", 2, lambda x, y: x > y)
        assert after.check((1950, 1900))
        assert not after.check((1850, 1900))

    def test_arity_mismatch(self):
        after = Builtin("After", 2, lambda x, y: x > y)
        with pytest.raises(BuiltinError):
            after.check((1,))

    def test_zero_arity_rejected(self):
        with pytest.raises(BuiltinError):
            Builtin("Bad", 0, lambda: True)

    def test_type_error_is_false(self):
        after = Builtin("After", 2, lambda x, y: x > y)
        assert not after.check(("abc", 5))


class TestRegistry:
    def test_default_names(self):
        registry = default_registry()
        for name in ["After", "Before", "Lt", "Le", "Gt", "Ge", "Eq", "Neq"]:
            assert registry.is_builtin(name)

    def test_check_atom(self):
        registry = default_registry()
        assert registry.check_atom(fact("After", 1950, 1900))
        assert not registry.check_atom(fact("Before", 1950, 1900))

    def test_check_atom_requires_ground(self):
        registry = default_registry()
        from repro.model import Variable

        with pytest.raises(BuiltinError):
            registry.check_atom(atom("After", Variable("y"), 1900))

    def test_unknown_builtin(self):
        with pytest.raises(BuiltinError):
            BuiltinRegistry().check_atom(fact("After", 1, 2))

    def test_custom_registration(self):
        registry = BuiltinRegistry()
        registry.register(Builtin("Even", 1, lambda x: x % 2 == 0))
        assert registry.check_atom(fact("Even", 4))
        assert not registry.check_atom(fact("Even", 3))

    def test_semantics_of_each_comparison(self):
        registry = default_registry()
        cases = {
            ("Lt", 1, 2): True, ("Lt", 2, 2): False,
            ("Le", 2, 2): True, ("Le", 3, 2): False,
            ("Gt", 3, 2): True, ("Gt", 2, 2): False,
            ("Ge", 2, 2): True, ("Ge", 1, 2): False,
            ("Eq", 2, 2): True, ("Eq", 1, 2): False,
            ("Neq", 1, 2): True, ("Neq", 2, 2): False,
        }
        for (name, a, b), expected in cases.items():
            assert registry.check_atom(fact(name, a, b)) is expected, name
