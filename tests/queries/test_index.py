"""Tests for the hash-indexed evaluation engine."""

import random

import pytest

from repro.model import Constant, GlobalDatabase, fact
from repro.queries import (
    DatabaseIndex,
    evaluate,
    evaluate_indexed,
    parse_rule,
)


@pytest.fixture
def chain_db():
    return GlobalDatabase(
        [fact("E", 1, 2), fact("E", 2, 3), fact("E", 3, 4), fact("E", 2, 5)]
    )


class TestDatabaseIndex:
    def test_lookup_by_position(self, chain_db):
        index = DatabaseIndex(chain_db)
        hits = index.lookup("E", (0,), (Constant(2),))
        assert {f.args[1].value for f in hits} == {3, 5}

    def test_lookup_composite_key(self, chain_db):
        index = DatabaseIndex(chain_db)
        assert len(index.lookup("E", (0, 1), (Constant(1), Constant(2)))) == 1
        assert index.lookup("E", (0, 1), (Constant(1), Constant(9))) == ()

    def test_empty_positions_full_scan(self, chain_db):
        index = DatabaseIndex(chain_db)
        assert len(index.lookup("E", (), ())) == 4

    def test_indexes_memoized(self, chain_db):
        index = DatabaseIndex(chain_db)
        index.lookup("E", (0,), (Constant(1),))
        index.lookup("E", (0,), (Constant(2),))
        assert index.index_count() == 1
        index.lookup("E", (1,), (Constant(2),))
        assert index.index_count() == 2

    def test_missing_relation(self, chain_db):
        index = DatabaseIndex(chain_db)
        assert index.lookup("Nope", (0,), (Constant(1),)) == ()

    def test_candidates_uses_bound_positions(self, chain_db):
        from repro.model import Variable, atom
        from repro.model.valuation import Substitution

        index = DatabaseIndex(chain_db)
        x, y = Variable("x"), Variable("y")
        pattern = atom("E", x, y)
        seeded = Substitution({x: Constant(2)})
        candidates = index.candidates(pattern, seeded)
        assert {f.args[1].value for f in candidates} == {3, 5}


class TestEvaluateIndexed:
    QUERIES = [
        "V(x) <- E(x, y)",
        "V(x, z) <- E(x, y), E(y, z)",
        "V(x) <- E(x, x)",
        "V(y) <- E(2, y)",
        "V(x, y) <- E(x, y), Lt(x, y)",
        "V(x, w) <- E(x, y), E(y, z), E(z, w)",
    ]

    @pytest.mark.parametrize("rule", QUERIES)
    def test_agrees_with_plain_evaluator(self, rule, chain_db):
        q = parse_rule(rule)
        assert evaluate_indexed(q, chain_db) == evaluate(q, chain_db)

    def test_accepts_prebuilt_index(self, chain_db):
        index = DatabaseIndex(chain_db)
        q1 = parse_rule("V(x) <- E(x, y)")
        q2 = parse_rule("V(x, z) <- E(x, y), E(y, z)")
        assert evaluate_indexed(q1, index) == evaluate(q1, chain_db)
        assert evaluate_indexed(q2, index) == evaluate(q2, chain_db)
        assert index.index_count() >= 1

    def test_random_databases(self):
        rng = random.Random(17)
        for _ in range(20):
            facts = [
                fact("E", rng.randint(1, 5), rng.randint(1, 5))
                for _ in range(rng.randint(0, 12))
            ]
            db = GlobalDatabase(facts)
            for rule in self.QUERIES:
                q = parse_rule(rule)
                assert evaluate_indexed(q, db) == evaluate(q, db), (rule, db)

    def test_large_join_correctness(self):
        rng = random.Random(5)
        facts = [
            fact("E", rng.randint(1, 40), rng.randint(1, 40))
            for _ in range(300)
        ]
        db = GlobalDatabase(facts)
        q = parse_rule("V(x, z) <- E(x, y), E(y, z)")
        assert evaluate_indexed(q, db) == evaluate(q, db)
