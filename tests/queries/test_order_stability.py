"""Regression: the greedy join order is a pure function of the atom multiset.

The greedy score (unbound variables, then arity) ties constantly — e.g. any
two fresh binary atoms — and the old tie-break was whatever ``min`` saw
first, which inherited set iteration order and varied across runs and
processes. ``order_body`` now breaks ties by relation name, argument terms,
and original position, so every permutation of a body produces one order.
"""

from itertools import permutations

from repro.queries import order_body, parse_rule


def body_of(rule):
    return parse_rule(rule).relational_body()


class TestStableTieBreak:
    def test_permutations_of_tied_atoms_agree(self):
        body = body_of("ans(x, z) <- E(x, y), F(y, z), G(z, w)")
        orders = {
            tuple(order_body(list(perm))) for perm in permutations(body)
        }
        assert len(orders) == 1

    def test_tied_same_relation_atoms_fall_back_to_argument_terms(self):
        body = body_of("ans(x, y, z) <- E(x, y), E(y, z), E(z, x)")
        orders = {
            tuple(order_body(list(perm))) for perm in permutations(body)
        }
        assert len(orders) == 1

    def test_bound_count_still_dominates(self):
        # The ground atom must come first regardless of relation names.
        body = body_of("ans(x) <- Z(x, y), A(1, 2)")
        ordered = order_body(body)
        assert ordered[0].relation == "A"

    def test_arity_still_dominates_relation_name(self):
        body = body_of("ans(x) <- A(x, y, z), Z(x)")
        ordered = order_body(body)
        assert ordered[0].relation == "Z"

    def test_order_is_deterministic_across_reparses(self):
        rule = "ans(x, w) <- E(x, y), F(y, z), E(z, w), F(w, x)"
        first = order_body(body_of(rule))
        for _ in range(20):
            assert order_body(body_of(rule)) == first

    def test_duplicate_atoms_preserve_multiplicity(self):
        body = body_of("ans(x, y) <- E(x, y), E(x, y)")
        assert len(order_body(body)) == 2
