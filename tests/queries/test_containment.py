"""Tests for homomorphism-based containment and minimization."""

import pytest

from repro.exceptions import QueryError
from repro.model import GlobalDatabase, fact
from repro.queries import (
    evaluate,
    is_contained_in,
    is_equivalent,
    minimize,
    parse_rule,
)


class TestContainment:
    def test_more_joins_contained_in_fewer(self):
        narrower = parse_rule("V(x) <- R(x,y), R(y,x)")
        wider = parse_rule("V(x) <- R(x,y)")
        assert is_contained_in(narrower, wider)
        assert not is_contained_in(wider, narrower)

    def test_constant_specialization(self):
        special = parse_rule("V(x) <- R(x, 1)")
        general = parse_rule("V(x) <- R(x, y)")
        assert is_contained_in(special, general)
        assert not is_contained_in(general, special)

    def test_incomparable_relations(self):
        q1 = parse_rule("V(x) <- R(x)")
        q2 = parse_rule("V(x) <- S(x)")
        assert not is_contained_in(q1, q2)
        assert not is_contained_in(q2, q1)

    def test_head_arity_mismatch(self):
        q1 = parse_rule("V(x) <- R(x, y)")
        q2 = parse_rule("V(x, y) <- R(x, y)")
        assert not is_contained_in(q1, q2)

    def test_containment_implies_result_containment(self):
        """Semantic check: Q1 ⊆ Q2 ⇒ Q1(D) ⊆ Q2(D) on concrete data."""
        narrower = parse_rule("V(x) <- R(x,y), R(y,x)")
        wider = parse_rule("V(x) <- R(x,y)")
        db = GlobalDatabase(
            [fact("R", 1, 2), fact("R", 2, 1), fact("R", 3, 4)]
        )
        assert evaluate(narrower, db) <= evaluate(wider, db)

    def test_builtins_rejected(self):
        q = parse_rule("V(x) <- R(x), After(x, 0)")
        plain = parse_rule("V(x) <- R(x)")
        with pytest.raises(QueryError):
            is_contained_in(q, plain)


class TestEquivalenceAndMinimize:
    def test_redundant_atom_removed(self):
        redundant = parse_rule("V(x) <- R(x,y), R(x,z)")
        minimal = minimize(redundant)
        assert minimal.body_size() == 1
        assert is_equivalent(minimal, redundant)

    def test_core_of_non_redundant_query_unchanged(self):
        q = parse_rule("V(x) <- R(x,y), S(y)")
        assert minimize(q).body_size() == 2

    def test_triangle_not_reducible(self):
        q = parse_rule("V(x) <- R(x,y), R(y,z), R(z,x)")
        assert minimize(q).body_size() == 3

    def test_path_with_redundant_generalization(self):
        # R(x,y),R(u,v) — the second atom folds onto the first
        q = parse_rule("V(x) <- R(x,y), R(u,v)")
        assert minimize(q).body_size() == 1

    def test_equivalence_of_renamed_queries(self):
        q1 = parse_rule("V(x) <- R(x, y)")
        q2 = parse_rule("V(u) <- R(u, w)")
        assert is_equivalent(q1, q2)
