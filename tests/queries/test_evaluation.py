"""Tests for repro.queries.evaluation: joins, builtins, witnesses."""

import pytest

from repro.model import GlobalDatabase, Variable, atom, fact
from repro.queries import (
    ConjunctiveQuery,
    default_registry,
    derives,
    evaluate,
    evaluate_naive,
    parse_rule,
    supporting_valuation,
    valuations,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture
def chain_db():
    return GlobalDatabase(
        [fact("E", 1, 2), fact("E", 2, 3), fact("E", 3, 4), fact("E", 2, 5)]
    )


class TestEvaluate:
    def test_single_atom(self, chain_db):
        q = ConjunctiveQuery(atom("V", x, y), [atom("E", x, y)])
        assert evaluate(q, chain_db) == frozenset(
            {fact("V", 1, 2), fact("V", 2, 3), fact("V", 3, 4), fact("V", 2, 5)}
        )

    def test_two_hop_join(self, chain_db):
        q = ConjunctiveQuery(atom("V", x, z), [atom("E", x, y), atom("E", y, z)])
        assert evaluate(q, chain_db) == frozenset(
            {fact("V", 1, 3), fact("V", 1, 5), fact("V", 2, 4)}
        )

    def test_cycle_detection(self, chain_db):
        q = ConjunctiveQuery(atom("V", x), [atom("E", x, y), atom("E", y, x)])
        assert evaluate(q, chain_db) == frozenset()
        with_cycle = chain_db.with_facts([fact("E", 2, 1)])
        assert evaluate(q, with_cycle) == frozenset({fact("V", 1), fact("V", 2)})

    def test_constants_in_body(self, chain_db):
        q = ConjunctiveQuery(atom("V", y), [atom("E", 2, y)])
        assert evaluate(q, chain_db) == frozenset({fact("V", 3), fact("V", 5)})

    def test_projection_deduplicates(self, chain_db):
        q = ConjunctiveQuery(atom("V", x), [atom("E", x, y)])
        assert evaluate(q, chain_db) == frozenset(
            {fact("V", 1), fact("V", 2), fact("V", 3)}
        )

    def test_empty_database(self):
        q = ConjunctiveQuery(atom("V", x), [atom("E", x, y)])
        assert evaluate(q, GlobalDatabase()) == frozenset()

    def test_self_join_same_relation(self, chain_db):
        q = ConjunctiveQuery(
            atom("V", x), [atom("E", x, y), atom("E", x, z), atom("E", y, z)]
        )
        # only x with two outgoing edges whose targets are connected: none here
        assert evaluate(q, chain_db) == frozenset()


class TestBuiltins:
    def test_after_filters(self):
        db = GlobalDatabase([fact("T", 1, 1899), fact("T", 2, 1950)])
        q = parse_rule("V(s) <- T(s, y), After(y, 1900)")
        assert evaluate(q, db) == frozenset({fact("V", 2)})

    def test_builtin_between_variables(self):
        db = GlobalDatabase([fact("R", 1, 2), fact("R", 3, 2)])
        q = parse_rule("V(x, y) <- R(x, y), Lt(x, y)")
        assert evaluate(q, db) == frozenset({fact("V", 1, 2)})

    def test_builtin_failing_everything(self):
        db = GlobalDatabase([fact("R", 1)])
        q = parse_rule("V(x) <- R(x), After(x, 100)")
        assert evaluate(q, db) == frozenset()

    def test_heterogeneous_comparison_fails_quietly(self):
        db = GlobalDatabase([fact("R", "abc")])
        q = parse_rule("V(x) <- R(x), After(x, 100)")
        assert evaluate(q, db) == frozenset()


class TestAgainstNaiveOracle:
    @pytest.mark.parametrize(
        "rule",
        [
            "V(x) <- E(x, y)",
            "V(x, z) <- E(x, y), E(y, z)",
            "V(x) <- E(x, x)",
            "V(x, y) <- E(x, y), E(y, x)",
            "V(y) <- E(1, y)",
        ],
    )
    def test_agreement(self, rule, chain_db):
        q = parse_rule(rule)
        assert evaluate(q, chain_db) == evaluate_naive(q, chain_db)

    def test_agreement_with_builtins(self, chain_db):
        q = parse_rule("V(x, y) <- E(x, y), Lt(x, y)")
        assert evaluate(q, chain_db) == evaluate_naive(q, chain_db)


class TestValuationsAndWitnesses:
    def test_valuations_count(self, chain_db):
        q = ConjunctiveQuery(atom("V", x, y), [atom("E", x, y)])
        assert len(list(valuations(q, chain_db))) == 4

    def test_supporting_valuation_grounds_body(self, chain_db):
        q = ConjunctiveQuery(atom("V", x, z), [atom("E", x, y), atom("E", y, z)])
        witness = supporting_valuation(q, chain_db, fact("V", 1, 3))
        assert witness is not None
        grounded_body = [a.substitute(witness) for a in q.body]
        assert all(g in chain_db for g in grounded_body)

    def test_supporting_valuation_none_for_underivable(self, chain_db):
        q = ConjunctiveQuery(atom("V", x, z), [atom("E", x, y), atom("E", y, z)])
        assert supporting_valuation(q, chain_db, fact("V", 4, 1)) is None

    def test_derives(self, chain_db):
        q = ConjunctiveQuery(atom("V", x, z), [atom("E", x, y), atom("E", y, z)])
        assert derives(q, chain_db, fact("V", 2, 4))
        assert not derives(q, chain_db, fact("V", 4, 2))
