"""Tests for the Datalog-style parser."""

import pytest

from repro.exceptions import NotGroundError, ParseError
from repro.model import Constant, Variable, atom
from repro.queries import parse_atom, parse_fact, parse_program, parse_rule


class TestParseAtom:
    def test_lowercase_is_variable(self):
        assert parse_atom("R(x)") == atom("R", Variable("x"))

    def test_uppercase_is_constant_name(self):
        assert parse_atom("R(Canada)") == atom("R", Constant("Canada"))

    def test_underscore_prefix_is_variable(self):
        assert parse_atom("R(_tmp)") == atom("R", Variable("_tmp"))

    def test_integers_and_floats(self):
        a = parse_atom("R(1900, -3, 2.5)")
        assert a.args == (Constant(1900), Constant(-3), Constant(2.5))

    def test_quoted_strings(self):
        assert parse_atom('R("Canada")') == atom("R", Constant("Canada"))
        assert parse_atom("R('US')") == atom("R", Constant("US"))

    def test_empty_args(self):
        assert parse_atom("Flag()").arity == 0

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(x) extra")

    def test_bad_character_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(x; y)")

    def test_missing_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(x")


class TestParseFact:
    def test_ground_ok(self):
        f = parse_fact("Station(438432, 'Canada')")
        assert f.is_ground()

    def test_variables_rejected(self):
        with pytest.raises(NotGroundError):
            parse_fact("R(x)")


class TestParseRule:
    def test_motivating_example_view(self):
        q = parse_rule(
            'V1(s,y,m,v) <- Temperature(s,y,m,v), '
            'Station(s,lat,lon,"Canada"), After(y,1900)'
        )
        assert q.head.relation == "V1"
        assert [a.relation for a in q.relational_body()] == [
            "Temperature",
            "Station",
        ]
        assert [a.relation for a in q.builtin_body()] == ["After"]

    def test_alternative_arrow(self):
        q = parse_rule("V(x) :- R(x)")
        assert q.body_size() == 1

    def test_unsafe_rejected(self):
        from repro.exceptions import UnsafeQueryError

        with pytest.raises(UnsafeQueryError):
            parse_rule("V(x) <- R(y)")

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("V(x) R(x)")

    def test_roundtrip_str(self):
        q = parse_rule("V(x, y) <- R(x, z), S(z, y)")
        assert parse_rule(str(q)) == q


class TestParseProgram:
    def test_multiple_rules_with_comments(self):
        rules = parse_program(
            """
            % the station directory
            V0(s, c) <- Station(s, c)
            # temperatures
            V1(s, v) <- Temperature(s, v)
            """
        )
        assert [r.head.relation for r in rules] == ["V0", "V1"]

    def test_empty_program(self):
        assert parse_program("\n% nothing\n") == []
