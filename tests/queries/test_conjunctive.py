"""Tests for repro.queries.conjunctive."""

import pytest

from repro.exceptions import UnsafeQueryError
from repro.model import GlobalDatabase, Variable, atom, fact
from repro.queries import (
    ConjunctiveQuery,
    answer_query,
    default_registry,
    identity_view,
)

x, y = Variable("x"), Variable("y")


class TestSafety:
    def test_safe_query_accepted(self):
        ConjunctiveQuery(atom("V", x), [atom("R", x, y)])

    def test_unsafe_head_rejected(self):
        with pytest.raises(UnsafeQueryError):
            ConjunctiveQuery(atom("V", x), [atom("R", y, y)])

    def test_builtin_does_not_bind(self):
        registry = default_registry()
        with pytest.raises(UnsafeQueryError):
            ConjunctiveQuery(atom("V", x), [atom("After", x, 1900)], registry)

    def test_builtin_over_bound_variables_ok(self):
        registry = default_registry()
        q = ConjunctiveQuery(
            atom("V", x), [atom("R", x), atom("After", x, 1900)], registry
        )
        assert len(q.builtin_body()) == 1

    def test_dangling_builtin_variable_rejected(self):
        registry = default_registry()
        with pytest.raises(UnsafeQueryError):
            ConjunctiveQuery(
                atom("V", x), [atom("R", x), atom("After", y, 1900)], registry
            )


class TestStructure:
    def test_relational_vs_builtin_body(self):
        registry = default_registry()
        q = ConjunctiveQuery(
            atom("V", x), [atom("R", x), atom("After", x, 0)], registry
        )
        assert [a.relation for a in q.relational_body()] == ["R"]
        assert [a.relation for a in q.builtin_body()] == ["After"]

    def test_variables_and_constants(self):
        q = ConjunctiveQuery(atom("V", x), [atom("R", x, "c")])
        assert q.variables() == {x}
        assert {c.value for c in q.constants()} == {"c"}

    def test_body_size(self):
        q = ConjunctiveQuery(atom("V", x), [atom("R", x), atom("S", x)])
        assert q.body_size() == 2

    def test_body_schema(self):
        q = ConjunctiveQuery(atom("V", x), [atom("R", x, y)])
        assert q.body_schema().arity("R") == 2


class TestIdentityDetection:
    def test_identity_view_is_identity(self):
        assert identity_view("V", "R", 2).is_identity()

    def test_non_identity_projection(self):
        q = ConjunctiveQuery(atom("V", x), [atom("R", x, y)])
        assert not q.is_identity()

    def test_non_identity_repeated_variable(self):
        q = ConjunctiveQuery(atom("V", x, x), [atom("R", x, x)])
        assert not q.is_identity()

    def test_non_identity_constant(self):
        q = ConjunctiveQuery(atom("V", "a", x), [atom("R", "a", x)])
        assert not q.is_identity()

    def test_non_identity_two_atoms(self):
        q = ConjunctiveQuery(atom("V", x), [atom("R", x), atom("S", x)])
        assert not q.is_identity()


class TestApplication:
    def test_apply_is_callable(self):
        q = identity_view("V", "R", 1)
        db = GlobalDatabase([fact("R", 1), fact("R", 2)])
        assert q(db) == frozenset({fact("V", 1), fact("V", 2)})

    def test_standardized_apart(self):
        q = ConjunctiveQuery(atom("V", x), [atom("R", x, y)])
        renamed = q.standardized_apart([x, y])
        assert renamed.variables().isdisjoint({x, y})
        # structure preserved
        assert renamed.body_size() == 1 and renamed.head.relation == "V"

    def test_substitute(self):
        from repro.model.valuation import Substitution
        from repro.model.terms import Constant

        q = ConjunctiveQuery(atom("V", x), [atom("R", x, y)])
        grounded = q.substitute(Substitution({x: Constant(1)}))
        assert grounded.head == atom("V", 1)


class TestAnswerQuery:
    def test_head_relation_is_ans(self):
        q = answer_query([atom("R", x)], [x])
        assert q.head.relation == "ans"

    def test_boolean_query(self):
        q = answer_query([atom("R", x)])
        db = GlobalDatabase([fact("R", 1)])
        assert q.apply(db) == frozenset({fact("ans")})
        assert q.apply(GlobalDatabase()) == frozenset()


class TestEqualityAndRepr:
    def test_equality(self):
        q1 = ConjunctiveQuery(atom("V", x), [atom("R", x)])
        q2 = ConjunctiveQuery(atom("V", x), [atom("R", x)])
        assert q1 == q2 and hash(q1) == hash(q2)

    def test_str(self):
        q = ConjunctiveQuery(atom("V", x), [atom("R", x)])
        assert str(q) == "V(x) <- R(x)"
