"""Tests for the Grahne–Mendelzon 0/1 baseline and its agreement with the
general machinery at c, s ∈ {0, 1}."""

from fractions import Fraction

import pytest

from repro.exceptions import SourceError
from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.baselines import (
    certain_facts_01,
    is_consistent_01,
    lower_bound_facts,
    possible_facts_01,
    upper_bound_facts,
)
from repro.confidence import covered_fact_confidences, enumeration_confidences
from repro.consistency import check_identity


def col_01(*specs):
    """specs: (values, kind) with kind in {sound, complete, exact}."""
    bounds = {"sound": (0, 1), "complete": (1, 0), "exact": (1, 1)}
    sources = []
    for i, (values, kind) in enumerate(specs, start=1):
        c, s = bounds[kind]
        sources.append(
            SourceDescriptor(
                identity_view(f"V{i}", "R", 1),
                [fact(f"V{i}", v) for v in values],
                c,
                s,
                name=f"S{i}",
            )
        )
    return SourceCollection(sources)


class TestClosedForm:
    def test_lower_is_union_of_sound(self):
        col = col_01((["a"], "sound"), (["b", "c"], "sound"))
        values = {f.args[0].value for f in lower_bound_facts(col)}
        assert values == {"a", "b", "c"}

    def test_upper_is_intersection_of_complete(self):
        col = col_01((["a", "b"], "complete"), (["b", "c"], "complete"))
        values = {f.args[0].value for f in upper_bound_facts(col)}
        assert values == {"b"}

    def test_upper_none_without_complete_sources(self):
        col = col_01((["a"], "sound"))
        assert upper_bound_facts(col) is None

    def test_consistency(self):
        assert is_consistent_01(col_01((["a"], "sound"), (["a", "b"], "complete")))
        assert not is_consistent_01(col_01((["a"], "sound"), (["b"], "complete")))
        assert is_consistent_01(col_01((["a"], "sound")))  # no upper bound

    def test_certain_and_possible(self):
        col = col_01((["a"], "sound"), (["a", "b"], "complete"))
        assert {f.args[0].value for f in certain_facts_01(col)} == {"a"}
        assert {f.args[0].value for f in possible_facts_01(col, ["a", "b", "z"])} == {
            "a",
            "b",
        }

    def test_possible_without_complete_is_fact_space(self):
        col = col_01((["a"], "sound"))
        assert len(possible_facts_01(col, ["a", "b", "c"])) == 3

    def test_inconsistent_has_no_semantics(self):
        col = col_01((["a"], "sound"), (["b"], "complete"))
        with pytest.raises(SourceError):
            certain_facts_01(col)

    def test_fractional_bounds_rejected(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [], "1/2", 1, name="S"
                )
            ]
        )
        with pytest.raises(SourceError):
            is_consistent_01(col)

    def test_non_identity_rejected(self):
        col = SourceCollection(
            [SourceDescriptor(parse_rule("V(x) <- R(x,y)"), [], 1, 1, name="S")]
        )
        with pytest.raises(SourceError):
            is_consistent_01(col)


class TestAgreementWithGeneralMachinery:
    """E9's core claim: our framework restricted to 0/1 bounds reproduces the
    Grahne–Mendelzon analytical answers."""

    @pytest.mark.parametrize(
        "specs",
        [
            ((["a"], "sound"), (["a", "b"], "complete")),
            ((["a", "b"], "exact"),),
            ((["a"], "sound"), (["b"], "sound"), (["a", "b", "c"], "complete")),
            ((["a"], "complete"), (["a"], "sound")),
        ],
    )
    def test_consistency_agrees(self, specs):
        col = col_01(*specs)
        assert is_consistent_01(col) == check_identity(col).consistent

    def test_inconsistency_agrees(self):
        col = col_01((["a"], "sound"), (["b"], "complete"))
        assert not is_consistent_01(col)
        assert not check_identity(col).consistent

    def test_certain_facts_have_confidence_one(self):
        col = col_01((["a"], "sound"), (["a", "b"], "complete"))
        domain = ["a", "b", "z"]
        confidences = enumeration_confidences(col, domain)
        for f in certain_facts_01(col):
            assert confidences[f] == 1
        # facts outside the possible set have confidence 0
        possible = possible_facts_01(col, domain)
        for f, confidence in confidences.items():
            if f not in possible:
                assert confidence == 0

    def test_exact_source_pins_everything(self):
        col = col_01((["a", "b"], "exact"),)
        confidences = covered_fact_confidences(col, ["a", "b", "z"])
        assert confidences[fact("R", "a")] == 1
        assert confidences[fact("R", "b")] == 1
