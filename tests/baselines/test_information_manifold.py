"""Tests for the Information-Manifold certain-answer baseline."""

import pytest

from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.baselines import canonical_database, certain_answer_im
from repro.confidence import certain_answer

from tests.conftest import example51_domain, make_example51_collection


class TestCanonicalDatabase:
    def test_identity_sound_source(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 0, 1, name="S1"
                )
            ]
        )
        canonical = canonical_database(col)
        assert fact("R", "a") in canonical

    def test_partially_sound_source_ignored(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a")],
                    0,
                    "1/2",
                    name="S1",
                )
            ]
        )
        assert len(canonical_database(col)) == 0

    def test_existentials_become_nulls(self):
        view = parse_rule("V(x) <- R(x, y)")
        col = SourceCollection(
            [SourceDescriptor(view, [fact("V", "a"), fact("V", "b")], 0, 1, name="S")]
        )
        canonical = canonical_database(col)
        assert len(canonical) == 2
        seconds = {f.args[1].value for f in canonical}
        assert len(seconds) == 2  # distinct nulls per fact
        assert all(str(s).startswith("_null") for s in seconds)

    def test_ground_builtin_checked(self):
        view = parse_rule("V(y) <- T(y), After(y, 1900)")
        col = SourceCollection(
            [
                SourceDescriptor(
                    view, [fact("V", 1950), fact("V", 1800)], 0, 1, name="S"
                )
            ]
        )
        canonical = canonical_database(col)
        # the 1800 fact contradicts its own view's builtin: skipped
        assert fact("T", 1950) in canonical
        assert fact("T", 1800) not in canonical


class TestCertainAnswerIM:
    def test_identity_certain_facts(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 0, 1, name="S1"
                )
            ]
        )
        q = parse_rule("ans(x) <- R(x)")
        assert certain_answer_im(q, col) == frozenset({fact("ans", "a")})

    def test_join_through_nulls(self):
        """A join answer is certain only when it avoids nulls."""
        v1 = parse_rule("V1(x, y) <- R(x, y)")
        col = SourceCollection(
            [SourceDescriptor(v1, [fact("V1", "a", "b")], 0, 1, name="S1")]
        )
        q_certain = parse_rule("ans(x) <- R(x, y)")
        q_null = parse_rule("ans(x, y) <- R(x, z), R(z, y)")
        assert certain_answer_im(q_certain, col) == frozenset({fact("ans", "a")})
        assert certain_answer_im(q_null, col) == frozenset()

    def test_projection_view_null_not_leaked(self):
        view = parse_rule("V(x) <- R(x, y)")
        col = SourceCollection(
            [SourceDescriptor(view, [fact("V", "a")], 0, 1, name="S")]
        )
        q = parse_rule("ans(x, y) <- R(x, y)")
        # the witness's second column is a null: no certain binary answer
        assert certain_answer_im(q, col) == frozenset()
        q_projected = parse_rule("ans(x) <- R(x, y)")
        assert certain_answer_im(q_projected, col) == frozenset({fact("ans", "a")})


class TestSoundLowerBound:
    """IM answers must always be contained in the true certain answer."""

    def test_subset_of_possible_worlds_certain(self, example51):
        # make S1 fully sound so IM has something to say
        upgraded = SourceCollection(
            [
                example51[0].with_bounds(soundness_bound=1),
                example51[1],
            ]
        )
        q = parse_rule("ans(x) <- R(x)")
        im = certain_answer_im(q, upgraded)
        exact = certain_answer(q, upgraded, example51_domain(1))
        assert im <= exact
        assert fact("ans", "a") in im and fact("ans", "b") in im

    def test_gap_when_completeness_forces_facts(self):
        """Completeness can force certain facts IM cannot see."""
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a")],
                    1,  # complete
                    0,  # not sound at all
                    name="S1",
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1),
                    [fact("V2", "a"), fact("V2", "b")],
                    0,
                    "1/2",
                    name="S2",
                ),
            ]
        )
        q = parse_rule("ans(x) <- R(x)")
        im = certain_answer_im(q, col)
        exact = certain_answer(q, col, ["a", "b"])
        # S2's soundness forces one of {a,b} in D; S1's completeness says
        # D ⊆ {a}; hence R(a) is certain — but no source is fully sound.
        assert im == frozenset()
        assert fact("ans", "a") in exact
