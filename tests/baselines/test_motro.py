"""Tests for the Motro-style answer classification."""

from repro.model import GlobalDatabase, fact
from repro.queries import parse_rule
from repro.algebra import RelationScan
from repro.baselines import (
    answer_is_complete,
    answer_is_sound,
    classify_answer,
    real_world_answer,
)
from repro.confidence import answer_query

from tests.conftest import example51_domain, make_example51_collection


REAL_WORLD = GlobalDatabase([fact("R", "a"), fact("R", "b")])


class TestClassification:
    def test_real_world_answer_cq(self):
        q = parse_rule("ans(x) <- R(x)")
        assert real_world_answer(q, REAL_WORLD) == frozenset(
            {fact("ans", "a"), fact("ans", "b")}
        )

    def test_real_world_answer_algebra(self):
        result = real_world_answer(RelationScan("R", 1), REAL_WORLD)
        assert len(result) == 2

    def test_sound_answer(self):
        q = parse_rule("ans(x) <- R(x)")
        assert answer_is_sound([fact("ans", "a")], q, REAL_WORLD)
        assert not answer_is_sound([fact("ans", "z")], q, REAL_WORLD)

    def test_complete_answer(self):
        q = parse_rule("ans(x) <- R(x)")
        full = [fact("ans", "a"), fact("ans", "b"), fact("ans", "z")]
        assert answer_is_complete(full, q, REAL_WORLD)
        assert not answer_is_complete([fact("ans", "a")], q, REAL_WORLD)

    def test_classify_exact(self):
        q = parse_rule("ans(x) <- R(x)")
        exact = [fact("ans", "a"), fact("ans", "b")]
        assert classify_answer(exact, q, REAL_WORLD) == (True, True)


class TestBridgeToPossibleWorlds:
    """Certain answers are Motro-sound and possible answers Motro-complete
    whenever the real world is itself a possible world."""

    def test_certain_sound_possible_complete(self):
        collection = make_example51_collection()
        domain = example51_domain(1)
        real_world = GlobalDatabase([fact("R", "a"), fact("R", "b")])
        assert collection.admits(real_world)
        q = RelationScan("R", 1)
        qa = answer_query(q, collection, domain)
        assert answer_is_sound(qa.certain, q, real_world)
        assert answer_is_complete(qa.possible, q, real_world)
