"""Tests for repro.model.atoms."""

import pytest

from repro.exceptions import ModelError, NotGroundError
from repro.model.atoms import Atom, atom, fact
from repro.model.terms import Constant, Variable
from repro.model.valuation import Substitution


class TestAtom:
    def test_construction_coerces_values(self):
        a = Atom("R", (1, "x-const"))
        assert a.args == (Constant(1), Constant("x-const"))

    def test_variables_stay_variables(self):
        a = Atom("R", (Variable("x"), 1))
        assert a.variables() == {Variable("x")}
        assert a.constants() == {Constant(1)}

    def test_empty_relation_name_rejected(self):
        with pytest.raises(ModelError):
            Atom("", (1,))

    def test_arity(self):
        assert Atom("R", (1, 2, 3)).arity == 3
        assert Atom("Nullary", ()).arity == 0

    def test_is_ground(self):
        assert Atom("R", (1, 2)).is_ground()
        assert not Atom("R", (1, Variable("x"))).is_ground()
        assert Atom("Nullary", ()).is_ground()

    def test_equality_and_hash(self):
        assert Atom("R", (1,)) == Atom("R", (1,))
        assert Atom("R", (1,)) != Atom("S", (1,))
        assert Atom("R", (1,)) != Atom("R", (2,))
        assert len({Atom("R", (1,)), Atom("R", (1,))}) == 1

    def test_substitute_with_dict(self):
        x = Variable("x")
        a = Atom("R", (x, 1))
        assert a.substitute({x: Constant(9)}) == Atom("R", (9, 1))

    def test_substitute_with_substitution(self):
        x = Variable("x")
        a = Atom("R", (x, x))
        result = a.substitute(Substitution({x: Constant(2)}))
        assert result == Atom("R", (2, 2))

    def test_substitute_leaves_unbound(self):
        x, y = Variable("x"), Variable("y")
        a = Atom("R", (x, y))
        result = a.substitute({x: Constant(1)})
        assert result == Atom("R", (Constant(1), y))

    def test_rename_relation(self):
        assert Atom("V1", (1,)).rename_relation("R") == Atom("R", (1,))

    def test_str_and_ordering(self):
        assert str(Atom("R", (1, Variable("x")))) == "R(1, x)"
        assert sorted([Atom("S", (1,)), Atom("R", (2,))])[0].relation == "R"

    def test_iteration(self):
        assert list(Atom("R", (1, 2))) == [Constant(1), Constant(2)]


class TestFactConstructor:
    def test_fact_builds_ground_atom(self):
        f = fact("Station", 438432, "Canada")
        assert f.is_ground() and f.relation == "Station"

    def test_fact_rejects_variables(self):
        with pytest.raises(NotGroundError):
            fact("R", Variable("x"))

    def test_atom_shorthand(self):
        a = atom("R", Variable("x"), 1)
        assert a.arity == 2 and not a.is_ground()
