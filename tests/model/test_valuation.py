"""Tests for repro.model.valuation: substitutions, compatibility, matching."""

import pytest

from repro.exceptions import ModelError
from repro.model.atoms import Atom, atom, fact
from repro.model.terms import Constant, Variable
from repro.model.valuation import (
    Substitution,
    Valuation,
    compatible,
    match_atom,
    unify_atoms,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b = Constant("a"), Constant("b")


class TestSubstitution:
    def test_keys_must_be_variables(self):
        with pytest.raises(ModelError):
            Substitution({Constant(1): Constant(2)})

    def test_get_identity_on_constants(self):
        theta = Substitution({x: a})
        assert theta.get(b) == b

    def test_get_unbound_variable_default(self):
        theta = Substitution({x: a})
        assert theta.get(y) is None
        assert theta.get(y, y) == y

    def test_apply(self):
        theta = Substitution({x: a, y: z})
        assert theta.apply(atom("R", x, y)) == atom("R", a, z)

    def test_compose_chains_images(self):
        first = Substitution({x: y})
        second = Substitution({y: a})
        composed = first.compose(second)
        assert composed.get(x) == a
        assert composed.get(y) == a  # second's own binding kept

    def test_extended(self):
        theta = Substitution({x: a}).extended(y, b)
        assert theta[y] == b and theta[x] == a

    def test_is_valuation(self):
        assert Substitution({x: a}).is_valuation()
        assert not Substitution({x: y}).is_valuation()

    def test_hashable(self):
        assert len({Substitution({x: a}), Substitution({x: a})}) == 1


class TestValuation:
    def test_rejects_variable_image(self):
        with pytest.raises(ModelError):
            Valuation({x: y})

    def test_extended_rejects_variable(self):
        with pytest.raises(ModelError):
            Valuation({x: a}).extended(y, z)


class TestCompatibility:
    """The Section 4 compatibility relation σ ~ θ."""

    def test_compatible_when_images_agree(self):
        sigma = Substitution({x: a, y: a})
        theta = Substitution({x: y})
        assert compatible(sigma, theta)

    def test_incompatible_when_images_differ(self):
        sigma = Substitution({x: a, y: b})
        theta = Substitution({x: y})
        assert not compatible(sigma, theta)

    def test_variable_to_constant_binding(self):
        theta = Substitution({x: b})
        assert compatible(Substitution({x: b}), theta)
        assert not compatible(Substitution({x: a}), theta)

    def test_unbound_variables_act_as_identity(self):
        # σ leaves both x and y alone: σ(x) = x ≠ y = σ(y).
        theta = Substitution({x: y})
        assert not compatible(Substitution(), theta)

    def test_empty_theta_compatible_with_everything(self):
        assert compatible(Substitution({x: a}), Substitution())


class TestMatchAtom:
    def test_simple_match(self):
        sigma = match_atom(atom("R", x, y), fact("R", 1, 2))
        assert sigma[x] == Constant(1) and sigma[y] == Constant(2)

    def test_repeated_variable_must_agree(self):
        assert match_atom(atom("R", x, x), fact("R", 1, 2)) is None
        assert match_atom(atom("R", x, x), fact("R", 1, 1)) is not None

    def test_constant_positions_checked(self):
        assert match_atom(atom("R", a, x), fact("R", "a", 2)) is not None
        assert match_atom(atom("R", a, x), fact("R", "b", 2)) is None

    def test_relation_and_arity_mismatch(self):
        assert match_atom(atom("R", x), fact("S", 1)) is None
        assert match_atom(atom("R", x), fact("R", 1, 2)) is None

    def test_seed_respected(self):
        seed = Substitution({x: Constant(1)})
        assert match_atom(atom("R", x), fact("R", 2), seed) is None
        sigma = match_atom(atom("R", x), fact("R", 1), seed)
        assert sigma[x] == Constant(1)


class TestUnifyAtoms:
    def test_unifies_variables_both_sides(self):
        mgu = unify_atoms(atom("R", x, a), atom("R", b, y))
        assert mgu.get(x) == b and mgu.get(y) == a

    def test_constant_clash(self):
        assert unify_atoms(atom("R", a), atom("R", b)) is None

    def test_variable_chain(self):
        mgu = unify_atoms(atom("R", x, x), atom("R", y, a))
        assert mgu.get(x) == a and mgu.get(y) == a

    def test_relation_mismatch(self):
        assert unify_atoms(atom("R", x), atom("S", x)) is None

    def test_identical_atoms(self):
        mgu = unify_atoms(atom("R", x), atom("R", x))
        assert mgu is not None and len(mgu) == 0
