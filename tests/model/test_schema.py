"""Tests for repro.model.schema."""

import pytest

from repro.exceptions import ArityError, ModelError
from repro.model.atoms import Atom, fact
from repro.model.schema import GlobalSchema, RelationSchema, schema_of_atoms


class TestRelationSchema:
    def test_default_attribute_names(self):
        rel = RelationSchema("R", 3)
        assert rel.attributes == ("a0", "a1", "a2")

    def test_explicit_attributes(self):
        rel = RelationSchema("Station", 2, ["id", "country"])
        assert rel.attributes == ("id", "country")

    def test_attribute_count_mismatch(self):
        with pytest.raises(ModelError):
            RelationSchema("R", 2, ["only_one"])

    def test_negative_arity_rejected(self):
        with pytest.raises(ModelError):
            RelationSchema("R", -1)


class TestGlobalSchema:
    def test_add_and_lookup(self):
        schema = GlobalSchema({"R": 2})
        assert "R" in schema and schema.arity("R") == 2

    def test_unknown_relation(self):
        with pytest.raises(ModelError):
            GlobalSchema().arity("Missing")

    def test_redeclare_same_arity_ok(self):
        schema = GlobalSchema({"R": 2})
        schema.add("R", 2)
        assert len(schema) == 1

    def test_redeclare_different_arity_rejected(self):
        schema = GlobalSchema({"R": 2})
        with pytest.raises(ArityError):
            schema.add("R", 3)

    def test_validate_atom(self):
        schema = GlobalSchema({"R": 2})
        schema.validate_atom(Atom("R", (1, 2)))
        with pytest.raises(ArityError):
            schema.validate_atom(Atom("R", (1,)))

    def test_max_arity(self):
        assert GlobalSchema({"R": 2, "S": 4}).max_arity() == 4
        assert GlobalSchema().max_arity() == 0

    def test_merged(self):
        merged = GlobalSchema({"R": 1}).merged(GlobalSchema({"S": 2}))
        assert "R" in merged and "S" in merged

    def test_merged_conflict(self):
        with pytest.raises(ArityError):
            GlobalSchema({"R": 1}).merged(GlobalSchema({"R": 2}))

    def test_iteration_sorted(self):
        schema = GlobalSchema({"Z": 1, "A": 1})
        assert list(schema) == ["A", "Z"]


class TestFactSpace:
    def test_fact_space_size(self):
        schema = GlobalSchema({"R": 2, "S": 1})
        assert schema.fact_space_size(3) == 9 + 3

    def test_fact_space_enumeration(self):
        schema = GlobalSchema({"R": 1, "S": 1})
        facts = list(schema.fact_space(["a", "b"]))
        assert len(facts) == 4
        assert Atom("R", ("a",)) in facts and Atom("S", ("b",)) in facts

    def test_fact_space_deterministic(self):
        schema = GlobalSchema({"R": 2})
        assert list(schema.fact_space([1, 2])) == list(schema.fact_space([1, 2]))

    def test_nullary_relation_has_one_fact(self):
        schema = GlobalSchema({"Flag": 0})
        assert list(schema.fact_space(["a"])) == [Atom("Flag", ())]


class TestSchemaOfAtoms:
    def test_inference(self):
        schema = schema_of_atoms([fact("R", 1, 2), fact("S", 1)])
        assert schema.arity("R") == 2 and schema.arity("S") == 1

    def test_conflicting_arities_rejected(self):
        with pytest.raises(ArityError):
            schema_of_atoms([fact("R", 1), fact("R", 1, 2)])
