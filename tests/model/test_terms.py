"""Tests for repro.model.terms."""

import pytest

from repro.exceptions import ModelError
from repro.model.terms import (
    Constant,
    FreshConstantFactory,
    FreshVariableFactory,
    Variable,
    as_term,
    constants_in,
    is_constant,
    is_variable,
    term_sort_key,
    variables_in,
)


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1900) == Constant(1900)
        assert Constant("a") != Constant("b")

    def test_distinct_types_not_equal(self):
        assert Constant(1) != Constant("1")

    def test_hashable_and_usable_in_sets(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_not_equal_to_variable(self):
        assert Constant("x") != Variable("x")

    def test_unhashable_value_rejected(self):
        with pytest.raises(ModelError):
            Constant([1, 2])

    def test_ordering_is_total_across_types(self):
        values = [Constant(2), Constant("b"), Constant(1), Constant("a")]
        ordered = sorted(values)
        assert ordered.index(Constant(1)) < ordered.index(Constant(2))
        assert ordered.index(Constant("a")) < ordered.index(Constant("b"))

    def test_str_quotes_strings(self):
        assert str(Constant("ca")) == "'ca'"
        assert str(Constant(5)) == "5"


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Variable("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ModelError):
            Variable(3)

    def test_sorting_by_name(self):
        assert sorted([Variable("z"), Variable("a")]) == [Variable("a"), Variable("z")]


class TestHelpers:
    def test_as_term_passthrough(self):
        v = Variable("x")
        assert as_term(v) is v
        c = Constant(1)
        assert as_term(c) is c

    def test_as_term_wraps_values(self):
        assert as_term(42) == Constant(42)
        assert as_term("Canada") == Constant("Canada")

    def test_predicates(self):
        assert is_constant(Constant(1)) and not is_constant(Variable("x"))
        assert is_variable(Variable("x")) and not is_variable(Constant(1))

    def test_constants_and_variables_in(self):
        terms = [Constant(1), Variable("x"), Constant(2), Variable("x")]
        assert constants_in(terms) == {Constant(1), Constant(2)}
        assert variables_in(terms) == {Variable("x")}

    def test_term_sort_key_constants_before_variables(self):
        assert term_sort_key(Constant("z")) < term_sort_key(Variable("a"))


class TestFreshFactories:
    def test_fresh_variables_avoid_taken(self):
        factory = FreshVariableFactory(taken=[Variable("_v1")])
        fresh = factory.fresh()
        assert fresh != Variable("_v1")

    def test_fresh_variables_distinct(self):
        factory = FreshVariableFactory()
        assert len({factory.fresh() for _ in range(50)}) == 50

    def test_reserve_extends_taken(self):
        factory = FreshVariableFactory()
        factory.reserve([Variable("_v1"), Variable("_v2")])
        names = {factory.fresh().name for _ in range(5)}
        assert "_v1" not in names and "_v2" not in names

    def test_fresh_constants_avoid_taken_values(self):
        factory = FreshConstantFactory(taken=[Constant("_c1")])
        assert factory.fresh() != Constant("_c1")

    def test_fresh_constants_distinct(self):
        factory = FreshConstantFactory()
        assert len({factory.fresh() for _ in range(50)}) == 50
