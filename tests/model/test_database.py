"""Tests for repro.model.database."""

import pytest

from repro.exceptions import NotGroundError
from repro.model.atoms import Atom, atom, fact
from repro.model.database import EMPTY_DATABASE, GlobalDatabase
from repro.model.terms import Constant, Variable


class TestConstruction:
    def test_deduplicates(self):
        db = GlobalDatabase([fact("R", 1), fact("R", 1)])
        assert len(db) == 1

    def test_rejects_non_ground(self):
        with pytest.raises(NotGroundError):
            GlobalDatabase([atom("R", Variable("x"))])

    def test_empty(self):
        assert len(EMPTY_DATABASE) == 0
        assert list(EMPTY_DATABASE.relations()) == []


class TestSetSemantics:
    def test_equality_independent_of_order(self):
        a = GlobalDatabase([fact("R", 1), fact("R", 2)])
        b = GlobalDatabase([fact("R", 2), fact("R", 1)])
        assert a == b and hash(a) == hash(b)

    def test_containment_operators(self):
        small = GlobalDatabase([fact("R", 1)])
        big = GlobalDatabase([fact("R", 1), fact("R", 2)])
        assert small <= big and small < big
        assert not big <= small

    def test_membership(self):
        db = GlobalDatabase([fact("R", 1)])
        assert fact("R", 1) in db and fact("R", 2) not in db

    def test_usable_as_set_member(self):
        worlds = {GlobalDatabase([fact("R", 1)]), GlobalDatabase([fact("R", 1)])}
        assert len(worlds) == 1


class TestAccess:
    def test_extension(self, small_db):
        assert len(small_db.extension("R")) == 3
        assert len(small_db.extension("S")) == 2
        assert small_db.extension("Missing") == frozenset()

    def test_relations_sorted(self, small_db):
        assert small_db.relations() == ("R", "S")

    def test_tuples(self, small_db):
        assert (1, 2) in small_db.tuples("R")
        assert (2, "x") in small_db.tuples("S")

    def test_constants(self):
        db = GlobalDatabase([fact("R", 1, "a")])
        assert db.constants() == {Constant(1), Constant("a")}

    def test_schema(self, small_db):
        schema = small_db.schema()
        assert schema.arity("R") == 2 and schema.arity("S") == 2


class TestCombinators:
    def test_union_intersection_difference(self):
        a = GlobalDatabase([fact("R", 1), fact("R", 2)])
        b = GlobalDatabase([fact("R", 2), fact("R", 3)])
        assert len(a.union(b)) == 3
        assert a.intersection(b) == GlobalDatabase([fact("R", 2)])
        assert a.difference(b) == GlobalDatabase([fact("R", 1)])

    def test_with_without_facts(self):
        db = GlobalDatabase([fact("R", 1)])
        assert len(db.with_facts([fact("R", 2)])) == 2
        assert len(db.without_facts([fact("R", 1)])) == 0
        # originals untouched (immutability)
        assert len(db) == 1

    def test_restrict_to(self, small_db):
        only_r = small_db.restrict_to(["R"])
        assert only_r.relations() == ("R",) and len(only_r) == 3
