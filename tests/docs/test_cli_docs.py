"""docs/cli.md must not drift: every documented command actually runs.

Extracts the ``python -m repro ...`` lines from the fenced code blocks of
``docs/cli.md`` and executes each one from the repository root. A command
that exits non-zero (or a doc that stops documenting any commands) fails.
"""

import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
CLI_DOC = REPO_ROOT / "docs" / "cli.md"


def documented_commands():
    text = CLI_DOC.read_text(encoding="utf-8")
    blocks = re.findall(r"```\n(.*?)```", text, flags=re.DOTALL)
    commands = []
    for block in blocks:
        for line in block.splitlines():
            if line.strip().startswith("python -m repro "):
                commands.append(line.strip())
    return commands

COMMANDS = documented_commands()


def test_cli_doc_documents_commands():
    assert len(COMMANDS) >= 8, COMMANDS
    subcommands = {c.split()[3] for c in COMMANDS}
    assert {
        "check", "confidence", "worlds", "audit",
        "answer", "consensus", "rewrite",
    } <= subcommands


@pytest.mark.parametrize("command", COMMANDS, ids=lambda c: " ".join(c.split()[3:5]))
def test_documented_command_runs(command):
    argv = shlex.split(command)
    argv[0] = sys.executable  # "python" may not be on PATH
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    completed = subprocess.run(
        argv,
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, (
        f"documented command failed ({completed.returncode}):\n"
        f"  {command}\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"no output from: {command}"
