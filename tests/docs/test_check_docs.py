"""The docs link checker: clean on this repo, and actually catches rot."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_repo_docs_have_no_dead_links(capsys):
    assert check_docs.main(["check_docs.py", str(REPO_ROOT)]) == 0


def test_dead_link_and_anchor_detected(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "real.md").write_text("# Real heading\n")
    (tmp_path / "README.md").write_text(
        "[gone](docs/missing.md) "
        "[bad anchor](docs/real.md#nope) "
        "[fine](docs/real.md#real-heading)\n"
    )
    problems = check_docs.check_file(tmp_path / "README.md")
    assert len(problems) == 2
    assert any("missing.md" in p for p in problems)
    assert any("#nope" in p for p in problems)


def test_external_urls_and_code_fences_ignored(tmp_path):
    (tmp_path / "README.md").write_text(
        "[ext](https://example.com/x.md)\n"
        "```\n[not a link](nowhere.md)\n```\n"
    )
    assert check_docs.check_file(tmp_path / "README.md") == []
