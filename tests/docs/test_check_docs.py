"""The docs reference checker: clean on this repo, and actually catches rot."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_repo_docs_have_no_dead_references(capsys):
    assert check_docs.main(["check_docs.py", str(REPO_ROOT)]) == 0


def test_dead_link_and_anchor_detected(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "real.md").write_text("# Real heading\n")
    (tmp_path / "README.md").write_text(
        "[gone](docs/missing.md) "
        "[bad anchor](docs/real.md#nope) "
        "[fine](docs/real.md#real-heading)\n"
    )
    problems = check_docs.check_links(tmp_path / "README.md")
    assert len(problems) == 2
    assert any("missing.md" in p for p in problems)
    assert any("#nope" in p for p in problems)


def test_external_urls_and_code_fences_ignored(tmp_path):
    (tmp_path / "README.md").write_text(
        "[ext](https://example.com/x.md)\n"
        "```\n[not a link](nowhere.md)\n```\n"
    )
    assert check_docs.check_links(tmp_path / "README.md") == []


def test_module_paths_resolve_modules_and_attributes():
    assert check_docs.resolvable("repro.plan")
    assert check_docs.resolvable("repro.plan.optimizer")
    assert check_docs.resolvable("repro.plan.evaluate")  # module attribute
    assert check_docs.resolvable("repro.queries.evaluation.evaluate_naive")
    assert not check_docs.resolvable("repro.no_such_module")
    assert not check_docs.resolvable("repro.plan.no_such_function")


def test_stale_module_path_reported(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see `repro.plan.optimizer` and `repro.gone.missing`\n")
    problems = check_docs.check_module_paths(doc)
    assert len(problems) == 1
    assert "repro.gone.missing" in problems[0]


def test_cli_flags_checked_against_real_parsers(tmp_path):
    flags = check_docs.known_cli_flags(REPO_ROOT)
    # Flags from the repro CLI, a benchmark script, and the allowlist.
    assert {"--domain", "--explain-analyze", "--quick", "--benchmark-only"} <= flags
    doc = tmp_path / "doc.md"
    doc.write_text("use `--explain-analyze`, never `--frobnicate`\n")
    problems = check_docs.check_cli_flags(doc, flags)
    assert len(problems) == 1
    assert "--frobnicate" in problems[0]
