"""Property tests for distributions, joint counting, and linearity."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import fact
from repro.confidence import BlockCounter, IdentityInstance

from tests.property.strategies import VALUES, identity_collections


@given(identity_collections())
@settings(max_examples=40, deadline=None)
def test_size_distribution_sums_to_count(collection):
    counter = BlockCounter(IdentityInstance(collection, VALUES))
    distribution = counter.world_size_distribution()
    assert sum(distribution.values()) == counter.count_worlds()
    assert all(size >= 0 and count > 0 for size, count in distribution.items())


@given(identity_collections())
@settings(max_examples=30, deadline=None)
def test_linearity_of_expectation(collection):
    counter = BlockCounter(IdentityInstance(collection, VALUES))
    if counter.count_worlds() == 0:
        return
    total_confidence = sum(
        (counter.confidence(fact("R", v)) for v in VALUES), Fraction(0)
    )
    assert counter.expected_world_size() == total_confidence


@given(identity_collections(), st.sampled_from(VALUES), st.sampled_from(VALUES))
@settings(max_examples=40, deadline=None)
def test_joint_bounds(collection, left_value, right_value):
    """Fréchet bounds: max(0, P(a)+P(b)−1) ≤ P(a,b) ≤ min(P(a), P(b))."""
    counter = BlockCounter(IdentityInstance(collection, VALUES))
    if counter.count_worlds() == 0:
        return
    left, right = fact("R", left_value), fact("R", right_value)
    p_left = counter.confidence(left)
    p_right = counter.confidence(right)
    joint = counter.joint_confidence([left, right])
    assert joint <= min(p_left, p_right)
    assert joint >= max(Fraction(0), p_left + p_right - 1)


@given(identity_collections(), st.sampled_from(VALUES), st.sampled_from(VALUES))
@settings(max_examples=30, deadline=None)
def test_inclusion_exclusion_pairwise(collection, left_value, right_value):
    """P(a ∨ b) = P(a) + P(b) − P(a, b), via world counts."""
    counter = BlockCounter(IdentityInstance(collection, VALUES))
    total = counter.count_worlds()
    if total == 0 or left_value == right_value:
        return
    left, right = fact("R", left_value), fact("R", right_value)
    with_left = counter.count_worlds_containing(left)
    with_right = counter.count_worlds_containing(right)
    with_both = counter.count_worlds_containing_all([left, right])
    neither = counter.count_worlds_excluding(left)
    # worlds with a or b = |a| + |b| - |ab|; complement check against total
    with_either = with_left + with_right - with_both
    assert 0 <= with_either <= total
    assert with_left <= total and neither == total - with_left
