"""Property tests: serialization round-trips exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import (
    dumps_collection,
    dumps_database,
    loads_collection,
    loads_database,
)
from repro.model import GlobalDatabase, fact

from tests.property.strategies import identity_collections


@given(identity_collections())
@settings(max_examples=40, deadline=None)
def test_collection_roundtrip(collection):
    text = dumps_collection(collection)
    assert loads_collection(text).sources == collection.sources


safe_values = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F
        ),
        min_size=1,
        max_size=8,
    ),
)


@given(
    st.sets(
        st.builds(
            lambda a, b: fact("R", a, b), safe_values, safe_values
        ),
        max_size=10,
    )
)
@settings(max_examples=60, deadline=None)
def test_database_roundtrip(facts):
    db = GlobalDatabase(facts)
    assert loads_database(dumps_database(db)) == db
