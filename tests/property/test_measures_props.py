"""Property tests for the completeness/soundness measures (Defs 2.1/2.2)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import fact
from repro.sources.measures import (
    completeness_of_extension,
    is_complete,
    is_sound,
    soundness_of_extension,
)

facts_sets = st.sets(
    st.integers(min_value=0, max_value=8).map(lambda i: fact("V", i)),
    max_size=8,
)


@given(facts_sets, facts_sets)
@settings(max_examples=60, deadline=None)
def test_measures_in_unit_interval(extension, intended):
    c = completeness_of_extension(extension, intended)
    s = soundness_of_extension(extension, intended)
    assert 0 <= c <= 1 and 0 <= s <= 1
    assert isinstance(c, Fraction) and isinstance(s, Fraction)


@given(facts_sets, facts_sets)
@settings(max_examples=60, deadline=None)
def test_soundness_one_iff_subset(extension, intended):
    s = soundness_of_extension(extension, intended)
    assert (s == 1) == (frozenset(extension) <= frozenset(intended))


@given(facts_sets, facts_sets)
@settings(max_examples=60, deadline=None)
def test_completeness_one_iff_superset(extension, intended):
    c = completeness_of_extension(extension, intended)
    assert (c == 1) == (frozenset(extension) >= frozenset(intended))


@given(facts_sets, facts_sets)
@settings(max_examples=60, deadline=None)
def test_completeness_numerator_symmetry(extension, intended):
    """c·|intended| == s·|extension| == |extension ∩ intended| (both nonempty)."""
    if extension and intended:
        c = completeness_of_extension(extension, intended)
        s = soundness_of_extension(extension, intended)
        overlap = len(frozenset(extension) & frozenset(intended))
        assert c * len(frozenset(intended)) == overlap
        assert s * len(frozenset(extension)) == overlap


@given(facts_sets, facts_sets, facts_sets)
@settings(max_examples=60, deadline=None)
def test_adding_intended_facts_monotone(extension, intended, extra):
    """Growing the extension with *intended* facts never lowers either measure."""
    boosted = frozenset(extension) | (frozenset(extra) & frozenset(intended))
    assert completeness_of_extension(boosted, intended) >= completeness_of_extension(
        extension, intended
    )
    if frozenset(extension) <= frozenset(intended):
        # a sound extension stays sound when adding intended facts
        assert soundness_of_extension(boosted, intended) == 1
