"""Property test: the exact calculus equals world enumeration on random
identity collections and operator shapes."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Constant
from repro.algebra import (
    Col,
    Comparison,
    Product,
    Projection,
    RelationScan,
    Selection,
    UnionNode,
)
from repro.confidence import ExactCalculus, IdentityInstance, answer_query

from tests.property.strategies import VALUES, identity_collections

SCAN = RelationScan("R", 1)

QUERY_SHAPES = [
    SCAN,
    Selection(Comparison(Col(0), "!=", "zz"), SCAN),
    Projection([0], SCAN),
    Projection([Constant("t")], SCAN),
    Product(SCAN, SCAN),
    UnionNode(SCAN, Projection([0], SCAN)),
]


@given(
    identity_collections(max_sources=2, values=VALUES[:4]),
    st.sampled_from(QUERY_SHAPES),
)
@settings(max_examples=40, deadline=None)
def test_exact_calculus_matches_enumeration(collection, query):
    domain = VALUES[:4]
    calculus = ExactCalculus(IdentityInstance(collection, domain))
    if calculus.counter.count_worlds() == 0:
        return
    enumerated = answer_query(query, collection, domain).confidences
    for row, confidence in calculus.confidences(query).items():
        assert enumerated.get(row, Fraction(0)) == confidence, row


@given(identity_collections(max_sources=2, values=VALUES[:4]))
@settings(max_examples=30, deadline=None)
def test_exact_at_least_def51_on_projection(collection):
    """For merging projections, the exact value is ≥ the ⊕ value is never
    guaranteed in general — but both must be proper probabilities, and the
    exact value must match enumeration (covered above). Here: bounds only.
    """
    domain = VALUES[:4]
    calculus = ExactCalculus(IdentityInstance(collection, domain))
    if calculus.counter.count_worlds() == 0:
        return
    query = Projection([Constant("t")], SCAN)
    for confidence in calculus.confidences(query).values():
        assert 0 <= confidence <= 1
