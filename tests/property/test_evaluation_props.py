"""Property tests for CQ evaluation and the algebra translation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries import evaluate, evaluate_naive, parse_rule
from repro.algebra import cq_to_algebra, rows_to_facts

from tests.property.strategies import binary_databases

QUERIES = [
    "V(x) <- E(x, y)",
    "V(y) <- E(x, y)",
    "V(x, y) <- E(x, y)",
    "V(x, z) <- E(x, y), E(y, z)",
    "V(x) <- E(x, x)",
    "V(x) <- E(x, y), E(y, x)",
    "V(x, y) <- E(x, y), Lt(x, y)",
    "V(y) <- E(1, y)",
    "V(x, w) <- E(x, y), E(y, z), E(z, w)",
]


@given(binary_databases(), st.sampled_from(QUERIES))
@settings(max_examples=80, deadline=None)
def test_backtracking_matches_naive(db, rule):
    q = parse_rule(rule)
    assert evaluate(q, db) == evaluate_naive(q, db)


@given(binary_databases(), st.sampled_from(QUERIES))
@settings(max_examples=80, deadline=None)
def test_algebra_translation_matches_cq(db, rule):
    q = parse_rule(rule)
    translated = rows_to_facts(cq_to_algebra(q).evaluate(db), "V")
    assert translated == evaluate(q, db)


@given(binary_databases(), binary_databases(), st.sampled_from(QUERIES))
@settings(max_examples=60, deadline=None)
def test_monotonicity(db1, db2, rule):
    """Conjunctive queries are monotone: D ⊆ D' ⇒ Q(D) ⊆ Q(D')."""
    q = parse_rule(rule)
    union = db1.union(db2)
    assert evaluate(q, db1) <= evaluate(q, union)
    assert evaluate(q, db2) <= evaluate(q, union)


@given(binary_databases(), st.sampled_from(QUERIES))
@settings(max_examples=40, deadline=None)
def test_every_answer_has_a_witness(db, rule):
    from repro.queries import supporting_valuation

    q = parse_rule(rule)
    for answer in evaluate(q, db):
        witness = supporting_valuation(q, db, answer)
        assert witness is not None
        for body_atom in q.relational_body():
            assert body_atom.substitute(witness) in db
