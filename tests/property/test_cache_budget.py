"""Property tests: a cache budget changes performance, never answers.

The byte budget makes every enrolled cache evict aggressively — a tiny
budget means essentially nothing stays warm, so every lookup path has to
rebuild what it would normally reuse. These tests pin the tentpole safety
property: evaluation under pathological eviction pressure is extensionally
identical to the backtracking oracle (plans), the no-cache engine
(confidence), and the single-store pipeline (shards).
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cache import cache_registry, set_cache_budget_mb
from repro.confidence import ConfidenceEngine
from repro.exceptions import InconsistentCollectionError
from repro.model import fact
from repro.plan import evaluate as plan_evaluate
from repro.queries import evaluate_backtracking, parse_rule
from repro.shard import PartitionSpec, evaluate_sharded

from tests.property.strategies import (
    VALUES,
    binary_databases,
    identity_collections,
)

QUERIES = [
    "V(x) <- E(x, y)",
    "V(x, y) <- E(x, y)",
    "V(x, z) <- E(x, y), E(y, z)",
    "V(x) <- E(x, y), E(y, x)",
    "V(x, y) <- E(x, y), Lt(x, y)",
    "V(y) <- E(1, y)",
    "V(x, w) <- E(x, y), E(y, z), E(z, w)",
]

#: ~1 KB: small enough that every store immediately evicts something.
TINY_MB = 0.001


@pytest.fixture(autouse=True)
def restore_budget():
    """Never leak a budget into the rest of the suite."""
    try:
        yield
    finally:
        set_cache_budget_mb(None)


@given(binary_databases(), st.sampled_from(QUERIES))
@settings(max_examples=60, deadline=None)
def test_tiny_budget_plan_answers_match_backtracking(db, rule):
    query = parse_rule(rule)
    expected = evaluate_backtracking(query, db)
    try:
        set_cache_budget_mb(TINY_MB)
        assert plan_evaluate(query, db) == expected
    finally:
        set_cache_budget_mb(None)


@given(binary_databases(), st.sampled_from(QUERIES),
       st.integers(min_value=2, max_value=4))
@settings(max_examples=30, deadline=None)
def test_tiny_budget_sharded_answers_match_single_store(db, rule, shards):
    query = parse_rule(rule)
    expected = evaluate_backtracking(query, db)
    try:
        set_cache_budget_mb(TINY_MB)
        assert evaluate_sharded(query, db, PartitionSpec(shards)) == expected
    finally:
        set_cache_budget_mb(None)


@given(identity_collections())
@settings(max_examples=15, deadline=None)
def test_tiny_budget_confidences_match_uncached_engine(collection):
    try:
        expected = ConfidenceEngine(
            collection, VALUES, cache_size=0
        ).confidences()
    except InconsistentCollectionError:
        assume(False)
    try:
        set_cache_budget_mb(TINY_MB)
        budgeted = ConfidenceEngine(collection, VALUES).confidences()
    finally:
        set_cache_budget_mb(None)
    assert budgeted == expected


def test_budget_keeps_total_bytes_bounded_across_worlds():
    registry = cache_registry()
    budget_bytes = 64 * 1024
    try:
        set_cache_budget_mb(budget_bytes / (1024 * 1024))
        query = parse_rule("V(x, z) <- E(x, y), E(y, z)")
        oracle = parse_rule("V(x, z) <- E(x, y), E(y, z)")
        from repro.model import GlobalDatabase

        for world in range(40):
            db = GlobalDatabase(
                [fact("E", world, i) for i in range(6)]
                + [fact("E", i, (i + world) % 5) for i in range(6)]
            )
            assert plan_evaluate(query, db) == evaluate_backtracking(
                oracle, db
            )
            assert registry.total_bytes() <= budget_bytes
    finally:
        set_cache_budget_mb(None)
