"""Property tests: the optimizer never changes answers.

For random multi-relation databases and join queries, the
statistics-optimized plan, the static plan, the backtracking join, and the
naive evaluator must agree exactly — and EXPLAIN ANALYZE's instrumented
interpreter must return the same rows as the hot path it measures.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import global_table
from repro.plan import (
    compile_query,
    data_source_for,
    execute_plan,
    statistics_for,
)
from repro.plan.analyze import analyze_plan
from repro.plan.statistics import TableStatistics
from repro.queries import evaluate_backtracking, evaluate_naive, parse_rule

from tests.property.strategies import binary_databases

JOIN_QUERIES = [
    "V(x, z) <- E(x, y), F(y, z)",
    "V(x) <- E(x, y), F(y, x)",
    "V(x, y) <- E(x, y), E(y, x)",
    "V(x, w) <- E(x, y), F(y, z), G(z, w)",
    "V(x) <- E(x, x), F(x, y)",
    "V(y) <- E(1, y), F(y, z)",
    "V(x, z) <- E(x, y), F(y, z), E(z, x)",
]


def to_tuples(atoms):
    return {tuple(c.value for c in a.args) for a in atoms}


def plan_tuples(plan, source, table):
    constant_value = table.constant_value
    return {
        tuple(constant_value(c) for c in row)
        for row in execute_plan(plan, source)
    }


@given(
    binary_databases(relations=("E", "F", "G"), values=(1, 2, 3, 4)),
    st.sampled_from(JOIN_QUERIES),
)
@settings(max_examples=80, deadline=None)
def test_optimized_matches_backtracking_and_naive(db, rule):
    query = parse_rule(rule)
    table = global_table()
    core = db.core()
    expected = to_tuples(evaluate_naive(query, db))
    assert to_tuples(evaluate_backtracking(query, db)) == expected

    source = data_source_for(core)
    static = compile_query(query, table)
    optimized = compile_query(query, table, stats=statistics_for(core))
    assert plan_tuples(static, source, table) == expected
    assert plan_tuples(optimized, source, table) == expected


@given(
    binary_databases(relations=("E", "F"), values=(1, 2, 3)),
    st.sampled_from(JOIN_QUERIES[:3]),
)
@settings(max_examples=60, deadline=None)
def test_analyze_agrees_with_execution(db, rule):
    query = parse_rule(rule)
    table = global_table()
    core = db.core()
    plan = compile_query(query, table, stats=statistics_for(core))
    source = data_source_for(core)
    rows, actuals = analyze_plan(plan, source)
    assert rows == execute_plan(plan, source)
    if plan.optimizer_info is not None:
        assert actuals[id(plan.root)] == len(rows)


@given(binary_databases(relations=("E", "F"), values=(1, 2, 3, 4)))
@settings(max_examples=60, deadline=None)
def test_incremental_statistics_match_fresh_profile(db):
    core = db.core()
    if len(core) == 0:
        return
    base = TableStatistics.profile(core)
    removed = tuple(core)[: max(1, len(core) // 4)]
    derived_core = core.without_ids(removed)
    hint = derived_core.derivation()
    derived = TableStatistics.derive(
        base, derived_core, hint.added, hint.removed
    )
    fresh = TableStatistics.profile(derived_core)
    assert derived.total_facts == fresh.total_facts
    assert derived.relations.keys() == fresh.relations.keys()
    for rid, stats in fresh.relations.items():
        assert derived.relations[rid].cardinality == stats.cardinality
        for position, column in enumerate(stats.columns):
            assert (
                derived.relations[rid].column(position).counts == column.counts
            )
