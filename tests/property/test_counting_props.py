"""Property tests: BlockCounter vs brute-force Γ enumeration, and the
structural invariants of exact confidences."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import fact
from repro.confidence import BlockCounter, GammaSystem, IdentityInstance

from tests.property.strategies import VALUES, identity_collections

DOMAIN = VALUES  # 5 unary facts -> 32 candidate worlds: cheap to enumerate


@given(identity_collections())
@settings(max_examples=50, deadline=None)
def test_block_counting_equals_brute_force(collection):
    instance = IdentityInstance(collection, DOMAIN)
    blocks = BlockCounter(instance)
    gamma = GammaSystem(instance)
    assert blocks.count_worlds() == gamma.count_solutions()


@given(identity_collections())
@settings(max_examples=40, deadline=None)
def test_confidences_match_brute_force(collection):
    instance = IdentityInstance(collection, DOMAIN)
    blocks = BlockCounter(instance)
    gamma = GammaSystem(instance)
    if blocks.count_worlds() == 0:
        return
    for value in DOMAIN:
        f = fact("R", value)
        assert blocks.confidence(f) == gamma.confidence(f)


@given(identity_collections())
@settings(max_examples=50, deadline=None)
def test_containing_excluding_partition(collection):
    blocks = BlockCounter(IdentityInstance(collection, DOMAIN))
    total = blocks.count_worlds()
    for value in DOMAIN:
        f = fact("R", value)
        assert (
            blocks.count_worlds_containing(f) + blocks.count_worlds_excluding(f)
            == total
        )


@given(identity_collections())
@settings(max_examples=40, deadline=None)
def test_confidence_bounds_and_certainty(collection):
    blocks = BlockCounter(IdentityInstance(collection, DOMAIN))
    total = blocks.count_worlds()
    if total == 0:
        return
    for value in DOMAIN:
        f = fact("R", value)
        confidence = blocks.confidence(f)
        assert 0 <= confidence <= 1
        # confidence 1 <=> fact in every enumerated world
        gamma = GammaSystem(blocks.instance)
        in_all = all(f in world for world in gamma.solution_databases())
        assert (confidence == 1) == in_all


@given(identity_collections())
@settings(max_examples=40, deadline=None)
def test_sound_facts_of_fully_sound_source_are_certain(collection):
    """If some source has s = 1, its facts appear in every world."""
    blocks = BlockCounter(IdentityInstance(collection, DOMAIN))
    if blocks.count_worlds() == 0:
        return
    for i, source in enumerate(collection):
        if source.soundness_bound == 1:
            for local in source.extension:
                assert blocks.confidence(fact("R", local.args[0].value)) == 1
