"""Property tests for the rewriting pipeline.

The planner is generate-and-test, so soundness holds by construction; these
tests guard the *expansion* semantics and the end-to-end guarantee that
plans executed over exact sources never invent answers.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import GlobalDatabase, fact
from repro.queries import evaluate, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.rewriting import execute_plan, expand_plan, find_rewritings, view_map

VIEW_SETS = [
    ["VFull(x, y) <- R(x, y)"],
    ["VFull(x, y) <- R(x, y)", "VProj(x) <- R(x, y)"],
    ["VFull(x, y) <- R(x, y)", "VSwap(y, x) <- R(x, y)"],
    ["VJ(x, z) <- R(x, y), R(y, z)", "VFull(x, y) <- R(x, y)"],
]

QUERIES = [
    "ans(x, y) <- R(x, y)",
    "ans(x) <- R(x, y)",
    "ans(x, z) <- R(x, y), R(y, z)",
    "ans(x) <- R(x, x)",
]


@st.composite
def edge_databases(draw):
    facts = draw(
        st.sets(
            st.builds(
                lambda a, b: fact("R", a, b),
                st.integers(min_value=1, max_value=4),
                st.integers(min_value=1, max_value=4),
            ),
            max_size=8,
        )
    )
    return GlobalDatabase(facts)


@given(
    edge_databases(),
    st.sampled_from(QUERIES),
    st.sampled_from(range(len(VIEW_SETS))),
)
@settings(max_examples=50, deadline=None)
def test_expansions_contained_semantically(db, query_text, view_set_index):
    """Every returned plan's expansion yields a subset of Q(D), on data."""
    query = parse_rule(query_text)
    views = [parse_rule(v) for v in VIEW_SETS[view_set_index]]
    for rewriting in find_rewritings(query, views):
        assert evaluate(rewriting.expansion, db) <= evaluate(query, db)
        if rewriting.equivalent:
            assert evaluate(rewriting.expansion, db) == evaluate(query, db)


@given(
    edge_databases(),
    st.sampled_from(QUERIES),
    st.sampled_from(range(len(VIEW_SETS))),
)
@settings(max_examples=40, deadline=None)
def test_execution_over_exact_sources_sound(db, query_text, view_set_index):
    """Plans executed over exact view instances return only true answers."""
    query = parse_rule(query_text)
    views = [parse_rule(v) for v in VIEW_SETS[view_set_index]]
    sources = [
        SourceDescriptor(view, view.apply(db), 1, 1, name=f"S{i}")
        for i, view in enumerate(views)
    ]
    collection = SourceCollection(sources)
    true_answer = evaluate(query, db)
    for rewriting in find_rewritings(query, views):
        answers = execute_plan(rewriting.plan, collection)
        assert answers <= true_answer
        if rewriting.equivalent:
            assert answers == true_answer
