"""Property tests for the consensus machinery."""

from fractions import Fraction

from hypothesis import given, settings

from repro.consensus import (
    blame_scores,
    consensus_trust_scores,
    is_consistent_subset,
    maximal_consistent_subcollections,
    minimal_inconsistent_subcollections,
    repair_via_hitting_set,
    trust_scores,
)

from tests.property.strategies import identity_collections


@given(identity_collections(max_sources=3))
@settings(max_examples=30, deadline=None)
def test_mcs_antichain_and_consistency(collection):
    maximal = maximal_consistent_subcollections(collection)
    for names in maximal:
        assert is_consistent_subset(collection, names)
    for left in maximal:
        for right in maximal:
            if left != right:
                assert not left <= right


@given(identity_collections(max_sources=3))
@settings(max_examples=30, deadline=None)
def test_conflicts_minimal_and_inconsistent(collection):
    conflicts = minimal_inconsistent_subcollections(collection)
    for conflict in conflicts:
        assert not is_consistent_subset(collection, conflict)
        for name in conflict:
            assert is_consistent_subset(collection, conflict - {name})


@given(identity_collections(max_sources=3))
@settings(max_examples=30, deadline=None)
def test_duality_conflicts_vs_mcs(collection):
    """A subset is consistent iff it contains no conflict."""
    conflicts = minimal_inconsistent_subcollections(collection)
    for names in maximal_consistent_subcollections(collection):
        assert not any(conflict <= names for conflict in conflicts)


@given(identity_collections(max_sources=3))
@settings(max_examples=30, deadline=None)
def test_repair_restores_consistency(collection):
    repair, conflicts = repair_via_hitting_set(collection)
    remaining = frozenset(s.name for s in collection) - repair
    assert is_consistent_subset(collection, remaining)
    # minimality against the conflicts: every repaired source hits one
    for name in repair:
        assert any(name in conflict for conflict in conflicts)


@given(identity_collections(max_sources=3))
@settings(max_examples=30, deadline=None)
def test_scores_in_unit_interval(collection):
    for scores in (
        trust_scores(collection),
        consensus_trust_scores(collection),
        blame_scores(collection),
    ):
        for value in scores.values():
            assert Fraction(0) <= value <= Fraction(1)
