"""Property tests for the exact world sampler."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.confidence import BlockCounter, IdentityInstance, WorldSampler

from tests.property.strategies import VALUES, identity_collections


@given(identity_collections(), st.integers(min_value=0, max_value=2**30))
@settings(max_examples=40, deadline=None)
def test_sampler_count_matches_counter(collection, seed):
    instance = IdentityInstance(collection, VALUES)
    sampler = WorldSampler(instance, random.Random(seed))
    assert sampler.count_worlds() == BlockCounter(instance).count_worlds()


@given(identity_collections(), st.integers(min_value=0, max_value=2**30))
@settings(max_examples=30, deadline=None)
def test_samples_are_possible_worlds(collection, seed):
    instance = IdentityInstance(collection, VALUES)
    sampler = WorldSampler(instance, random.Random(seed))
    if sampler.count_worlds() == 0:
        return
    for _ in range(5):
        world = sampler.sample()
        assert collection.admits(world)
