"""Hypothesis strategies for random model objects and source collections."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import strategies as st

from repro.model import Atom, GlobalDatabase, fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor

VALUES = ["a", "b", "c", "d", "e"]


@st.composite
def unary_databases(draw, relation="R", values=VALUES):
    """A small database over one unary relation."""
    chosen = draw(st.sets(st.sampled_from(values), max_size=len(values)))
    return GlobalDatabase(fact(relation, v) for v in chosen)


@st.composite
def binary_databases(draw, relations=("E",), values=(1, 2, 3)):
    """A small database over binary relations."""
    facts = draw(
        st.sets(
            st.builds(
                lambda r, a, b: fact(r, a, b),
                st.sampled_from(list(relations)),
                st.sampled_from(list(values)),
                st.sampled_from(list(values)),
            ),
            max_size=8,
        )
    )
    return GlobalDatabase(facts)


def bounds():
    """Exact rational bounds in [0, 1] with small denominators."""
    return st.builds(
        Fraction,
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=1, max_value=4),
    ).map(lambda f: min(f, Fraction(1)))


@st.composite
def identity_collections(draw, max_sources=3, values=VALUES):
    """A random identity-view collection over a shared unary relation."""
    n = draw(st.integers(min_value=1, max_value=max_sources))
    sources = []
    for i in range(1, n + 1):
        extension_values = draw(
            st.sets(st.sampled_from(values), min_size=0, max_size=3)
        )
        sources.append(
            SourceDescriptor(
                identity_view(f"V{i}", "R", 1),
                [fact(f"V{i}", v) for v in sorted(extension_values)],
                draw(bounds()),
                draw(bounds()),
                name=f"S{i}",
            )
        )
    return SourceCollection(sources)
