"""Property tests: the engine is executor-independent.

Serial and multi-process engines must return *identical* exact fractions,
and Monte-Carlo estimates under a fixed seed must be bit-identical floats.
One worker pool is shared across examples (pool start-up dwarfs the tiny
instances hypothesis draws).
"""

import atexit

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.model import fact
from repro.confidence import ConfidenceEngine
from repro.confidence.engine import ChunkedExecutor
from repro.exceptions import InconsistentCollectionError

from tests.property.strategies import VALUES, identity_collections

DOMAIN = VALUES

_POOL = ChunkedExecutor(workers=2)
atexit.register(_POOL.close)


def serial_engine(collection):
    return ConfidenceEngine(collection, DOMAIN, cache_size=0)


def parallel_engine(collection):
    # cache_size=0 so no memo can mask a divergence between executors.
    return ConfidenceEngine(
        collection, DOMAIN, cache_size=0, executor=_POOL
    )


@given(identity_collections())
@settings(max_examples=25, deadline=None)
def test_parallel_exact_confidences_identical(collection):
    try:
        expected = serial_engine(collection).confidences()
    except InconsistentCollectionError:
        assume(False)
    assert parallel_engine(collection).confidences() == expected


@given(identity_collections(), st.integers(min_value=0, max_value=2**32))
@settings(max_examples=15, deadline=None)
def test_parallel_estimates_bit_identical(collection, seed):
    engine = serial_engine(collection)
    assume(engine.is_consistent())
    facts = [fact("R", v) for v in DOMAIN[:3]]
    kwargs = dict(samples=120, seed=seed, samples_per_chunk=40)
    serial = engine.estimate_confidences(facts, **kwargs)
    parallel = parallel_engine(collection).estimate_confidences(facts, **kwargs)
    assert serial == parallel
