"""Property tests: sharded scatter-gather agrees with both oracles.

For random conjunctive queries over random databases, any partition spec —
any shard count (including the degenerate N=1), any key positions — must
produce exactly the single-store plan executor's answers, which in turn
match the backtracking oracle. This is the shard subsystem's contract:
partitioning is an execution detail, never a semantics change.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan import evaluate as plan_evaluate
from repro.queries import evaluate_backtracking, parse_rule
from repro.shard import (
    PartitionSpec,
    ShardedDatabase,
    ShardExecutor,
    canonical_order,
    plan_shards,
)

from tests.property.strategies import binary_databases

QUERIES = [
    "V(x) <- E(x, y)",
    "V(x, y) <- E(x, y)",
    "V(x, z) <- E(x, y), E(y, z)",
    "V(x) <- E(x, x)",
    "V(x) <- E(x, y), E(y, x)",
    "V(y) <- E(1, y)",
    "V(x, z) <- E(x, y), F(z, y)",
    "V(x, z) <- E(x, y), F(z, w)",
    "V(x, w) <- E(x, y), E(y, z), E(z, w)",
    "V() <- E(1, 2)",
]


def partition_specs():
    return st.builds(
        PartitionSpec,
        st.integers(min_value=1, max_value=5),
        st.fixed_dictionaries(
            {},
            optional={
                "E": st.integers(min_value=0, max_value=2),
                "F": st.integers(min_value=0, max_value=2),
            },
        ),
        st.integers(min_value=0, max_value=1),
    )


@given(
    binary_databases(relations=("E", "F")),
    st.sampled_from(QUERIES),
    partition_specs(),
)
@settings(max_examples=120, deadline=None)
def test_sharded_matches_plan_and_backtracking(db, rule, spec):
    query = parse_rule(rule)
    expected = plan_evaluate(query, db)
    assert evaluate_backtracking(query, db) == expected
    executor = ShardExecutor(ShardedDatabase(db, spec))
    assert executor.answer(query) == expected


@given(
    binary_databases(relations=("E", "F")),
    st.sampled_from(QUERIES),
    partition_specs(),
    partition_specs(),
)
@settings(max_examples=60, deadline=None)
def test_canonical_order_is_layout_independent(db, rule, spec_a, spec_b):
    query = parse_rule(rule)
    first = ShardExecutor(ShardedDatabase(db, spec_a)).answer_ordered(query)
    second = ShardExecutor(ShardedDatabase(db, spec_b)).answer_ordered(query)
    assert first == second == canonical_order(plan_evaluate(query, db))


@given(binary_databases(relations=("E", "F")), partition_specs())
@settings(max_examples=60, deadline=None)
def test_fragments_cover_without_reading_values(db, spec):
    # Structural soundness of every chosen layout: for single-atom plans,
    # fragments partition the store; pruned plans skip all but one shard.
    query = parse_rule("V(x, y) <- E(x, y)")
    plan = plan_shards(query, ShardedDatabase(db, spec))
    total = sum(len(facts) for _i, facts in plan.fragments)
    if plan.strategy in ("single", "scatter", "global"):
        assert total == len(db.core())
    assert plan.shards_executed + plan.shards_pruned <= plan.shards_total
