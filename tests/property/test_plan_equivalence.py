"""Property tests: the compiled-plan executor agrees with both oracles.

Random conjunctive queries over random databases must produce identical
answers along all three routes — compiled plan, backtracking join, naive
cross product — and alpha-renamed queries must share one plan-cache entry.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import cq_to_algebra, rows_to_facts
from repro.confidence.engine.memo import LRUMemo
from repro.core.symbols import SymbolTable
from repro.plan import evaluate as plan_evaluate
from repro.plan import evaluate_rows, plan_for, plan_key
from repro.queries import (
    evaluate_backtracking,
    evaluate_naive,
    parse_rule,
)

from tests.property.strategies import binary_databases

QUERIES = [
    "V(x) <- E(x, y)",
    "V(y) <- E(x, y)",
    "V(x, y) <- E(x, y)",
    "V(x, z) <- E(x, y), E(y, z)",
    "V(x) <- E(x, x)",
    "V(x) <- E(x, y), E(y, x)",
    "V(x, y) <- E(x, y), Lt(x, y)",
    "V(y) <- E(1, y)",
    "V(x, w) <- E(x, y), E(y, z), E(z, w)",
    "V(x, 7) <- E(x, x)",
    "V() <- E(1, 2)",
]

VARIABLE_POOLS = [
    ("x", "y", "z", "w"),
    ("a", "b", "c", "d"),
    ("p", "q", "r", "s"),
]


def rename(rule, pool):
    out = rule
    for old, new in zip(("x", "y", "z", "w"), pool):
        out = out.replace(old, new.upper() + "_tmp")
    for new in pool:
        out = out.replace(new.upper() + "_tmp", new)
    return out


@given(binary_databases(), st.sampled_from(QUERIES))
@settings(max_examples=80, deadline=None)
def test_plan_matches_backtracking_and_naive(db, rule):
    q = parse_rule(rule)
    expected = evaluate_naive(q, db)
    assert plan_evaluate(q, db) == expected
    assert evaluate_backtracking(q, db) == expected


@given(binary_databases(), st.sampled_from(QUERIES))
@settings(max_examples=60, deadline=None)
def test_algebra_plan_matches_boxed_interpreter(db, rule):
    q = parse_rule(rule)
    tree = cq_to_algebra(q)
    assert rows_to_facts(evaluate_rows(tree, db), "V") == rows_to_facts(
        tree.evaluate_boxed(db), "V"
    )


@given(st.sampled_from(QUERIES), st.sampled_from(VARIABLE_POOLS))
@settings(max_examples=60, deadline=None)
def test_alpha_renamed_queries_share_a_plan_key(rule, pool):
    table = SymbolTable()
    original = parse_rule(rule)
    renamed = parse_rule(rename(rule, pool))
    assert plan_key(original, table) == plan_key(renamed, table)


@given(st.sampled_from(QUERIES), st.sampled_from(VARIABLE_POOLS))
@settings(max_examples=40, deadline=None)
def test_alpha_renamed_queries_hit_the_cache(rule, pool):
    table = SymbolTable()
    cache = LRUMemo(maxsize=16)
    first = plan_for(parse_rule(rule), cache=cache, table=table)
    second = plan_for(parse_rule(rename(rule, pool)), cache=cache, table=table)
    assert first is second
    stats = cache.stats()
    assert stats.misses == 1 and stats.hits == 1
