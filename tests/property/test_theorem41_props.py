"""Property test for Theorem 4.1 over random identity collections.

Random *general-view* collections blow up the enumeration quickly, so the
property sweep uses identity collections over a small shared domain (the
deterministic tests in tests/tableaux cover hand-picked general views).
"""

from hypothesis import given, settings

from repro.tableaux import direct_possible_worlds, template_possible_worlds

from tests.property.strategies import identity_collections

DOMAIN = ["a", "b", "c", "d"]


@given(identity_collections(max_sources=2, values=DOMAIN[:3]))
@settings(max_examples=25, deadline=None)
def test_theorem41(collection):
    direct = direct_possible_worlds(collection, DOMAIN)
    via_templates = template_possible_worlds(collection, DOMAIN)
    assert direct == via_templates
