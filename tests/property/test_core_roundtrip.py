"""Property tests for the interned core boundary (repro.core).

Two families:

* **Round-trips** — ``from_core(to_core(x)) == x`` exactly, for terms,
  atoms, databases, views, sources, and whole collections. The boundary is
  lossless, so the boxed API can delegate to ID space freely.
* **Memo-key agreement** — the interned :func:`canonical_key` and the boxed
  :func:`canonical_key_boxed` induce the *same partition* of counting
  problems: two problems (drawn from random collections, including source
  permutations of one another) get equal int keys iff they get equal boxed
  keys. Hit/miss behavior of the engine memo is therefore unchanged by the
  re-encoding.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    from_core_atom,
    from_core_collection,
    from_core_database,
    from_core_source,
    from_core_term,
    from_core_view,
    global_table,
    to_core_atom,
    to_core_collection,
    to_core_database,
    to_core_source,
    to_core_term,
    to_core_view,
)
from repro.confidence.blocks import IdentityInstance
from repro.confidence.engine import kernel
from repro.confidence.engine.memo import canonical_key, canonical_key_boxed
from repro.model import Atom, Constant, GlobalDatabase, Variable, fact
from repro.queries.conjunctive import ConjunctiveQuery
from repro.sources import SourceCollection

from tests.property.strategies import (
    binary_databases,
    identity_collections,
    unary_databases,
)

constants = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.sampled_from(["a", "b", "c", ""]),
    st.booleans(),
)

terms = st.one_of(
    constants.map(Constant),
    st.sampled_from(["x", "y", "z"]).map(Variable),
)

atoms = st.builds(
    Atom,
    st.sampled_from(["R", "S", "T"]),
    st.lists(terms, min_size=0, max_size=3).map(tuple),
)


@given(terms)
def test_term_roundtrip(term):
    table = global_table()
    assert from_core_term(table, to_core_term(table, term)) == term


@given(atoms)
def test_atom_roundtrip(atom):
    table = global_table()
    assert from_core_atom(table, to_core_atom(table, atom)) == atom


@given(atoms, atoms)
def test_interned_equality_mirrors_boxed(left, right):
    table = global_table()
    same_boxed = left == right
    same_core = to_core_atom(table, left) is to_core_atom(table, right)
    assert same_boxed == same_core


@given(st.one_of(unary_databases(), binary_databases()))
def test_database_roundtrip(database):
    table = global_table()
    core = to_core_database(table, database)
    back = from_core_database(table, core)
    assert back == database
    assert len(core) == len(database)


@given(identity_collections())
def test_view_and_source_roundtrip(collection):
    table = global_table()
    for source in collection:
        core_view = to_core_view(table, source.view)
        assert from_core_view(table, core_view) == source.view
        core_source = to_core_source(table, source)
        back = from_core_source(table, core_source)
        assert back == source
        assert back.name == source.name


@given(identity_collections())
def test_collection_roundtrip(collection):
    table = global_table()
    back = from_core_collection(table, to_core_collection(table, collection))
    assert list(back) == list(collection)
    assert [s.name for s in back] == [s.name for s in collection]


def test_builtin_views_stay_boxed():
    from repro.exceptions import SourceError
    from repro.queries.builtins import default_registry

    x = Variable("x")
    query = ConjunctiveQuery(
        Atom("Q", (x,)),
        [Atom("R", (x,)), Atom("Lt", (x, Constant(5)))],
        builtins=default_registry(),
    )
    with pytest.raises(SourceError):
        to_core_view(global_table(), query)


@given(st.one_of(unary_databases(), binary_databases()))
def test_view_apply_agrees_with_boxed(database):
    """CoreView.apply == ConjunctiveQuery.apply, tuple for tuple."""
    table = global_table()
    relations = database.relations()
    if not relations:
        return
    relation = relations[0]
    arity = next(iter(database.extension(relation))).arity
    variables = [Variable(f"x{i}") for i in range(arity)]
    query = ConjunctiveQuery(Atom("Q", variables), [Atom(relation, variables)])
    boxed = {
        tuple(c.value for c in answer.args) for answer in query.apply(database)
    }
    core = to_core_view(table, query).apply(database.core())
    interned = {
        tuple(table.constant_value(c) for c in answer) for answer in core
    }
    assert interned == boxed


# -- memo-key agreement -------------------------------------------------------


def _problems_of(collection, domain):
    """Denominator + one forced-block problem per block, as the engine plans."""
    instance = IdentityInstance(collection, domain)
    spec = kernel.spec_of(instance)
    problems = [kernel.reduce_spec(spec)]
    for j, block in enumerate(instance.blocks):
        if block.facts:
            problems.append(kernel.reduce_spec(spec, forced={j: 1}))
    return [p for p in problems if p is not None]


@settings(deadline=None)
@given(identity_collections(), identity_collections(), st.permutations(range(3)))
def test_memo_keys_agree_with_boxed(left, right, order):
    """Equal int keys iff equal boxed keys — across two random collections
    and a source permutation of the first (alpha-equivalent by construction).
    """
    domain = ["a", "b", "c", "d", "e"]
    permuted = SourceCollection(
        [list(left)[i] for i in order if i < len(left)]
        + list(left)[3:]
    )
    problems = (
        _problems_of(left, domain)
        + _problems_of(right, domain)
        + _problems_of(permuted, domain)
    )
    for p in problems:
        for q in problems:
            assert (canonical_key(p) == canonical_key(q)) == (
                canonical_key_boxed(p) == canonical_key_boxed(q)
            )


@given(identity_collections())
def test_permuted_sources_share_keys(collection):
    """A source permutation yields identical int keys problem-for-problem."""
    domain = ["a", "b", "c", "d", "e"]
    reversed_collection = SourceCollection(list(collection)[::-1])
    keys = sorted(
        canonical_key(p) for p in _problems_of(collection, domain)
    )
    permuted_keys = sorted(
        canonical_key(p) for p in _problems_of(reversed_collection, domain)
    )
    assert keys == permuted_keys
