"""Property tests for the consistency deciders."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import check_identity, size_bound, verify_witness
from repro.confidence import BlockCounter, IdentityInstance
from repro.reductions import (
    HittingSetInstance,
    hs_to_hs_star,
    map_solution_back,
    solve_exact,
    solve_hs_star_via_consistency,
)

from tests.property.strategies import VALUES, identity_collections


@given(identity_collections())
@settings(max_examples=60, deadline=None)
def test_dp_agrees_with_counting(collection):
    dp = check_identity(collection)
    counting = BlockCounter(IdentityInstance(collection, VALUES)).is_consistent()
    assert dp.consistent == counting


@given(identity_collections())
@settings(max_examples=60, deadline=None)
def test_witness_is_valid_and_bounded(collection):
    result = check_identity(collection)
    if result.consistent:
        assert collection.admits(result.witness)
        assert len(result.witness) <= size_bound(collection) or size_bound(
            collection
        ) == 0
        assert verify_witness(collection, result.witness) or len(result.witness) == 0


hs_instances = st.builds(
    lambda subsets, k: HittingSetInstance(subsets, k),
    st.lists(
        st.sets(st.integers(min_value=0, max_value=5), min_size=1, max_size=3),
        min_size=1,
        max_size=4,
    ),
    st.integers(min_value=1, max_value=5),
)


@given(hs_instances)
@settings(max_examples=60, deadline=None)
def test_reduction_chain_equisolvable(instance):
    """HS solvable ⇔ HS* solvable ⇔ reduced CONSISTENCY consistent."""
    direct = solve_exact(instance)
    star, fresh_element = hs_to_hs_star(instance)
    via_consistency = solve_hs_star_via_consistency(star)
    assert (direct is not None) == (via_consistency is not None)
    if via_consistency is not None:
        mapped = map_solution_back(via_consistency, fresh_element)
        assert instance.is_hitting_set(mapped)
