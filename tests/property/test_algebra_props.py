"""Property tests: algebraic laws of the σ/π/×/∪ operators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    ALWAYS,
    Col,
    Comparison,
    Product,
    Projection,
    RelationScan,
    Selection,
    UnionNode,
)

from tests.property.strategies import binary_databases

SCAN = RelationScan("E", 2)


def conditions():
    return st.sampled_from(
        [
            ALWAYS,
            Comparison(Col(0), "=", 1),
            Comparison(Col(0), "<", Col(1)),
            Comparison(Col(1), "!=", 2),
        ]
    )


@given(binary_databases(), conditions())
@settings(max_examples=60, deadline=None)
def test_selection_idempotent(db, condition):
    once = Selection(condition, SCAN).evaluate(db)
    twice = Selection(condition, Selection(condition, SCAN)).evaluate(db)
    assert once == twice


@given(binary_databases(), conditions(), conditions())
@settings(max_examples=60, deadline=None)
def test_selection_commutes(db, c1, c2):
    a = Selection(c1, Selection(c2, SCAN)).evaluate(db)
    b = Selection(c2, Selection(c1, SCAN)).evaluate(db)
    assert a == b


@given(binary_databases())
@settings(max_examples=60, deadline=None)
def test_projection_identity(db):
    assert Projection([0, 1], SCAN).evaluate(db) == SCAN.evaluate(db)


@given(binary_databases())
@settings(max_examples=60, deadline=None)
def test_projection_composition(db):
    """π₀(π₀,₁(E)) == π₀(E)."""
    composed = Projection([0], Projection([0, 1], SCAN)).evaluate(db)
    direct = Projection([0], SCAN).evaluate(db)
    assert composed == direct


@given(binary_databases())
@settings(max_examples=50, deadline=None)
def test_union_laws(db):
    scan_rows = SCAN.evaluate(db)
    assert UnionNode(SCAN, SCAN).evaluate(db) == scan_rows  # idempotent
    empty = Selection(Comparison(Col(0), "=", "nope"), SCAN)
    assert UnionNode(SCAN, empty).evaluate(db) == scan_rows  # identity


@given(binary_databases())
@settings(max_examples=40, deadline=None)
def test_product_cardinality(db):
    rows = SCAN.evaluate(db)
    product_rows = Product(SCAN, SCAN).evaluate(db)
    assert len(product_rows) == len(rows) ** 2


@given(binary_databases(), conditions())
@settings(max_examples=50, deadline=None)
def test_selection_pushes_through_union(db, condition):
    """σ(A ∪ B) == σ(A) ∪ σ(B)."""
    left = Selection(condition, UnionNode(SCAN, Projection([1, 0], SCAN)))
    right = UnionNode(
        Selection(condition, SCAN),
        Selection(condition, Projection([1, 0], SCAN)),
    )
    assert left.evaluate(db) == right.evaluate(db)
