"""Shared fixtures: canonical small collections used across the suite."""

from __future__ import annotations

import random

import pytest

from repro.model import GlobalDatabase, fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor


def make_example51_collection() -> SourceCollection:
    """The paper's Example 5.1: S1 = ⟨Id_R, {R(a), R(b)}, 0.5, 0.5⟩,
    S2 = ⟨Id_R, {R(b), R(c)}, 0.5, 0.5⟩."""
    return SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1),
                [fact("V1", "a"), fact("V1", "b")],
                "1/2",
                "1/2",
                name="S1",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "b"), fact("V2", "c")],
                "1/2",
                "1/2",
                name="S2",
            ),
        ]
    )


def example51_domain(m: int):
    """dom = {a, b, c, d_1 .. d_m}."""
    return ["a", "b", "c"] + [f"d{i}" for i in range(1, m + 1)]


@pytest.fixture
def example51():
    return make_example51_collection()


@pytest.fixture
def example51_dom2():
    return example51_domain(2)


@pytest.fixture
def rng():
    return random.Random(20010617)  # PODS 2001 vintage


@pytest.fixture
def small_db():
    return GlobalDatabase(
        [
            fact("R", 1, 2),
            fact("R", 2, 3),
            fact("R", 3, 1),
            fact("S", 2, "x"),
            fact("S", 3, "y"),
        ]
    )


@pytest.fixture
def exact_single_source():
    view = parse_rule("V1(x) <- R(x,y)")
    return SourceCollection(
        [SourceDescriptor(view, [fact("V1", "a"), fact("V1", "b")], 1, 1, name="S1")]
    )
