"""Tests for repro.util.combinatorics and itertools2."""

from math import comb

from repro.util import (
    binomial,
    count_vectors,
    first,
    multinomial,
    pairwise_distinct,
    powerset,
    subsets_of_size,
    subsets_of_size_at_least,
    unique_everseen,
)


class TestBinomial:
    def test_matches_math_comb(self):
        for n in range(8):
            for k in range(8):
                expected = comb(n, k) if k <= n else 0
                assert binomial(n, k) == expected

    def test_out_of_range_zero(self):
        assert binomial(3, -1) == 0
        assert binomial(-2, 0) == 0


class TestMultinomial:
    def test_known_value(self):
        assert multinomial([2, 1, 1]) == 12

    def test_single_block(self):
        assert multinomial([5]) == 1

    def test_negative_zero(self):
        assert multinomial([2, -1]) == 0

    def test_equals_factorial_formula(self):
        import math

        counts = [3, 2, 4]
        expected = math.factorial(9) // (6 * 2 * 24)
        assert multinomial(counts) == expected


class TestSubsetIteration:
    def test_powerset_size(self):
        assert len(list(powerset(range(5)))) == 32

    def test_subsets_of_size(self):
        assert len(list(subsets_of_size(range(5), 2))) == 10

    def test_subsets_of_size_at_least(self):
        result = list(subsets_of_size_at_least([1, 2, 3], 2))
        assert len(result) == 4  # C(3,2) + C(3,3)
        assert all(len(s) >= 2 for s in result)

    def test_at_least_zero_is_powerset(self):
        assert len(list(subsets_of_size_at_least("ab", 0))) == 4

    def test_at_least_negative_clamped(self):
        assert len(list(subsets_of_size_at_least("ab", -3))) == 4


class TestCountVectors:
    def test_cardinality(self):
        assert len(list(count_vectors([2, 3]))) == 3 * 4

    def test_bounds_respected(self):
        for vec in count_vectors([1, 2]):
            assert 0 <= vec[0] <= 1 and 0 <= vec[1] <= 2

    def test_empty_limits(self):
        assert list(count_vectors([])) == [()]


class TestItertools2:
    def test_first(self):
        assert first([3, 4]) == 3
        assert first([], default="d") == "d"

    def test_unique_everseen(self):
        assert list(unique_everseen([1, 2, 1, 3, 2])) == [1, 2, 3]

    def test_pairwise_distinct(self):
        assert pairwise_distinct([1, 2, 3])
        assert not pairwise_distinct([1, 2, 1])
