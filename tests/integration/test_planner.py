"""Tests for the completeness-driven source planner."""

from fractions import Fraction

from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.algebra import RelationScan
from repro.integration import (
    coverage_estimate,
    order_sources,
    plan_prefix,
    query_relations,
    relevant_sources,
)


def collection():
    return SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1), [fact("V1", "a")], "0.9", "0.5",
                name="big",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1), [fact("V2", "b")], "0.3", "0.9",
                name="small",
            ),
            SourceDescriptor(
                parse_rule("V3(x) <- S(x)"), [fact("V3", "c")], "0.8", "0.8",
                name="other-relation",
            ),
        ]
    )


class TestRelevance:
    def test_query_relations_cq(self):
        q = parse_rule("ans(x) <- R(x), After(x, 0)")
        assert query_relations(q) == {"R"}

    def test_query_relations_algebra(self):
        assert query_relations(RelationScan("R", 1)) == {"R"}

    def test_relevant_sources_filters_relation(self):
        relevant = relevant_sources(collection(), RelationScan("R", 1))
        assert {s.name for s in relevant} == {"big", "small"}


class TestOrdering:
    def test_completeness_descending(self):
        ordered = order_sources(collection(), RelationScan("R", 1))
        assert [s.name for s in ordered] == ["big", "small"]

    def test_tie_broken_by_soundness(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [], "0.5", "0.2", name="less-sound"
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1), [], "0.5", "0.8", name="more-sound"
                ),
            ]
        )
        ordered = order_sources(col, RelationScan("R", 1))
        assert ordered[0].name == "more-sound"


class TestCoveragePlan:
    def test_coverage_estimate(self):
        sources = order_sources(collection(), RelationScan("R", 1))
        assert coverage_estimate(sources[:1]) == Fraction(9, 10)
        # 1 - 0.1*0.7 = 0.93
        assert coverage_estimate(sources) == Fraction(93, 100)

    def test_plan_stops_at_target(self):
        chosen, coverage = plan_prefix(
            collection(), RelationScan("R", 1), target_coverage="0.85"
        )
        assert [s.name for s in chosen] == ["big"]
        assert coverage >= Fraction(85, 100)

    def test_plan_exhausts_when_unreachable(self):
        chosen, coverage = plan_prefix(
            collection(), RelationScan("R", 1), target_coverage="0.99"
        )
        assert len(chosen) == 2 and coverage < Fraction(99, 100)

    def test_empty_relevant_set(self):
        chosen, coverage = plan_prefix(collection(), RelationScan("T", 1))
        assert chosen == [] and coverage == 0
