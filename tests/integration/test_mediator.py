"""Tests for the Mediator facade."""

from fractions import Fraction

import pytest

from repro.exceptions import SourceError
from repro.model import Constant, fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceDescriptor
from repro.algebra import Col, Comparison, RelationScan, Selection
from repro.integration import Mediator

from tests.conftest import example51_domain, make_example51_collection


def row(*values):
    return tuple(Constant(v) for v in values)


@pytest.fixture
def mediator():
    return Mediator(list(make_example51_collection()))


class TestRegistration:
    def test_register_and_len(self):
        m = Mediator()
        m.register(
            SourceDescriptor(identity_view("V1", "R", 1), [], 0, 0, name="S1")
        )
        assert len(m) == 1

    def test_duplicate_name_rejected(self, mediator):
        with pytest.raises(SourceError):
            mediator.register(
                SourceDescriptor(identity_view("V9", "R", 1), [], 0, 0, name="S1")
            )

    def test_deregister(self, mediator):
        mediator.deregister("S1")
        assert len(mediator) == 1
        with pytest.raises(SourceError):
            mediator.deregister("S1")

    def test_chaining(self):
        m = Mediator().register(
            SourceDescriptor(identity_view("V1", "R", 1), [], 0, 0, name="A")
        ).register(
            SourceDescriptor(identity_view("V2", "R", 1), [], 0, 0, name="B")
        )
        assert len(m) == 2


class TestConsistencyAndAudit:
    def test_check(self, mediator):
        assert mediator.check_consistency().consistent

    def test_audit_report(self, mediator):
        from repro.model import GlobalDatabase

        world = GlobalDatabase([fact("R", "b")])
        report = mediator.audit(world)
        assert report["S1"]["soundness"] == Fraction(1, 2)
        assert report["S1"]["declared_soundness"] == Fraction(1, 2)
        assert report["S1"]["completeness"] == Fraction(1)


class TestQuerying:
    def test_base_confidences(self, mediator):
        confidences = mediator.base_confidences(example51_domain(1))
        assert confidences[fact("R", "b")] == Fraction(6, 7)

    def test_enumerate_query(self, mediator):
        qa = mediator.query(RelationScan("R", 1), example51_domain(1))
        assert qa.confidences[row("b")] == Fraction(6, 7)

    def test_sample_query_close_to_exact(self, mediator, rng):
        qa = mediator.query(
            RelationScan("R", 1),
            example51_domain(1),
            method="sample",
            samples=1500,
            rng=rng,
        )
        assert abs(float(qa.confidences[row("b")]) - 6 / 7) < 0.05

    def test_unknown_method(self, mediator):
        with pytest.raises(SourceError):
            mediator.query(RelationScan("R", 1), ["a"], method="psychic")

    def test_propagated_confidences_cq(self, mediator):
        q = parse_rule("ans(x) <- R(x)")
        result = mediator.propagated_confidences(q, example51_domain(1))
        assert result[fact("ans", "b")] == Fraction(6, 7)

    def test_propagated_selection_matches_enumeration(self, mediator):
        q = Selection(Comparison(Col(0), "=", "b"), RelationScan("R", 1))
        propagated = mediator.propagated_confidences(q, example51_domain(1))
        enumerated = mediator.query(q, example51_domain(1))
        assert propagated[fact("ans", "b")] == enumerated.confidences[row("b")]

    def test_world_sampler_counts(self, mediator, rng):
        sampler = mediator.world_sampler(example51_domain(1), rng)
        assert sampler.count_worlds() == 7


class TestRewriteFacade:
    def test_rewrite_finds_identity_plan(self, mediator):
        q = parse_rule("ans(x) <- R(x)")
        plans = mediator.rewrite(q)
        assert plans and plans[0].equivalent

    def test_answer_from_sources(self, mediator):
        q = parse_rule("ans(x) <- R(x)")
        answers = mediator.answer_from_sources(q)
        values = {a.fact.args[0].value for a in answers}
        assert values == {"a", "b", "c"}
        # support = the contributing source's soundness bound (1/2)
        for answer in answers:
            assert answer.support == Fraction(1, 2)

    def test_no_rewriting_empty(self, mediator):
        q = parse_rule("ans(x) <- T(x)")
        assert mediator.rewrite(q) == []
        assert mediator.answer_from_sources(q) == []
