"""End-to-end integration tests: workloads → mediator → analyses.

These flows tie multiple subsystems together, mirroring how a downstream
user would drive the library.
"""

import random
from fractions import Fraction

import pytest

from repro.model import GlobalDatabase, fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.algebra import RelationScan
from repro.integration import Mediator
from repro.workloads import caches
from repro.workloads.random_sources import consistent_identity_collection

from tests.conftest import example51_domain, make_example51_collection


class TestCacheFleetFlow:
    """Generate a cache fleet, audit it, rank liveness, sanity-check."""

    def test_full_flow(self, rng):
        fleet = caches.generate(
            n_objects=10, n_retired=5, n_caches=3,
            miss_rate=0.2, stale_rate=0.2, rng=rng,
        )
        mediator = Mediator(list(fleet.collection))

        # consistency + audit against the (normally hidden) origin
        assert mediator.check_consistency().consistent
        report = mediator.audit(fleet.origin)
        for name, row in report.items():
            assert row["completeness"] >= row["declared_completeness"]
            assert row["soundness"] >= row["declared_soundness"]

        # exact confidences and statistics
        confidences = mediator.base_confidences(fleet.domain)
        expected_size = mediator.expected_database_size(fleet.domain)
        # E[|D|] = Σ over ALL facts (covered + anonymous) of their
        # confidence, so the covered sum is a lower bound.
        assert expected_size >= sum(confidences.values(), Fraction(0))
        distribution = mediator.size_distribution(fleet.domain)
        assert sum(distribution.values()) == 1

        # expected size must bracket the true origin plausibly
        assert 0 < expected_size <= len(fleet.domain)

    def test_sampled_query_flow(self, rng):
        fleet = caches.generate(
            n_objects=30, n_retired=10, n_caches=4, rng=rng,
        )
        mediator = Mediator(list(fleet.collection))
        qa = mediator.query(
            RelationScan(caches.RELATION, 1),
            fleet.domain,
            method="sample",
            samples=300,
            rng=rng,
        )
        assert qa.world_count == 300
        # certain rows from sampling are at least the analytic certain facts
        confidences = mediator.base_confidences(fleet.domain)
        for f, confidence in confidences.items():
            if confidence == 1:
                assert f.args in qa.possible


class TestConsensusFlow:
    def test_report_consistent(self):
        mediator = Mediator(list(make_example51_collection()))
        report = mediator.consensus_report()
        assert report["consistent"]
        assert report["conflicts"] == []
        assert report["repair"] == frozenset()
        assert report["relaxation_discount"] == 0
        assert set(report["trust"].values()) == {Fraction(1)}

    def test_report_with_fabricator(self):
        truth = ["a", "b"]
        sources = [
            SourceDescriptor(
                identity_view(f"V{i}", "R", 1),
                [fact(f"V{i}", v) for v in truth],
                1, 1, name=f"honest{i}",
            )
            for i in (1, 2)
        ]
        sources.append(
            SourceDescriptor(
                identity_view("Vf", "R", 1), [fact("Vf", "zz")], 1, 1,
                name="fabricator",
            )
        )
        mediator = Mediator(sources)
        report = mediator.consensus_report()
        assert not report["consistent"]
        assert report["repair"] == frozenset({"fabricator"})
        assert report["consensus_trust"]["fabricator"] == 0
        assert report["consensus_trust"]["honest1"] == 1
        assert 0 < report["relaxation_discount"] <= 1


class TestCertainAnswerRoutes:
    def test_three_methods_nested(self):
        collection = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a"), fact("V1", "b")],
                    0, 1, name="S1",
                ),
            ]
        )
        mediator = Mediator(list(collection))
        q = parse_rule("ans(x) <- R(x)")
        exact = mediator.certain_answers(q, ["a", "b", "c"], method="enumerate")
        via_templates = mediator.certain_answers(q, method="templates")
        via_im = mediator.certain_answers(q, method="im")
        assert via_im <= exact and via_templates <= exact
        assert via_im == via_templates == exact  # all sound facts, no forcing

    def test_enumerate_requires_domain(self):
        from repro.exceptions import SourceError

        mediator = Mediator(list(make_example51_collection()))
        q = parse_rule("ans(x) <- R(x)")
        with pytest.raises(SourceError):
            mediator.certain_answers(q, method="enumerate")
        with pytest.raises(SourceError):
            mediator.certain_answers(q, method="psychic")


class TestRandomCollectionFlow:
    @pytest.mark.parametrize("seed", range(3))
    def test_generated_collections_fully_analyzable(self, seed):
        collection, truth, domain = consistent_identity_collection(
            3, 10, 5, slack=0.2, rng=random.Random(seed)
        )
        mediator = Mediator(list(collection))
        assert mediator.check_consistency().consistent
        confidences = mediator.base_confidences(domain)
        # the ground truth only contains plausible facts
        for f in truth:
            assert confidences.get(f, Fraction(0)) >= 0
        expected = mediator.expected_database_size(domain)
        assert 0 <= expected <= len(domain)
        report = mediator.consensus_report()
        assert report["consistent"]
