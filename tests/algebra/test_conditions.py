"""Tests for selection conditions."""

import pytest

from repro.exceptions import QueryError
from repro.model import Constant
from repro.algebra.conditions import (
    ALWAYS,
    And,
    Col,
    Comparison,
    Not,
    Or,
    TrueCondition,
)


def row(*values):
    return tuple(Constant(v) for v in values)


class TestComparison:
    def test_col_vs_literal(self):
        cond = Comparison(Col(0), ">", 1900)
        assert cond(row(1950))
        assert not cond(row(1850))

    def test_col_vs_col(self):
        cond = Comparison(Col(0), "=", Col(1))
        assert cond(row(5, 5))
        assert not cond(row(5, 6))

    def test_literal_vs_col(self):
        cond = Comparison(1900, "<", Col(0))
        assert cond(row(1950))

    def test_constant_wrapper_operand(self):
        cond = Comparison(Col(0), "=", Constant("Canada"))
        assert cond(row("Canada"))

    def test_all_operators(self):
        assert Comparison(Col(0), "<=", 5)(row(5))
        assert Comparison(Col(0), ">=", 5)(row(5))
        assert Comparison(Col(0), "!=", 5)(row(6))
        assert Comparison(Col(0), "==", 5)(row(5))

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            Comparison(Col(0), "~", 5)

    def test_out_of_range_column(self):
        with pytest.raises(QueryError):
            Comparison(Col(3), "=", 1)(row(1))

    def test_negative_column_rejected(self):
        with pytest.raises(QueryError):
            Col(-1)

    def test_heterogeneous_types_false(self):
        assert not Comparison(Col(0), ">", 5)(row("abc"))


class TestBooleanCombinators:
    def test_and(self):
        cond = And(Comparison(Col(0), ">", 1), Comparison(Col(0), "<", 5))
        assert cond(row(3))
        assert not cond(row(7))

    def test_or(self):
        cond = Or(Comparison(Col(0), "=", 1), Comparison(Col(0), "=", 2))
        assert cond(row(2))
        assert not cond(row(3))

    def test_not(self):
        assert Not(Comparison(Col(0), "=", 1))(row(2))

    def test_operator_overloads(self):
        gt = Comparison(Col(0), ">", 0)
        lt = Comparison(Col(0), "<", 10)
        assert (gt & lt)(row(5))
        assert (gt | lt)(row(-1))
        assert (~gt)(row(-1))

    def test_always(self):
        assert ALWAYS(row()) and isinstance(ALWAYS, TrueCondition)
