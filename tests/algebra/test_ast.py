"""Tests for the relational-algebra AST and evaluation."""

import pytest

from repro.exceptions import QueryError
from repro.model import Constant, GlobalDatabase, fact
from repro.algebra import (
    Col,
    Comparison,
    Product,
    Projection,
    RelationScan,
    Selection,
    UnionNode,
    join,
    rows_to_facts,
)


def rows(*tuples):
    return frozenset(tuple(Constant(v) for v in t) for t in tuples)


@pytest.fixture
def db():
    return GlobalDatabase(
        [
            fact("R", 1, "a"),
            fact("R", 2, "b"),
            fact("S", "a", 10),
            fact("S", "b", 20),
        ]
    )


class TestRelationScan:
    def test_scan(self, db):
        assert RelationScan("R", 2).evaluate(db) == rows((1, "a"), (2, "b"))

    def test_scan_missing_relation_empty(self, db):
        assert RelationScan("T", 1).evaluate(db) == frozenset()

    def test_width_and_relations(self):
        scan = RelationScan("R", 2)
        assert scan.width() == 2 and scan.relations() == {"R"}


class TestSelection:
    def test_filter(self, db):
        q = Selection(Comparison(Col(0), ">", 1), RelationScan("R", 2))
        assert q.evaluate(db) == rows((2, "b"))

    def test_none_condition_is_always(self, db):
        q = Selection(None, RelationScan("R", 2))
        assert len(q.evaluate(db)) == 2

    def test_fluent_select(self, db):
        q = RelationScan("R", 2).select(Comparison(Col(1), "=", "a"))
        assert q.evaluate(db) == rows((1, "a"))


class TestProjection:
    def test_reorder_and_drop(self, db):
        q = Projection([1, 0], RelationScan("R", 2))
        assert q.evaluate(db) == rows(("a", 1), ("b", 2))

    def test_duplicate_columns(self, db):
        q = Projection([0, 0], RelationScan("R", 2))
        assert q.evaluate(db) == rows((1, 1), (2, 2))

    def test_literal_column(self, db):
        q = Projection([Constant("fixed"), 0], RelationScan("R", 2))
        assert q.evaluate(db) == rows(("fixed", 1), ("fixed", 2))

    def test_out_of_range(self):
        with pytest.raises(QueryError):
            Projection([2], RelationScan("R", 2))

    def test_projection_merges_rows(self):
        db = GlobalDatabase([fact("R", 1, "a"), fact("R", 1, "b")])
        q = Projection([0], RelationScan("R", 2))
        assert q.evaluate(db) == rows((1,))


class TestProductAndJoin:
    def test_product_width_and_rows(self, db):
        q = Product(RelationScan("R", 2), RelationScan("S", 2))
        result = q.evaluate(db)
        assert q.width() == 4 and len(result) == 4

    def test_join_on_column(self, db):
        q = join(RelationScan("R", 2), RelationScan("S", 2), [(1, 0)])
        assert q.evaluate(db) == rows((1, "a", "a", 10), (2, "b", "b", 20))

    def test_join_no_pairs_is_product(self, db):
        q = join(RelationScan("R", 2), RelationScan("S", 2), [])
        assert len(q.evaluate(db)) == 4

    def test_mul_operator(self, db):
        q = RelationScan("R", 2) * RelationScan("S", 2)
        assert len(q.evaluate(db)) == 4


class TestUnion:
    def test_union_rows(self, db):
        q = UnionNode(
            Projection([0], RelationScan("R", 2)),
            Projection([1], RelationScan("S", 2)),
        )
        assert q.evaluate(db) == rows((1,), (2,), (10,), (20,))

    def test_width_mismatch_rejected(self):
        with pytest.raises(QueryError):
            UnionNode(RelationScan("R", 2), RelationScan("S", 1))

    def test_or_operator(self, db):
        q = RelationScan("R", 2) | RelationScan("S", 2)
        assert len(q.evaluate(db)) == 4


class TestRowsToFacts:
    def test_conversion(self, db):
        facts = rows_to_facts(RelationScan("R", 2).evaluate(db), "ans")
        assert fact("ans", 1, "a") in facts
