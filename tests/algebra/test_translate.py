"""Tests for CQ → algebra translation, including the oracle comparison."""

import pytest

from repro.exceptions import QueryError
from repro.model import GlobalDatabase, fact
from repro.queries import evaluate, parse_rule
from repro.queries.builtins import Builtin, default_registry
from repro.algebra import cq_to_algebra, rows_to_facts


@pytest.fixture
def db():
    return GlobalDatabase(
        [
            fact("Temperature", 438432, 1899, 1, -5),
            fact("Temperature", 438432, 1950, 7, 20),
            fact("Temperature", 100, 1950, 7, 25),
            fact("Station", 438432, "Canada"),
            fact("Station", 100, "US"),
        ]
    )


def assert_agrees(rule_text, db):
    q = parse_rule(rule_text)
    translated = rows_to_facts(
        cq_to_algebra(q).evaluate(db), q.head.relation
    )
    assert translated == evaluate(q, db), rule_text


class TestTranslation:
    def test_single_scan(self, db):
        assert_agrees("V(s, c) <- Station(s, c)", db)

    def test_join(self, db):
        assert_agrees(
            'V(s, y, v) <- Temperature(s, y, m, v), Station(s, "Canada")', db
        )

    def test_builtin_condition(self, db):
        assert_agrees(
            "V(s, y) <- Temperature(s, y, m, v), After(y, 1900)", db
        )

    def test_constant_in_head(self, db):
        assert_agrees("V(438432, y) <- Temperature(438432, y, m, v)", db)

    def test_repeated_variable_in_body(self, db):
        extended = db.with_facts([fact("E", 1, 1), fact("E", 1, 2)])
        assert_agrees("V(x) <- E(x, x)", extended)

    def test_builtin_both_variables(self, db):
        extended = db.with_facts([fact("P", 1, 2), fact("P", 3, 2)])
        assert_agrees("V(x, y) <- P(x, y), Lt(x, y)", extended)

    def test_full_motivating_view(self, db):
        assert_agrees(
            'V1(s, y, m, v) <- Temperature(s, y, m, v), '
            'Station(s, "Canada"), After(y, 1900)',
            db,
        )


class TestTranslationErrors:
    def test_no_relational_body(self):
        from repro.model import atom
        from repro.queries import ConjunctiveQuery

        empty = ConjunctiveQuery(atom("V"), [], default_registry())
        with pytest.raises(QueryError):
            cq_to_algebra(empty)

    def test_unsupported_builtin(self):
        registry = default_registry()
        registry.register(Builtin("Odd", 1, lambda x: x % 2 == 1))
        q = parse_rule("V(x) <- R(x), Odd(x)", registry)
        with pytest.raises(QueryError):
            cq_to_algebra(q)
