"""MediatorService end-to-end: correctness, snapshot isolation, stats."""

import asyncio
import json
from fractions import Fraction

from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceDescriptor
from repro.confidence.engine import ConfidenceEngine, LRUMemo
from repro.service import (
    FaultPolicy,
    MediatorService,
    RequestStatus,
    SchedulerConfig,
)

from tests.conftest import make_example51_collection

DOMAIN = ["a", "b", "c", "d"]
R_A, R_B, R_C, R_D = (fact("R", x) for x in "abcd")


def run(coroutine):
    return asyncio.run(coroutine)


class TestCorrectness:
    def test_service_matches_direct_engine(self):
        collection = make_example51_collection()

        async def scenario():
            async with MediatorService(collection, DOMAIN) as service:
                return await service.confidence([R_A, R_B, R_C, R_D])

        response = run(scenario())
        assert response.ok

        with ConfidenceEngine(collection, DOMAIN) as engine:
            expected = {f: engine.confidence(f) for f in (R_A, R_B, R_C, R_D)}
        assert response.confidences == expected
        assert response.confidences[R_A] == Fraction(4, 7)
        assert response.confidences[R_B] == Fraction(6, 7)

    def test_anonymous_fact_gets_a_confidence(self):
        # d is claimed by no source; the service still answers it.
        async def scenario():
            async with MediatorService(
                make_example51_collection(), DOMAIN
            ) as service:
                return await service.confidence([R_D])

        response = run(scenario())
        assert response.ok
        assert 0 < response.confidences[R_D] < 1


class TestSnapshotIsolation:
    def test_inflight_requests_see_preupdate_snapshot(self):
        """Acceptance criterion: a source registered mid-flight is invisible
        to already-admitted requests, which answer exactly as the pre-update
        snapshot would."""
        collection = make_example51_collection()
        # Perfectly sound (completeness 0): every possible database must now
        # contain a and d, without contradicting S2's soundness floor.
        extra = SourceDescriptor(
            identity_view("V3", "R", 1),
            [fact("V3", "a"), fact("V3", "d")],
            0,
            1,
            name="S3",
        )

        async def scenario():
            async with MediatorService(collection, DOMAIN) as service:
                old = service.registry.snapshot()
                # Admitted but not yet served: submit() never yields to the
                # worker, so the mutation below lands strictly mid-flight.
                inflight = await service.submit([R_A, R_D])
                diff = service.register_source(extra)
                assert service.registry.version() == 1
                before = await inflight
                after = await service.confidence([R_A, R_D])
                return old, diff, before, after

        old, diff, before, after = run(scenario())

        assert before.ok and after.ok
        assert before.snapshot_version == 0
        assert after.snapshot_version == 1

        # The in-flight answer is exactly the pre-update snapshot's.
        with ConfidenceEngine(old.instance()) as engine:
            expected = {f: engine.confidence(f) for f in (R_A, R_D)}
        assert before.confidences == expected

        # The mutation really changed the answers (S3 forces a and d into
        # every possible database), so isolation is not vacuous.
        assert after.confidences[R_A] == after.confidences[R_D] == 1
        assert before.confidences[R_A] != 1 and before.confidences[R_D] != 1

    def test_mutation_invalidates_shared_memo(self):
        memo = LRUMemo(128)

        async def scenario():
            async with MediatorService(
                make_example51_collection(), DOMAIN, memo=memo
            ) as service:
                assert (await service.confidence([R_A, R_B])).ok
                populated = len(memo)
                service.update_source(
                    service.registry.snapshot()
                    .collection.by_name("S2")
                    .with_bounds(soundness_bound=1)
                )
                invalidated = service.metrics.counter(
                    "memo_entries_invalidated"
                ).value
                return populated, invalidated, len(memo)

        populated, invalidated, remaining = run(scenario())
        assert populated >= 2
        assert invalidated >= 1
        assert remaining == populated - invalidated


class TestDegradation:
    def test_faulty_service_never_crashes(self):
        async def scenario():
            service = MediatorService(
                make_example51_collection(),
                DOMAIN,
                config=SchedulerConfig(
                    max_attempts=2, backoff_base=0.001, backoff_cap=0.002
                ),
                fault_policy=FaultPolicy(
                    latency=0.002, error_rate=0.5, seed=7
                ),
            )
            async with service:
                responses = []
                for _ in range(12):
                    responses.append(
                        await service.confidence([R_A], timeout=1.0)
                    )
                return responses

        responses = run(scenario())
        statuses = {r.status for r in responses}
        assert statuses <= {RequestStatus.OK, RequestStatus.ERROR}
        for response in responses:
            if response.ok:
                assert response.confidences[R_A] == Fraction(4, 7)
            else:
                assert "injected transient failure" in response.reason


class TestObservability:
    def test_stats_shape_and_json_round_trip(self):
        async def scenario():
            async with MediatorService(
                make_example51_collection(),
                DOMAIN,
                fault_policy=FaultPolicy(seed=0),
            ) as service:
                await service.confidence([R_A])
                return service.stats(), service.recent_spans()

        stats, spans = run(scenario())
        assert set(stats) == {
            "registry", "metrics", "gateway", "tracing", "plan", "shard",
            "cache",
        }
        assert "engine.memo" in stats["cache"]["caches"]
        assert {"hits", "misses", "evictions", "bytes", "invalidations"} <= set(
            stats["cache"]["caches"]["engine.memo"]
        )
        assert stats["cache"]["bytes"] >= 0
        assert set(stats["plan"]) == {
            "cache", "data_sources", "statistics", "optimizer",
        }
        assert stats["registry"]["version"] == 0
        assert stats["registry"]["sources"] == 2
        assert stats["gateway"]["reads"] == 1
        assert stats["gateway"]["errors_injected"] == 0
        assert stats["metrics"]["counters"]["responses_ok"] == 1
        assert stats["metrics"]["histograms"]["latency"]["count"] == 1
        assert stats["tracing"]["spans_started"] >= 3

        parsed = json.loads(json.dumps(stats, sort_keys=True))
        assert parsed["registry"]["version"] == 0

        names = {s["name"] for s in spans}
        assert {"batch", "source_read", "engine"} <= names

    def test_response_to_dict_is_json_serializable(self):
        async def scenario():
            async with MediatorService(
                make_example51_collection(), DOMAIN
            ) as service:
                return await service.confidence([R_A])

        payload = run(scenario()).to_dict()
        parsed = json.loads(json.dumps(payload))
        assert parsed["status"] == "ok"
        assert parsed["confidences"]["R('a')"] == 4 / 7
