"""Subprocess smoke: the CI service step, run as a test.

Starts ``python -m repro serve`` the way CI does, pipes its ``--json``
snapshot through ``tools/check_service_snapshot.py``, and asserts both
halves of the contract: the service exits cleanly under a load burst and
the emitted snapshot satisfies the scrape schema.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.io import save_collection

from tests.conftest import make_example51_collection

REPO_ROOT = Path(__file__).resolve().parents[2]
CHECKER = REPO_ROOT / "tools" / "check_service_snapshot.py"


def run_cli(args, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        cwd=REPO_ROOT,
    )


@pytest.fixture
def collection_file(tmp_path):
    path = str(tmp_path / "example51.sources")
    save_collection(make_example51_collection(), path)
    return path


def test_serve_snapshot_passes_checker(collection_file):
    serve = run_cli(
        [
            "serve", collection_file, "--domain", "a,b,c,d1",
            "--requests", "30", "--batch", "8", "--churn", "10",
            "--fault-latency-ms", "1", "--json",
        ]
    )
    assert serve.returncode == 0, serve.stderr
    snapshot = json.loads(serve.stdout)
    assert snapshot["metrics"]["counters"]["requests_submitted"] == 30

    check = subprocess.run(
        [sys.executable, str(CHECKER)],
        input=serve.stdout,
        capture_output=True,
        text=True,
        timeout=60,
        cwd=REPO_ROOT,
    )
    assert check.returncode == 0, check.stderr
    assert "snapshot well-formed" in check.stdout


def test_checker_rejects_malformed_snapshot():
    broken = json.dumps({"registry": {}, "metrics": {}})
    check = subprocess.run(
        [sys.executable, str(CHECKER)],
        input=broken,
        capture_output=True,
        text=True,
        timeout=60,
        cwd=REPO_ROOT,
    )
    assert check.returncode == 1
    assert "malformed snapshot" in check.stderr


def test_checker_catches_vanished_requests(tmp_path):
    serve = run_cli(
        ["serve", str(tmp_path / "nope.sources"), "--domain", "a", "--json"]
    )
    assert serve.returncode == 2  # clean CLI error, no traceback
    assert "Traceback" not in serve.stderr

    # A snapshot whose counters don't balance must fail the checker.
    unbalanced = {
        "registry": {
            "version": 0, "sources": 1, "domain_size": 1,
            "retained_versions": [],
        },
        "metrics": {
            "counters": {"requests_submitted": 5, "responses_ok": 3},
            "gauges": {},
            "histograms": {},
        },
        "gateway": {"reads": 1},
        "tracing": {
            "spans_started": 0, "spans_dropped": 0, "recent_spans": 0,
        },
    }
    check = subprocess.run(
        [sys.executable, str(CHECKER)],
        input=json.dumps(unbalanced),
        capture_output=True,
        text=True,
        timeout=60,
        cwd=REPO_ROOT,
    )
    assert check.returncode == 1
    assert "vanished" in check.stderr
