"""The fault-injection harness: latency, transient errors, staleness."""

import asyncio
import time

import pytest

from repro.service import (
    FaultInjector,
    FaultPolicy,
    SourceGateway,
    SourceRegistry,
    TransientSourceError,
)

from tests.conftest import make_example51_collection

DOMAIN = ["a", "b", "c", "d"]


def run(coroutine):
    return asyncio.run(coroutine)


class TestPolicyValidation:
    def test_defaults_are_all_off(self):
        policy = FaultPolicy()
        assert policy.latency == 0.0
        assert policy.error_rate == 0.0
        assert policy.stale_rate == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency": -0.1},
            {"error_rate": 1.5},
            {"error_rate": -0.1},
            {"stale_rate": 2.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)


class TestBaseGateway:
    def test_read_returns_snapshot_and_counts(self):
        registry = SourceRegistry(make_example51_collection(), DOMAIN)
        gateway = SourceGateway()
        snapshot = registry.snapshot()

        async def scenario():
            assert await gateway.read(snapshot) is snapshot
            assert await gateway.read(snapshot) is snapshot

        run(scenario())
        assert gateway.reads == 2


class TestErrorInjection:
    def test_error_rate_one_always_raises(self):
        registry = SourceRegistry(make_example51_collection(), DOMAIN)
        injector = FaultInjector(FaultPolicy(error_rate=1.0, seed=3))

        async def scenario():
            with pytest.raises(TransientSourceError, match="injected"):
                await injector.read(registry.snapshot())

        run(scenario())
        assert injector.errors_injected == 1

    def test_error_burst_recovers(self):
        registry = SourceRegistry(make_example51_collection(), DOMAIN)
        injector = FaultInjector(
            FaultPolicy(error_rate=1.0, error_burst=2, seed=3)
        )

        async def scenario():
            failures = 0
            for _ in range(5):
                try:
                    await injector.read(registry.snapshot())
                except TransientSourceError:
                    failures += 1
            return failures

        assert run(scenario()) == 2
        assert injector.errors_injected == 2

    def test_seed_makes_injection_deterministic(self):
        registry = SourceRegistry(make_example51_collection(), DOMAIN)

        def outcomes(seed):
            injector = FaultInjector(
                FaultPolicy(error_rate=0.5, seed=seed)
            )

            async def scenario():
                pattern = []
                for _ in range(16):
                    try:
                        await injector.read(registry.snapshot())
                        pattern.append("ok")
                    except TransientSourceError:
                        pattern.append("err")
                return pattern

            return run(scenario())

        assert outcomes(5) == outcomes(5)
        assert outcomes(5) != outcomes(6)


class TestLatency:
    def test_latency_delays_read(self):
        registry = SourceRegistry(make_example51_collection(), DOMAIN)
        injector = FaultInjector(FaultPolicy(latency=0.03))

        async def scenario():
            start = time.perf_counter()
            await injector.read(registry.snapshot())
            return time.perf_counter() - start

        assert run(scenario()) >= 0.025


class TestStaleness:
    def test_stale_read_serves_previous_version(self):
        registry = SourceRegistry(make_example51_collection(), DOMAIN)
        source = registry.snapshot().collection.by_name("S1")
        registry.update(source.with_bounds(soundness_bound=1))
        assert registry.version() == 1
        injector = FaultInjector(
            FaultPolicy(stale_rate=1.0, seed=0), registry=registry
        )

        async def scenario():
            return await injector.read(registry.snapshot())

        stale = run(scenario())
        assert stale.version == 0
        assert injector.stale_served == 1

    def test_stale_rate_without_history_is_identity(self):
        registry = SourceRegistry(make_example51_collection(), DOMAIN)
        injector = FaultInjector(
            FaultPolicy(stale_rate=1.0, seed=0), registry=registry
        )

        async def scenario():
            snapshot = registry.snapshot()
            assert await injector.read(snapshot) is snapshot

        run(scenario())
        assert injector.stale_served == 0
