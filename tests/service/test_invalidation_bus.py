"""One RegistryDiff, one bus call, every derived cache retired (regression).

Before the cache runtime, a registry mutation fanned out to three separate
invalidation call-sites: memo keys through ``invalidate``, statistics and
shard stores through ``discard_plan_statistics``, and nothing at all for
partitions or fragment tokens. These tests pin the unified contract: a
single mutation produces one tag set (:func:`invalidation_tags` plus
:meth:`retire_version_tags`) and one ``CacheRegistry.invalidate_tags``
call, after which *no* enrolled cache still holds an entry derived from
the retired version's fact sets.
"""

from __future__ import annotations

import asyncio

from repro.cache import cache_registry
from repro.confidence.engine.memo import shared_memo
from repro.model import fact
from repro.plan.statistics import cached_statistics
from repro.queries import identity_view, parse_rule
from repro.service import MediatorService, RequestStatus, SchedulerConfig
from repro.service.registry import invalidation_tags
from repro.shard.executor import _FRAGMENT_TOKENS, _token_entry
from repro.shard.partition import _PARTITIONS
from repro.sources import SourceDescriptor

from tests.conftest import make_example51_collection

DOMAIN = ["a", "b", "c", "d"]
QUERY = parse_rule("ans(x) <- R(x)")
R_A = fact("R", "a")


def run(coroutine):
    return asyncio.run(coroutine)


def extra_source():
    return SourceDescriptor(
        identity_view("V3", "R", 1), [fact("V3", "d")], "1/2", "1/2",
        name="S3",
    )


class TestSingleDiffClearsEverything:
    def test_one_mutation_retires_all_derived_entries(self):
        registry = cache_registry()

        async def scenario():
            async with MediatorService(
                make_example51_collection(), DOMAIN,
                config=SchedulerConfig(shards=2),
            ) as service:
                # Warm every derived layer from the version-0 snapshot.
                response = await service.answer(QUERY)
                assert response.status is RequestStatus.OK
                await service.confidence([R_A])
                old = service.registry.snapshot()
                core = service.scheduler._certain_dbs[
                    (old.version, frozenset())
                ].core()
                executor = service.scheduler._shard_executors[
                    (old.version, frozenset())
                ]
                fragments = executor.sharded.built_fragments()
                partition_key = (executor.sharded.union_core(),
                                 executor.sharded.spec)
                # Serial execution never mints tokens; mint them here the
                # way the process path would, so the bus has work to do.
                for f in fragments:
                    _token_entry(f)
                # The warm state this test is about: every layer primed.
                assert cached_statistics(core) is not None
                assert fragments and all(
                    f in _FRAGMENT_TOKENS for f in fragments
                )
                assert _PARTITIONS.peek(partition_key) is not None
                before_invalidations = registry.stats()["invalidations"]

                diff = service.register_source(extra_source())

                memo_tags = invalidation_tags(old, diff)
                removed = service.scheduler.metrics.counter(
                    "memo_entries_invalidated"
                ).value
                return (
                    core, fragments, partition_key, memo_tags,
                    before_invalidations, removed,
                )

        core, fragments, partition_key, memo_tags, before, removed = run(
            scenario()
        )

        # Memo entries for the retired spec: gone, via the same bus call —
        # and there were warm entries to remove (non-vacuous).
        assert memo_tags
        assert removed >= 1
        assert not any(key in shared_memo() for key in memo_tags)
        # Fact-set-derived entries for the retired certain core: gone.
        assert cached_statistics(core) is None
        assert not any(f in _FRAGMENT_TOKENS for f in fragments)
        for f in fragments:
            assert cached_statistics(f) is None
        # Partition layouts tagged with the retired cores: gone.
        assert _PARTITIONS.peek(partition_key) is None
        assert _PARTITIONS.invalidate_tags([core, *fragments]) == 0
        # And it was the bus that did it, not per-cache clears.
        assert cache_registry().stats()["invalidations"] > before

    def test_unrelated_entries_survive_the_diff(self):
        async def scenario():
            async with MediatorService(
                make_example51_collection(), DOMAIN,
                config=SchedulerConfig(shards=2),
            ) as service:
                first = await service.answer(QUERY)
                service.register_source(extra_source())
                # Re-warm under version 1: the new snapshot's derived state
                # is built fresh and must be found warm afterwards — the
                # diff retires only the *old* version's entries.
                second = await service.answer(QUERY)
                new = service.registry.snapshot()
                executor = service.scheduler._shard_executors[
                    (new.version, frozenset())
                ]
                partition_key = (executor.sharded.union_core(),
                                 executor.sharded.spec)
                assert first.status is second.status is RequestStatus.OK
                return partition_key

        partition_key = run(scenario())
        # fresh snapshot's partition layout untouched by the earlier diff
        assert _PARTITIONS.peek(partition_key) is not None

    def test_bus_counts_surface_in_service_stats(self):
        async def scenario():
            async with MediatorService(
                make_example51_collection(), DOMAIN,
                config=SchedulerConfig(shards=2),
            ) as service:
                await service.answer(QUERY)
                await service.confidence([R_A])
                service.register_source(extra_source())
                return service.stats()

        stats = run(scenario())
        counters = stats["metrics"]["counters"]
        assert counters.get("registry_mutations", 0) == 1
        assert counters.get("cache_entries_invalidated", 0) >= 1
        # The unified tree carries the same story per cache.
        leaves = stats["cache"]["caches"]
        total = sum(leaf["invalidations"] for leaf in leaves.values())
        assert stats["cache"]["invalidations"] == total >= 1
