"""Shard wiring in the mediator service: answers, metrics, invalidation."""

import asyncio

from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.service import (
    MediatorService,
    RequestStatus,
    SchedulerConfig,
    ServiceResponse,
    SourceRegistry,
    RequestScheduler,
)
from repro.shard import canonical_order, reset_shard_stats

from tests.conftest import make_example51_collection
from tests.service.test_scheduler import make_scheduler

DOMAIN = ["a", "b", "c", "d"]
QUERY = parse_rule("ans(x) <- R(x)")


def run(coroutine):
    return asyncio.run(coroutine)


def answer_with(config):
    scheduler = make_scheduler(config)

    async def scenario():
        await scheduler.start()
        future = await scheduler.submit([], query=QUERY)
        response = await future
        await scheduler.stop()
        return scheduler, response

    return run(scenario())


class TestShardedQueryPath:
    def test_sharded_answers_match_single_store(self):
        _s, single = answer_with(SchedulerConfig())
        _s, sharded = answer_with(SchedulerConfig(shards=3))
        assert single.status is RequestStatus.OK
        assert sharded.status is RequestStatus.OK
        assert sharded.answers == single.answers

    def test_answers_arrive_in_canonical_order(self):
        _s, response = answer_with(SchedulerConfig(shards=2))
        assert response.answers == canonical_order(response.answers)
        # the certain base of Example 5.1 is empty at confidence 1, so the
        # lower bound may legitimately be empty; the ordering contract is
        # what this test pins, not the extension
        assert isinstance(response.answers, tuple)

    def test_shard_metrics_recorded(self):
        reset_shard_stats()
        scheduler, response = answer_with(SchedulerConfig(shards=4))
        assert response.status is RequestStatus.OK
        assert scheduler.metrics.counter("shard_queries").value >= 1
        assert scheduler.metrics.counter("shard_fragments_executed").value >= 1

    def test_single_store_config_builds_no_executor(self):
        scheduler, response = answer_with(SchedulerConfig())
        assert response.status is RequestStatus.OK
        assert scheduler._shard_executors == {}


class TestInvalidation:
    def test_superseded_shard_stores_are_retired(self):
        scheduler = make_scheduler(SchedulerConfig(shards=2))

        async def scenario():
            await scheduler.start()
            response = await (await scheduler.submit([], query=QUERY))
            assert response.status is RequestStatus.OK
            version = scheduler.registry.snapshot().version
            assert list(scheduler._shard_executors) == [(version, frozenset())]
            scheduler.discard_plan_statistics(version + 1)
            await scheduler.stop()
            return version

        run(scenario())
        assert scheduler._shard_executors == {}
        assert scheduler.metrics.counter("shard_stores_discarded").value == 1

    def test_registry_mutation_retires_through_the_service(self):
        async def scenario():
            async with MediatorService(
                make_example51_collection(), DOMAIN,
                config=SchedulerConfig(shards=2),
            ) as service:
                first = await service.answer(QUERY)
                assert first.status is RequestStatus.OK
                service.register_source(_extra_source())
                second = await service.answer(QUERY)
                assert second.status is RequestStatus.OK
                return service.stats(), first, second

        stats, first, second = run(scenario())
        assert stats["shard"]["shards"] == 2
        counters = stats["metrics"]["counters"]
        assert counters.get("shard_stores_discarded", 0) >= 1
        # post-mutation answers still canonical and sound
        assert second.answers == canonical_order(second.answers)


def _extra_source():
    from repro.sources import SourceDescriptor

    return SourceDescriptor(
        identity_view("V3", "R", 1), [fact("V3", "d")], "1/2", "1/2",
        name="S3",
    )


class TestResponseRendering:
    def test_to_dict_orders_answers_canonically(self):
        response = ServiceResponse(
            request_id=1,
            status=RequestStatus.OK,
            answers=(fact("ans", 2), fact("ans", 1), fact("ans", 3)),
        )
        assert ServiceResponse.to_dict(response)["answers"] == [
            "ans(1)", "ans(2)", "ans(3)",
        ]
