"""Versioned registry: copy-on-write snapshots, diffs, memo invalidation."""

import pytest

from repro.exceptions import SourceError
from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceDescriptor
from repro.confidence.engine import ConfidenceEngine, LRUMemo
from repro.service import SourceRegistry, diff_snapshots, invalidate

from tests.conftest import make_example51_collection

DOMAIN = ["a", "b", "c", "d"]


def make_registry() -> SourceRegistry:
    return SourceRegistry(make_example51_collection(), DOMAIN)


def s3(element: str = "c") -> SourceDescriptor:
    return SourceDescriptor(
        identity_view("V3", "R", 1), [fact("V3", element)], "1/2", 1, name="S3"
    )


class TestSnapshots:
    def test_initial_version_zero(self):
        registry = make_registry()
        snapshot = registry.snapshot()
        assert snapshot.version == 0
        assert len(snapshot.collection) == 2
        assert registry.version() == 0

    def test_register_bumps_version_and_preserves_old_snapshot(self):
        registry = make_registry()
        old = registry.snapshot()
        new, diff = registry.register(s3())
        assert new.version == 1
        assert diff.new_version == 1
        # Copy-on-write: the old snapshot still sees two sources.
        assert len(old.collection) == 2
        assert len(new.collection) == 3
        assert registry.snapshot() is new

    def test_register_duplicate_name_rejected(self):
        registry = make_registry()
        with pytest.raises(SourceError, match="already registered"):
            registry.register(
                SourceDescriptor(
                    identity_view("V9", "R", 1), [fact("V9", "a")], 1, 1,
                    name="S1",
                )
            )

    def test_update_replaces_in_place(self):
        registry = make_registry()
        original = registry.snapshot().collection.by_name("S1")
        registry.update(original.with_bounds(soundness_bound=1))
        updated = registry.snapshot().collection.by_name("S1")
        assert updated.soundness_bound == 1
        assert registry.version() == 1

    def test_update_unknown_name_rejected(self):
        registry = make_registry()
        with pytest.raises(SourceError, match="no source named"):
            registry.update(s3())

    def test_deregister(self):
        registry = make_registry()
        registry.deregister("S1")
        assert len(registry.snapshot().collection) == 1
        with pytest.raises(SourceError):
            registry.deregister("S1")

    def test_history_window_bounded(self):
        registry = SourceRegistry(
            make_example51_collection(), DOMAIN, history=3
        )
        for _ in range(5):
            source = registry.snapshot().collection.by_name("S1")
            registry.update(source.with_bounds(soundness_bound="1/2"))
        versions = registry.history_versions()
        assert len(versions) == 3
        assert versions[-1] == registry.version() == 5
        assert registry.past_snapshot(0) is None
        assert registry.past_snapshot(versions[0]) is not None

    def test_covered_facts(self):
        snapshot = make_registry().snapshot()
        covered = {str(f) for f in snapshot.covered_facts()}
        assert covered == {"R('a')", "R('b')", "R('c')"}


class TestDiffs:
    def test_update_touches_only_that_sources_blocks(self):
        registry = make_registry()
        old = registry.snapshot()
        # Example 5.1 blocks: {a}@S1, {b}@S1∩S2, {c}@S2 — updating S2
        # touches the b-block and the c-block, not the a-block.
        _new, diff = registry.update(
            old.collection.by_name("S2").with_bounds(soundness_bound=1)
        )
        assert not diff.full
        instance = old.instance()
        touched_facts = {
            str(f)
            for j in diff.touched_blocks
            for f in instance.blocks[j].facts
        }
        assert touched_facts == {"R('b')", "R('c')"}

    def test_register_disjoint_source_touches_nothing_old(self):
        registry = make_registry()
        _new, diff = registry.register(
            SourceDescriptor(
                identity_view("V4", "R", 1), [fact("V4", "d")], "1/2", 1,
                name="S4",
            )
        )
        # The new source claims only d, previously anonymous: no old
        # block's membership or signature changed.
        assert not diff.full
        assert diff.touched_blocks == ()

    def test_register_overlapping_source_touches_shared_blocks(self):
        registry = make_registry()
        old = registry.snapshot()
        _new, diff = registry.register(s3("a"))  # S3 claims a
        instance = old.instance()
        touched_facts = {
            str(f)
            for j in diff.touched_blocks
            for f in instance.blocks[j].facts
        }
        assert touched_facts == {"R('a')"}

    def test_domain_change_is_full(self):
        registry = make_registry()
        _new, diff = registry.set_domain(["a", "b", "c", "d", "e"])
        assert diff.full

    def test_diff_against_empty_registry_is_full(self):
        registry = SourceRegistry((), DOMAIN)
        _new, diff = registry.register(s3())
        assert diff.full


class TestInvalidation:
    def test_invalidate_discards_touched_block_keys(self):
        registry = make_registry()
        old = registry.snapshot()
        memo = LRUMemo(64)
        with ConfidenceEngine(old.instance(), memo=memo) as engine:
            engine.confidences()  # populate: denominator + 3 block keys
        populated = len(memo)
        assert populated >= 2
        _new, diff = registry.update(
            old.collection.by_name("S2").with_bounds(soundness_bound=1)
        )
        removed = invalidate(memo, old, diff)
        # Denominator + the two S2 blocks go; the a-block entry stays.
        assert removed == 3
        assert len(memo) == populated - removed

    def test_full_diff_discards_everything_planned(self):
        registry = make_registry()
        old = registry.snapshot()
        memo = LRUMemo(64)
        with ConfidenceEngine(old.instance(), memo=memo) as engine:
            engine.confidences()
        populated = len(memo)
        _new, diff = registry.set_domain(["a", "b", "c", "d", "e"])
        removed = invalidate(memo, old, diff)
        assert removed == populated
        assert len(memo) == 0

    def test_invalidate_empty_old_collection_is_noop(self):
        registry = SourceRegistry((), DOMAIN)
        old = registry.snapshot()
        memo = LRUMemo(8)
        _new, diff = registry.register(s3())
        assert invalidate(memo, old, diff) == 0

    def test_untouched_entries_still_hit_after_unrelated_mutation(self):
        # Asymmetric bounds so S1's and S2's singleton blocks do NOT share
        # a canonical key (in Example 5.1 proper they are alpha-equivalent
        # and legitimately share one cache line).
        from repro.sources import SourceCollection

        collection = SourceCollection([
            SourceDescriptor(
                identity_view("V1", "R", 1),
                [fact("V1", "a"), fact("V1", "b")], "1/2", "1/2", name="S1",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "b"), fact("V2", "c")], "1/2", 1, name="S2",
            ),
        ])
        registry = SourceRegistry(collection, DOMAIN)
        old = registry.snapshot()
        memo = LRUMemo(64)
        with ConfidenceEngine(old.instance(), memo=memo) as engine:
            engine.confidences()
        _new, diff = registry.update(
            old.collection.by_name("S2").with_bounds(completeness_bound=1)
        )
        invalidate(memo, old, diff)
        survivors = len(memo)
        assert survivors >= 1  # the a-block key survived
        # Recomputing the *old* snapshot hits the surviving entries.
        with ConfidenceEngine(old.instance(), memo=memo) as engine:
            engine.confidences()
            assert engine.stats.tasks_memoized >= survivors


class TestAbortedMutationSymbolRollback:
    """An aborted mutation must not leak symbol-table IDs (satellite of the
    interned-core refactor): diffing interns the new collection's constants
    and facts, and if the mutation raises before the head swap, the registry
    rolls the process-wide table back to its pre-mutation snapshot.
    """

    def bad_source(self) -> SourceDescriptor:
        # Extension constants far outside the registry domain: the diff's
        # decomposition (new.instance()) raises SourceError mid-mutation,
        # after those constants were interned.
        return SourceDescriptor(
            identity_view("V2", "R", 1),
            [fact("V2", "leaked-xyz"), fact("V2", "leaked-uvw")],
            "1/2",
            1,
            name="S2",
        )

    def test_aborted_update_rolls_back_interned_ids(self):
        from repro.core import global_table

        registry = make_registry()
        registry.snapshot().instance()  # decompose v0 up-front
        table = global_table()
        before = table.snapshot()
        with pytest.raises(SourceError, match="outside the domain"):
            registry.update(self.bad_source())
        assert table.snapshot() == before
        assert table.find_constant("leaked-xyz") is None
        assert table.find_constant("leaked-uvw") is None
        # The head never swapped and the registry still works.
        assert registry.version() == 0
        new, _diff = registry.register(s3())
        assert new.version == 1

    def test_aborted_update_drops_old_caches_built_mid_mutation(self):
        from repro.core import global_table

        registry = make_registry()
        # Do NOT touch old.instance() first: the old decomposition is built
        # (and its symbols interned) inside the failed mutation itself, so
        # keeping it would retain rolled-back IDs.
        old = registry.snapshot()
        assert old._instance is None
        before = global_table().snapshot()
        with pytest.raises(SourceError, match="outside the domain"):
            registry.update(self.bad_source())
        assert old._instance is None
        assert global_table().snapshot() == before
        # Rebuilding on demand re-interns cleanly.
        covered = {str(f) for f in old.covered_facts()}
        assert covered == {"R('a')", "R('b')", "R('c')"}

    def test_interning_threads_survive_concurrent_aborts(self):
        import threading

        from repro.core import global_table

        registry = make_registry()
        registry.snapshot().instance()
        table = global_table()
        stop = threading.Event()
        errors = []

        def intern_loop():
            i = 0
            while not stop.is_set():
                value = f"concurrent-{i % 20}"
                cid = table.constant(value)
                if table.constant_value(cid) != value:
                    errors.append("interned ID remapped by rollback")
                i += 1

        thread = threading.Thread(target=intern_loop)
        thread.start()
        try:
            for _ in range(50):
                with pytest.raises(SourceError):
                    registry.update(self.bad_source())
        finally:
            stop.set()
            thread.join()
        assert errors == []
        assert registry.version() == 0


def test_diff_snapshots_repr_smoke():
    registry = make_registry()
    old = registry.snapshot()
    new, diff = registry.register(s3())
    assert "v0->v1" in repr(diff)
    assert "RegistrySnapshot(v1" in repr(new)
    same = diff_snapshots(old, new, frozenset(["S3"]))
    assert same.touched_blocks == diff.touched_blocks
