"""Trace spans: timing, parentage, the bounded ring, error tagging."""

import pytest

from repro.service.tracing import Tracer


def test_span_records_duration_and_attributes():
    tracer = Tracer()
    with tracer.span("work", request_id=9) as span:
        span.attributes["extra"] = True
    exported = tracer.export()
    assert len(exported) == 1
    record = exported[0]
    assert record["name"] == "work"
    assert record["duration"] >= 0
    assert record["attributes"] == {"request_id": 9, "extra": True}
    assert record["parent_id"] is None


def test_child_spans_carry_parent_id():
    tracer = Tracer()
    with tracer.span("batch") as parent:
        with parent.child("engine") as child:
            pass
    by_name = {s["name"]: s for s in tracer.export()}
    assert by_name["engine"]["parent_id"] == parent.span_id
    assert by_name["batch"]["span_id"] == parent.span_id
    # Children finish before parents, so the ring holds engine first.
    assert [s["name"] for s in tracer.export()] == ["engine", "batch"]
    assert child.duration <= parent.duration


def test_ring_drops_oldest():
    tracer = Tracer(limit=3)
    for index in range(5):
        with tracer.span(f"s{index}"):
            pass
    names = [s["name"] for s in tracer.export()]
    assert names == ["s2", "s3", "s4"]
    assert tracer.spans_started == 5
    assert tracer.spans_dropped == 2


def test_exception_tags_span_and_propagates():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    record = tracer.export()[0]
    assert record["attributes"]["error"] == "RuntimeError"


def test_durations_helper():
    tracer = Tracer()
    for _ in range(3):
        with tracer.span("engine"):
            pass
    with tracer.span("other"):
        pass
    assert len(tracer.durations("engine")) == 3
