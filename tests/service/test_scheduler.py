"""Admission, micro-batching, deadlines, retry/backoff, shutdown."""

import asyncio
from fractions import Fraction

import pytest

from repro.model import fact
from repro.service import (
    FaultInjector,
    FaultPolicy,
    RequestScheduler,
    RequestStatus,
    SchedulerConfig,
    SourceRegistry,
)

from tests.conftest import make_example51_collection

DOMAIN = ["a", "b", "c", "d"]
R_A, R_B, R_C = fact("R", "a"), fact("R", "b"), fact("R", "c")


def make_scheduler(config=None, policy=None, registry=None):
    registry = registry or SourceRegistry(make_example51_collection(), DOMAIN)
    gateway = None
    if policy is not None:
        gateway = FaultInjector(policy, registry=registry)
    return RequestScheduler(registry, gateway=gateway, config=config)


def run(coroutine):
    return asyncio.run(coroutine)


class TestBatching:
    def test_burst_shares_one_engine_call(self):
        scheduler = make_scheduler(SchedulerConfig(max_batch=8))

        async def scenario():
            await scheduler.start()
            futures = [
                await scheduler.submit([R_A, R_B]) for _ in range(8)
            ]
            responses = [await f for f in futures]
            await scheduler.stop()
            return responses

        responses = run(scenario())
        assert all(r.status is RequestStatus.OK for r in responses)
        assert all(r.batch_size == 8 for r in responses)
        assert scheduler.metrics.counter("engine_calls").value == 1
        # Example 5.1 at m=1: conf(a) = 4/7, conf(b) = 6/7.
        assert responses[0].confidences[R_A] == Fraction(4, 7)
        assert responses[0].confidences[R_B] == Fraction(6, 7)

    def test_batch_size_capped(self):
        scheduler = make_scheduler(
            SchedulerConfig(max_batch=3, batch_window=0.0)
        )

        async def scenario():
            await scheduler.start()
            futures = [await scheduler.submit([R_A]) for _ in range(7)]
            responses = [await f for f in futures]
            await scheduler.stop()
            return responses

        responses = run(scenario())
        assert all(r.ok for r in responses)
        assert max(r.batch_size for r in responses) <= 3

    def test_per_request_dispatch_when_batching_disabled(self):
        scheduler = make_scheduler(SchedulerConfig(max_batch=1))

        async def scenario():
            await scheduler.start()
            futures = [await scheduler.submit([R_A]) for _ in range(4)]
            responses = [await f for f in futures]
            await scheduler.stop()
            return responses

        responses = run(scenario())
        assert all(r.batch_size == 1 for r in responses)
        assert scheduler.metrics.counter("engine_calls").value == 4

    def test_mixed_versions_split_batches(self):
        registry = SourceRegistry(make_example51_collection(), DOMAIN)
        scheduler = make_scheduler(
            SchedulerConfig(max_batch=16), registry=registry
        )

        async def scenario():
            await scheduler.start()
            first = [await scheduler.submit([R_A]) for _ in range(2)]
            source = registry.snapshot().collection.by_name("S2")
            registry.update(source.with_bounds(soundness_bound=1))
            second = [await scheduler.submit([R_A]) for _ in range(2)]
            responses = [await f for f in first + second]
            await scheduler.stop()
            return responses

        responses = run(scenario())
        assert [r.snapshot_version for r in responses] == [0, 0, 1, 1]
        assert scheduler.metrics.counter("engine_calls").value == 2
        # Raising S2's soundness floor changes the answer — proof the two
        # batches really computed against different snapshots.
        assert responses[0].confidences[R_A] != responses[2].confidences[R_A]


class TestAdmission:
    def test_queue_overflow_rejected_with_reason(self):
        scheduler = make_scheduler(SchedulerConfig(max_queue=4))

        async def scenario():
            await scheduler.start()
            futures = [await scheduler.submit([R_A]) for _ in range(10)]
            responses = [await f for f in futures]
            await scheduler.stop()
            return responses

        responses = run(scenario())
        rejected = [r for r in responses if r.status is RequestStatus.REJECTED]
        served = [r for r in responses if r.ok]
        assert len(rejected) == 6
        assert len(served) == 4
        assert all("queue full" in r.reason for r in rejected)

    def test_empty_fact_list_rejected(self):
        scheduler = make_scheduler()

        async def scenario():
            await scheduler.start()
            response = await scheduler.request([])
            await scheduler.stop()
            return response

        response = run(scenario())
        assert response.status is RequestStatus.REJECTED
        assert response.reason == "empty fact list"

    def test_submit_before_start_raises(self):
        scheduler = make_scheduler()

        async def scenario():
            await scheduler.submit([R_A])

        with pytest.raises(Exception, match="not started"):
            run(scenario())


class TestDeadlines:
    def test_expired_in_queue_times_out_without_compute(self):
        scheduler = make_scheduler(
            SchedulerConfig(max_batch=1),
            policy=FaultPolicy(latency=0.02),
        )

        async def scenario():
            await scheduler.start()
            # First request occupies the worker for ~20ms; the rest carry
            # sub-millisecond deadlines and expire while queued.
            first = await scheduler.submit([R_A], timeout=5.0)
            rest = [
                await scheduler.submit([R_B], timeout=0.001)
                for _ in range(3)
            ]
            responses = [await f for f in [first] + rest]
            await scheduler.stop()
            return responses

        responses = run(scenario())
        assert responses[0].ok
        for response in responses[1:]:
            assert response.status is RequestStatus.TIMEOUT
            assert "queued" in response.reason
            assert response.confidences == {}
        # Expired requests were answered without spending engine work:
        # only the first request's batch computed.
        assert scheduler.metrics.counter("engine_calls").value == 1

    def test_deadline_crossed_during_computation(self):
        scheduler = make_scheduler(
            SchedulerConfig(max_batch=1),
            policy=FaultPolicy(latency=0.03),
        )

        async def scenario():
            await scheduler.start()
            response = await scheduler.request([R_A], timeout=0.005)
            await scheduler.stop()
            return response

        response = run(scenario())
        assert response.status is RequestStatus.TIMEOUT
        assert "during computation" in response.reason
        assert response.confidences == {}


class TestRetries:
    def test_transient_errors_retried_until_success(self):
        scheduler = make_scheduler(
            SchedulerConfig(
                max_attempts=3, backoff_base=0.001, backoff_cap=0.002
            ),
            policy=FaultPolicy(error_rate=1.0, error_burst=2, seed=1),
        )

        async def scenario():
            await scheduler.start()
            response = await scheduler.request([R_A])
            await scheduler.stop()
            return response

        response = run(scenario())
        assert response.ok
        assert response.attempts == 3
        assert scheduler.metrics.counter("source_read_retries").value == 2

    def test_exhausted_retries_fail_explicitly(self):
        scheduler = make_scheduler(
            SchedulerConfig(
                max_attempts=2, backoff_base=0.001, backoff_cap=0.002
            ),
            policy=FaultPolicy(error_rate=1.0, seed=1),
        )

        async def scenario():
            await scheduler.start()
            response = await scheduler.request([R_A])
            await scheduler.stop()
            return response

        response = run(scenario())
        assert response.status is RequestStatus.ERROR
        assert "injected transient failure" in response.reason
        assert scheduler.metrics.counter("responses_error").value == 1

    def test_backoff_schedule(self):
        config = SchedulerConfig(backoff_base=0.01, backoff_cap=0.25)
        assert config.backoff(1) == 0.01
        assert config.backoff(2) == 0.02
        assert config.backoff(3) == 0.04
        assert config.backoff(10) == 0.25  # capped


class TestShutdown:
    def test_stop_rejects_unserved_requests(self):
        scheduler = make_scheduler(
            SchedulerConfig(max_batch=1),
            policy=FaultPolicy(latency=0.05),
        )

        async def scenario():
            await scheduler.start()
            futures = [await scheduler.submit([R_A]) for _ in range(5)]
            await asyncio.sleep(0.01)  # worker now mid-read on request 1
            await scheduler.stop()
            return [await f for f in futures]

        responses = run(scenario())
        assert all(
            r.status is RequestStatus.REJECTED and "stopped" in r.reason
            for r in responses
        )

    def test_stop_is_idempotent(self):
        scheduler = make_scheduler()

        async def scenario():
            await scheduler.start()
            await scheduler.stop()
            await scheduler.stop()

        run(scenario())


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"max_queue": 0}, {"max_batch": 0}, {"max_attempts": 0}],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SchedulerConfig(**kwargs)
