"""Counters, gauges, percentile histograms, and the snapshot shape."""

import json

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_tracks_high_water(self):
        gauge = Gauge()
        gauge.set(4)
        gauge.inc(3)
        gauge.dec(6)
        assert gauge.value == 1
        assert gauge.high_water == 7


class TestHistogram:
    def test_exact_aggregates(self):
        histogram = Histogram()
        for value in [3.0, 1.0, 2.0]:
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["sum"] == 6.0
        assert snapshot["min"] == 1.0
        assert snapshot["max"] == 3.0
        assert snapshot["mean"] == 2.0

    def test_percentiles_on_known_data(self):
        histogram = Histogram()
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.percentile(0.50) in (50.0, 51.0)
        assert histogram.percentile(0.95) in (95.0, 96.0)
        assert histogram.percentile(0.99) in (99.0, 100.0)
        assert histogram.percentile(1.0) == 100.0

    def test_empty_percentile_is_none(self):
        assert Histogram().percentile(0.5) is None
        assert Histogram().snapshot()["p95"] is None

    def test_reservoir_bounded_but_count_exact(self):
        histogram = Histogram(capacity=128, seed=1)
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.count == 10_000
        assert len(histogram._reservoir) == 128
        # Percentiles stay sane estimates of the uniform stream.
        p50 = histogram.percentile(0.50)
        assert 3_000 <= p50 <= 7_000

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Histogram(capacity=0)


class TestMetricsRegistry:
    def test_instruments_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc()
        registry.gauge("depth").set(3)
        registry.histogram("latency").observe(0.5)
        assert registry.counter("requests") is registry.counter("requests")
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"requests": 1}
        assert snapshot["gauges"]["depth"]["value"] == 3
        assert snapshot["histograms"]["latency"]["count"] == 1

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("h").observe(1.5)
        text = json.dumps(registry.snapshot(), sort_keys=True)
        parsed = json.loads(text)
        assert parsed["counters"]["a"] == 2
        assert parsed["histograms"]["h"]["p50"] == 1.5
