"""Broken-pool recovery: respawn and replay instead of permanent serial.

A worker pool whose processes are OOM-killed mid-batch used to drop the
executor into serial execution for the rest of its life. Now the pool is
respawned, the batch is replayed with full payloads (the fresh workers'
fragment caches are empty), and only a *second* consecutive failure falls
back to serial — for that query only.
"""

from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.confidence.engine.executors import ProcessExecutor
from repro.model import GlobalDatabase, fact
from repro.plan import evaluate as plan_evaluate
from repro.queries import parse_rule
from repro.shard import PartitionSpec, ShardExecutor, ShardedDatabase
from repro.shard.executor import clear_worker_stores

QUERY = parse_rule("V(x, y) <- E(x, y)")


def make_db():
    return GlobalDatabase([fact("E", i % 5, (i * 3) % 7) for i in range(30)])


def executor_with(pool, shards=3):
    return ShardExecutor(
        ShardedDatabase(make_db(), PartitionSpec(shards)),
        workers=2,
        pool=pool,
    )


class FlakyPool:
    """In-process stand-in for a worker pool that dies *fail_times* times.

    ``map`` delegates to serial calls once the failures are spent — the
    worker function and its fragment cache are module-global, so the
    executor's token/payload protocol exercises for real.
    """

    def __init__(self, fail_times=1):
        self.fail_times = fail_times
        self.maps = 0
        self.respawns = 0
        self.batches = []  # tasks seen by each successful map

    def map(self, fn, items):
        self.maps += 1
        if self.fail_times > 0:
            self.fail_times -= 1
            raise BrokenProcessPool("workers died mid-batch")
        items = list(items)
        self.batches.append(items)
        return [fn(item) for item in items]

    def respawn(self):
        self.respawns += 1
        clear_worker_stores()  # fresh workers cache nothing


@pytest.fixture(autouse=True)
def _clean_worker_stores():
    clear_worker_stores()
    yield
    clear_worker_stores()


def test_broken_pool_respawns_and_replays_the_batch():
    pool = FlakyPool(fail_times=1)
    executor = executor_with(pool)
    expected = plan_evaluate(QUERY, make_db())

    assert executor.answer(QUERY) == expected
    assert pool.respawns == 1
    assert executor.counters["pool_respawns"] == 1
    assert "pool_serial_fallbacks" not in executor.counters
    # The replay shipped full payloads: fresh workers know no tokens.
    replayed = pool.batches[0]
    assert all(payload is not None for _token, payload, _q in replayed)


def test_double_failure_falls_back_to_serial_for_that_query_only():
    pool = FlakyPool(fail_times=2)
    executor = executor_with(pool)
    expected = plan_evaluate(QUERY, make_db())

    # Both map attempts die -> this query is answered serially...
    assert executor.answer(QUERY) == expected
    assert executor.counters["pool_serial_fallbacks"] == 1
    assert pool.respawns == 1

    # ...but the pool stays eligible: the next query goes back to it.
    assert executor.answer(QUERY) == expected
    assert executor.counters["process_queries"] == 1
    assert executor.counters.get("pool_serial_fallbacks") == 1


def test_sent_tokens_reset_on_respawn():
    pool = FlakyPool(fail_times=0)
    executor = executor_with(pool)
    executor.answer(QUERY)
    warm = set(pool.shard_sent_tokens)
    assert warm  # steady state: tokens cached on the pool object

    pool.fail_times = 1
    executor.answer(QUERY)
    # The respawned pool restarted its token set from scratch and re-earned
    # the same tokens by re-shipping payloads.
    assert set(pool.shard_sent_tokens) == warm
    assert all(
        payload is not None for _t, payload, _q in pool.batches[-1]
    )


class RespawnlessPool:
    """A pool without ``respawn``: the executor must rebuild and own it."""

    def __init__(self):
        self.closed = False

    def map(self, fn, items):
        raise BrokenProcessPool("dead on arrival")

    def close(self):
        self.closed = True


def test_pool_without_respawn_is_rebuilt_via_factory(monkeypatch):
    import repro.confidence.engine.executors as executors

    replacement = FlakyPool(fail_times=0)
    monkeypatch.setattr(
        executors, "make_executor", lambda workers, mode: replacement
    )
    broken = RespawnlessPool()
    executor = executor_with(broken)
    expected = plan_evaluate(QUERY, make_db())

    assert executor.answer(QUERY) == expected
    assert broken.closed  # old pool torn down
    assert executor._pool is replacement
    assert executor._owns_pool  # replacement is ours to close
    assert executor.counters["pool_respawns"] == 1


def test_process_executor_respawn_resets_state():
    executor = ProcessExecutor(2)
    executor.degraded = True  # as if spawn failed once
    executor.respawn()
    assert executor.respawns == 1
    assert executor.degraded is False
    assert executor._pool is None


def test_process_executor_respawn_then_map_works():
    with ProcessExecutor(2) as executor:
        first = executor.map(len, [(1, 2), (3,)])
        executor.respawn()
        second = executor.map(len, [(1, 2), (3,)])
    assert first == second == [2, 1]
    assert executor.respawns == 1
