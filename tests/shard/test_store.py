"""ShardedDatabase: base shards, broadcast/repartition layouts, lifecycle."""

import pytest

from repro.exceptions import ModelError
from repro.model import GlobalDatabase, fact
from repro.shard import PartitionSpec, ShardedDatabase, stable_bucket


def make_db():
    return GlobalDatabase(
        [fact("E", i, i % 4) for i in range(24)]
        + [fact("F", i % 3, "t") for i in range(6)]
    )


def make_store(n=4, **kw):
    return ShardedDatabase(make_db(), PartitionSpec(n, **kw))


class TestBasics:
    def test_requires_spec(self):
        with pytest.raises(ModelError):
            ShardedDatabase(make_db(), 4)

    def test_union_core_is_the_database_core(self):
        store = make_store()
        assert store.union_core() is store.database.core()

    def test_shards_cover_and_are_cached(self):
        store = make_store(3)
        shards = store.shards()
        assert store.shards() is shards
        assert sum(store.shard_sizes()) == len(store.union_core())
        union = frozenset().union(*(s.ids() for s in shards))
        assert union == store.union_core().ids()

    def test_repr(self):
        assert "4 shards" in repr(make_store(4))


class TestBroadcast:
    def test_fragment_shape(self):
        store = make_store(4)
        table = store.union_core().table
        e_rid = table.relation("E")
        fragments = store.broadcast_fragments(e_rid)
        assert len(fragments) == 4
        big = store.union_core().by_relation(e_rid)
        rest = store.union_core().ids() - big
        for b, fragment in enumerate(fragments):
            # fragment b = big-relation slice of shard b + everything else
            assert fragment.ids() & rest == rest
            assert fragment.ids() & big == store.shards()[b].ids() & big
        # every big fact appears in exactly one fragment
        placed = [fragment.ids() & big for fragment in fragments]
        assert frozenset().union(*placed) == big
        assert sum(len(p) for p in placed) == len(big)

    def test_cached_per_relation(self):
        store = make_store(2)
        rid = store.union_core().table.relation("E")
        assert store.broadcast_fragments(rid) is store.broadcast_fragments(rid)


class TestRepartition:
    def test_rebucketed_on_listed_positions(self):
        store = make_store(4)
        table = store.union_core().table
        e_rid = table.relation("E")
        f_rid = table.relation("F")
        fragments = store.repartition_fragments({e_rid: (1,), f_rid: (0,)})
        assert len(fragments) == 4
        for fid in store.union_core().by_relation(e_rid):
            value = table.constant_value(table.fact_tuple(fid)[2])
            assert fid in fragments[stable_bucket(value, 4)]
        for fid in store.union_core().by_relation(f_rid):
            value = table.constant_value(table.fact_tuple(fid)[1])
            assert fid in fragments[stable_bucket(value, 4)]

    def test_unlisted_relations_are_dropped(self):
        store = make_store(3)
        table = store.union_core().table
        e_rid = table.relation("E")
        f_rid = table.relation("F")
        fragments = store.repartition_fragments({e_rid: (0,)})
        f_ids = store.union_core().by_relation(f_rid)
        for fragment in fragments:
            assert not (fragment.ids() & f_ids)

    def test_self_join_positions_duplicate(self):
        store = make_store(4)
        table = store.union_core().table
        e_rid = table.relation("E")
        fragments = store.repartition_fragments({e_rid: (0, 1)})
        for fid in store.union_core().by_relation(e_rid):
            t = table.fact_tuple(fid)
            for pos in (0, 1):
                value = table.constant_value(t[1 + pos])
                assert fid in fragments[stable_bucket(value, 4)]

    def test_cached_by_canonical_key(self):
        store = make_store(2)
        rid = store.union_core().table.relation("E")
        a = store.repartition_fragments({rid: (1, 0)})
        b = store.repartition_fragments({rid: (0, 1, 1)})
        assert a is b


class TestLifecycle:
    def test_built_fragments_tracks_materialization(self):
        store = make_store(3)
        assert store.built_fragments() == ()
        store.shards()
        assert len(store.built_fragments()) == 3
        rid = store.union_core().table.relation("E")
        store.broadcast_fragments(rid)
        assert len(store.built_fragments()) == 6
        store.repartition_fragments({rid: (0,)})
        assert len(store.built_fragments()) == 9

    def test_layout_counters(self):
        store = make_store(2)
        assert store.layout_counters() == {
            "shards": 2, "base_built": 0,
            "broadcast_layouts": 0, "repartition_layouts": 0,
        }
        store.shards()
        rid = store.union_core().table.relation("F")
        store.broadcast_fragments(rid)
        counters = store.layout_counters()
        assert counters["base_built"] == 2
        assert counters["broadcast_layouts"] == 1
