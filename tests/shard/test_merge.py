"""Merge layer: one canonical total order over answer atoms."""

from repro.model import fact
from repro.shard import (
    canonical_answer_key,
    canonical_order,
    merge_answer_sets,
    merge_ordered,
)


class StrA:
    """A value whose ``str`` collides with :class:`StrB`'s."""

    def __str__(self):
        return "clash"

    def __repr__(self):
        return "StrA()"

    def __eq__(self, other):
        return type(other) is StrA

    def __hash__(self):
        return 7


class StrB:
    def __str__(self):
        return "clash"

    def __repr__(self):
        return "StrB()"

    def __eq__(self, other):
        return type(other) is StrB

    def __hash__(self):
        return 7


class TestCanonicalOrder:
    def test_dedupes_and_sorts(self):
        out = canonical_order(
            [fact("R", 2), fact("R", 1), fact("R", 2), fact("Q", 9)]
        )
        assert [str(a) for a in out] == ["Q(9)", "R(1)", "R(2)"]

    def test_orders_by_relation_then_arity_then_args(self):
        out = canonical_order(
            [fact("R", 1, 2), fact("R", 1), fact("R", 1, 1)]
        )
        assert [str(a) for a in out] == ["R(1)", "R(1, 1)", "R(1, 2)"]

    def test_total_where_key_str_is_not(self):
        # str(fact) renders both as R(clash): sorted(key=str) leaves their
        # relative order to set iteration order. The canonical key sees the
        # value types and fixes it.
        answers = {fact("R", StrA()), fact("R", StrB())}
        first = canonical_order(answers)
        assert len({str(a) for a in first}) == 1  # str really does collide
        for _ in range(20):
            assert canonical_order(set(answers)) == first
        keys = [canonical_answer_key(a) for a in first]
        assert keys == sorted(keys) and keys[0] != keys[1]

    def test_mixed_types_do_not_raise(self):
        # int < str comparison would TypeError under a naive sort.
        out = canonical_order([fact("R", "1"), fact("R", 1)])
        assert len(out) == 2


class TestMerge:
    def test_union_with_overlap(self):
        parts = [
            [fact("R", 1), fact("R", 2)],
            [fact("R", 2), fact("R", 3)],
            [],
        ]
        assert merge_answer_sets(parts) == frozenset(
            {fact("R", 1), fact("R", 2), fact("R", 3)}
        )

    def test_merge_ordered(self):
        parts = [[fact("R", 3)], [fact("R", 1)], [fact("R", 2)]]
        assert [str(a) for a in merge_ordered(parts)] == [
            "R(1)", "R(2)", "R(3)",
        ]

    def test_empty(self):
        assert merge_answer_sets([]) == frozenset()
        assert merge_ordered([[], []]) == ()
