"""Scatter-gather execution: equivalence, process path, counters."""

import pytest

from repro.confidence.engine.executors import make_executor
from repro.model import GlobalDatabase, fact
from repro.plan import evaluate as plan_evaluate
from repro.queries import parse_rule
from repro.shard import (
    PartitionSpec,
    ShardExecutor,
    ShardedDatabase,
    canonical_order,
    evaluate_sharded,
    reset_shard_stats,
    shard_stats,
)
from repro.shard.executor import _portable_query, clear_worker_stores

QUERIES = [
    "V(x, y) <- E(x, y)",          # scatter
    "V(y) <- E(1, y)",             # pruned
    "V(x, z) <- E(x, y), E(y, z)", # repartition
    "V(x, z) <- E(x, y), F(z, w)", # broadcast
    "V(x) <- E(x, x)",             # scatter, self-loop filter
    "V() <- E(1, 2)",              # pruned, boolean
    "V(x, y) <- E(x, y), Lt(x, y)",  # builtin: serial-only path
]


def make_db():
    return GlobalDatabase(
        [fact("E", i % 5, (i * 3) % 7) for i in range(30)]
        + [fact("F", i % 3, "t") for i in range(6)]
    )


def executor_for(db, n, **kw):
    return ShardExecutor(ShardedDatabase(db, PartitionSpec(n)), **kw)


class TestEquivalence:
    @pytest.mark.parametrize("rule", QUERIES)
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_matches_single_store_pipeline(self, rule, shards):
        db = make_db()
        query = parse_rule(rule)
        expected = plan_evaluate(query, db)
        assert executor_for(db, shards).answer(query) == expected

    def test_answer_ordered_is_canonical(self):
        db = make_db()
        query = parse_rule("V(x, y) <- E(x, y)")
        ex = executor_for(db, 3)
        assert ex.answer_ordered(query) == canonical_order(ex.answer(query))

    def test_evaluate_sharded_one_shot(self):
        db = make_db()
        query = parse_rule("V(y) <- E(1, y)")
        assert evaluate_sharded(query, db, PartitionSpec(4)) == plan_evaluate(
            query, db
        )

    def test_empty_database(self):
        db = GlobalDatabase([])
        query = parse_rule("V(x) <- E(x, y)")
        assert executor_for(db, 4).answer(query) == frozenset()


class TestCounters:
    def test_plan_counters(self):
        reset_shard_stats()
        ex = executor_for(make_db(), 4)
        ex.answer(parse_rule("V(y) <- E(1, y)"))
        ex.answer(parse_rule("V(x, y) <- E(x, y)"))
        assert ex.counters["queries"] == 2
        assert ex.counters["shards_pruned"] == 3
        assert ex.counters["fragments_executed"] == 1 + 4
        assert ex.counters["strategy_pruned"] == 1
        assert ex.counters["strategy_scatter"] == 1
        # process-wide mirror sees the same deltas
        assert shard_stats()["queries"] >= 2

    def test_stats_includes_layout(self):
        ex = executor_for(make_db(), 2)
        ex.answer(parse_rule("V(x, y) <- E(x, y)"))
        stats = ex.stats()
        assert stats["layout"]["base_built"] == 2
        assert stats["workers"] == 0


class TestPortability:
    def test_plain_cq_is_portable(self):
        assert _portable_query(parse_rule("V(x, z) <- E(x, y), E(y, z)"))

    def test_builtin_query_is_not(self):
        assert not _portable_query(parse_rule("V(x) <- E(x, y), Lt(x, y)"))

    def test_algebra_query_is_not(self):
        from repro.algebra import cq_to_algebra

        assert not _portable_query(
            cq_to_algebra(parse_rule("V(x) <- E(x, y)"))
        )


class TestProcessPath:
    def test_process_equivalence_and_warm_reuse(self):
        reset_shard_stats()
        clear_worker_stores()
        db = make_db()
        with executor_for(db, 4, workers=2) as ex:
            for rule in QUERIES:
                query = parse_rule(rule)
                assert ex.answer(query) == plan_evaluate(query, db)
            # warm pass: same fragments, tokens already sent
            before = dict(ex.counters)
            for rule in QUERIES:
                query = parse_rule(rule)
                assert ex.answer(query) == plan_evaluate(query, db)
            after = ex.counters
            # the builtin query never takes the process path
            assert before.get("strategy_scatter", 0) >= 1
            if not getattr(ex._pool, "degraded", False):
                assert after["process_queries"] > 0

    def test_shared_pool_outlives_executors(self):
        db = make_db()
        query = parse_rule("V(x, y) <- E(x, y)")
        pool = make_executor(2, mode="process")
        try:
            with executor_for(db, 3, workers=2, pool=pool) as first:
                assert first.answer(query) == plan_evaluate(query, db)
            # closing a borrowing executor must not close the shared pool:
            # a second executor keeps answering through it, reusing the
            # sent-token bookkeeping that rides on the pool object. (Misses
            # may still occur — map() is free to hand a fragment to a
            # worker that has not cached it — and the resend path absorbs
            # them, so only correctness is asserted here.)
            sent = getattr(pool, "shard_sent_tokens", set())
            with executor_for(db, 3, workers=2, pool=pool) as second:
                assert second.answer(query) == plan_evaluate(query, db)
                if not getattr(pool, "degraded", False):
                    assert getattr(pool, "shard_sent_tokens") >= sent
        finally:
            pool.close()

    def test_builtin_query_falls_back_to_serial(self):
        db = make_db()
        query = parse_rule("V(x, y) <- E(x, y), Lt(x, y)")
        with executor_for(db, 4, workers=2) as ex:
            assert ex.answer(query) == plan_evaluate(query, db)
            assert "process_queries" not in ex.counters
