"""Partition-aware planning: strategy selection and EXPLAIN rendering."""

from repro.algebra import cq_to_algebra
from repro.model import GlobalDatabase, fact
from repro.queries import parse_rule
from repro.shard import (
    PartitionSpec,
    ShardedDatabase,
    explain_shards,
    plan_shards,
    stable_bucket,
)


def make_store(n=4, **kw):
    db = GlobalDatabase(
        [fact("E", i, i % 4) for i in range(20)]
        + [fact("F", i % 3, i % 2) for i in range(4)]
        + [fact("Z")]
    )
    return ShardedDatabase(db, PartitionSpec(n, **kw))


class TestStrategySelection:
    def test_single_when_one_shard(self):
        plan = plan_shards(parse_rule("V(x) <- E(x, y)"), make_store(1))
        assert plan.strategy == "single"
        assert plan.shards_executed == 1 and plan.shards_total == 1

    def test_global_for_algebra_queries(self):
        tree = cq_to_algebra(parse_rule("V(x) <- E(x, y)"))
        plan = plan_shards(tree, make_store(4))
        assert plan.strategy == "global"
        assert plan.shards_executed == 1

    def test_global_for_zero_arity_atom(self):
        plan = plan_shards(parse_rule("V() <- Z()"), make_store(4))
        assert plan.strategy == "global"

    def test_pruned_for_constant_at_key(self):
        store = make_store(4)  # default key position 0
        plan = plan_shards(parse_rule("V(y) <- E(1, y)"), store)
        assert plan.strategy == "pruned"
        assert plan.shards_executed == 1
        assert plan.shards_pruned == 3
        ((index, facts),) = plan.fragments
        assert index == stable_bucket(1, 4)
        assert facts is store.shards()[index]

    def test_constant_off_key_scatters(self):
        plan = plan_shards(parse_rule("V(x) <- E(x, 1)"), make_store(4))
        assert plan.strategy == "scatter"
        assert plan.shards_executed == 4 and plan.shards_pruned == 0

    def test_scatter_for_full_scan(self):
        plan = plan_shards(parse_rule("V(x, y) <- E(x, y)"), make_store(4))
        assert plan.strategy == "scatter"
        assert [index for index, _facts in plan.fragments] == [0, 1, 2, 3]

    def test_copartitioned_when_join_var_sits_at_every_key(self):
        store = make_store(4, keys={"E": 0, "F": 0})
        plan = plan_shards(parse_rule("V(x, z) <- E(x, y), F(x, z)"), store)
        assert plan.strategy == "copartitioned"
        assert plan.shards_executed == 4

    def test_repartition_for_chain_join(self):
        # key position 0 holds x in one atom and y in the other: the base
        # partition is not join-complete, so facts re-bucket on y.
        plan = plan_shards(
            parse_rule("V(x, z) <- E(x, y), E(y, z)"), make_store(4)
        )
        assert plan.strategy == "repartition"
        assert plan.shards_executed == 4
        assert "repartition" in plan.cost_estimates

    def test_broadcast_when_no_common_variable(self):
        plan = plan_shards(
            parse_rule("V(x, z) <- E(x, y), F(z, w)"), make_store(4)
        )
        assert plan.strategy == "broadcast"
        # E is the larger once-mentioned relation: it stays shard-local.
        assert "E stays shard-local" in plan.detail
        assert plan.cost_estimates["broadcast"] > 0

    def test_global_when_nothing_helps(self):
        # Self-product with no common variable: E is mentioned twice (no
        # broadcast) and no variable spans both atoms (no repartition).
        plan = plan_shards(
            parse_rule("V(x, z) <- E(x, y), E(z, w)"), make_store(4)
        )
        assert plan.strategy == "global"
        assert plan.shards_executed == 1

    def test_statistics_can_be_disabled(self):
        plan = plan_shards(
            parse_rule("V(x, z) <- E(x, y), E(y, z)"),
            make_store(4),
            use_statistics=False,
        )
        assert plan.strategy == "repartition"
        assert plan.cost_estimates == {}


class TestExplain:
    def test_reports_pruned_count(self):
        text = explain_shards(parse_rule("V(y) <- E(1, y)"), make_store(8))
        assert "strategy=pruned" in text
        assert "pruned=7" in text and "executed=1" in text

    def test_reports_fragment_sizes_and_estimates(self):
        text = explain_shards(
            parse_rule("V(x, z) <- E(x, y), F(z, w)"), make_store(4)
        )
        assert "strategy=broadcast" in text
        assert "est volume broadcast" in text
        assert "fragment sizes:" in text
