"""Concurrent access to the shard layer's enrolled caches (regression).

Before the cache runtime, ``_FRAGMENT_TOKENS`` entries were minted under a
module lock but ``_PORTABLE_CACHE`` reads/writes raced its parse step, and
``_WORKER_STORES`` was a bare dict with no discipline at all. All three are
now enrolled :class:`~repro.cache.runtime.LRUMemo` instances; these tests
hammer them from many threads and assert the invariants the protocols
rely on: one token per fragment (ever), one portability verdict per query,
and no lost updates or exceptions under interleaving — including with a
byte budget actively evicting underneath the threads.
"""

from __future__ import annotations

import threading

from repro.cache import cache_registry
from repro.model import GlobalDatabase, fact
from repro.queries import parse_rule
from repro.shard.executor import (
    _FRAGMENT_TOKENS,
    _PORTABLE_CACHE,
    _encode_fragment,
    _portable_query,
    _token_entry,
    _worker_answer,
    clear_worker_stores,
    worker_store_count,
)


def make_fragments(n):
    return [
        GlobalDatabase([fact("E", i, j) for j in range(3)]).core()
        for i in range(n)
    ]


def run_threads(worker, count=8):
    errors = []

    def wrapped(k):
        try:
            worker(k)
        except Exception as exc:  # pragma: no cover - failure surface
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(k,)) for k in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


class TestFragmentTokens:
    def test_one_token_per_fragment_across_threads(self):
        _FRAGMENT_TOKENS.clear()
        fragments = make_fragments(6)
        results = [[] for _ in range(8)]

        def worker(k):
            for fragment in fragments:
                results[k].append(_token_entry(fragment)[0])

        run_threads(worker)
        for fragment_tokens in zip(*results):
            assert len(set(fragment_tokens)) == 1  # same token in every thread

    def test_tokens_never_alias_after_eviction(self):
        _FRAGMENT_TOKENS.clear()
        fragment = make_fragments(1)[0]
        first = _token_entry(fragment)[0]
        _FRAGMENT_TOKENS.clear()  # worst case: forget and re-mint
        second = _token_entry(fragment)[0]
        assert first != second  # the sequence never reuses a name

    def test_enrolled_in_the_registry(self):
        assert cache_registry().cache("shard.fragment_tokens") is _FRAGMENT_TOKENS
        assert cache_registry().cache("shard.portable") is _PORTABLE_CACHE


class TestPortableCache:
    def test_concurrent_verdicts_agree(self):
        _PORTABLE_CACHE.clear()
        queries = [
            parse_rule(f"V(x) <- E(x, {i})") for i in range(5)
        ] + [parse_rule("V(x, y) <- E(x, y), Lt(x, y)")]
        verdicts = [[] for _ in range(8)]

        def worker(k):
            for query in queries:
                verdicts[k].append(_portable_query(query))

        run_threads(worker)
        assert all(v == verdicts[0] for v in verdicts)
        assert verdicts[0][:5] == [True] * 5  # plain CQs are portable
        assert verdicts[0][5] is False  # builtin body is not


class TestWorkerStores:
    def test_concurrent_worker_answers_with_miss_resend(self):
        clear_worker_stores()
        fragments = make_fragments(4)
        payloads = [_encode_fragment(fragment) for fragment in fragments]
        query_text = "V(x, y) <- E(x, y)"

        def worker(k):
            for i, payload in enumerate(payloads):
                token = f"frag-{i}"
                result = _worker_answer((token, None, query_text))
                if result is None:  # miss: resend with payload
                    result = _worker_answer((token, payload, query_text))
                assert result is not None
                assert set(result) == {("V", values) for _r, values in payload}

        run_threads(worker)
        assert worker_store_count() <= len(payloads)
        clear_worker_stores()

    def test_eviction_under_budget_degrades_to_miss_not_error(self):
        clear_worker_stores()
        registry = cache_registry()
        assert registry.cache("shard.worker_stores") is not None
        fragment = make_fragments(1)[0]
        payload = _encode_fragment(fragment)
        assert _worker_answer(("tok", payload, "V(x, y) <- E(x, y)")) is not None
        clear_worker_stores()  # simulate eviction between requests
        assert _worker_answer(("tok", None, "V(x, y) <- E(x, y)")) is None
        assert _worker_answer(("tok", payload, "V(x, y) <- E(x, y)")) is not None
        clear_worker_stores()
