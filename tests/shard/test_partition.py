"""Partitioning: stable buckets, disjoint cover, key-position handling."""

import subprocess
import sys

import pytest

from repro.core.symbols import global_table
from repro.exceptions import ModelError
from repro.model import GlobalDatabase, fact
from repro.shard import (
    PartitionSpec,
    bucket_of_fact,
    partition_facts,
    stable_bucket,
)


def small_core(n=50):
    db = GlobalDatabase(
        [fact("E", i % 9, i % 5) for i in range(n)]
        + [fact("S", i % 7) for i in range(n // 2)]
        + [fact("Z")]
    )
    return db.core()


class TestStableBucket:
    def test_deterministic_and_in_range(self):
        for value in ("a", 17, 3.5, ("x", 1), None, True):
            first = stable_bucket(value, 8)
            assert first == stable_bucket(value, 8)
            assert 0 <= first < 8

    def test_single_shard_is_always_zero(self):
        assert stable_bucket("anything", 1) == 0

    def test_type_discriminates(self):
        # hash(1) == hash(1.0) would co-locate these; the stable bucket
        # hashes (type name, repr) so they may differ — and int vs str
        # certainly carry different payloads.
        assert stable_bucket(1, 1 << 30) != stable_bucket("1", 1 << 30)

    def test_stable_across_hash_seeds(self):
        # PYTHONHASHSEED randomizes builtin hash(); the shard assignment
        # must not move. Run the computation under two forced seeds.
        import os

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        code = (
            "from repro.shard import stable_bucket; "
            "print([stable_bucket(v, 16) for v in ('a', 'b', 7, 2.5)])"
        )
        outs = set()
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src)
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env,
            )
            assert result.returncode == 0, result.stderr
            outs.add(result.stdout.strip())
        assert len(outs) == 1

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ModelError):
            stable_bucket("a", 0)


class TestPartitionSpec:
    def test_value_semantics(self):
        a = PartitionSpec(4, {"E": 1})
        b = PartitionSpec(4, {"E": 1})
        assert a == b and hash(a) == hash(b)
        assert a != PartitionSpec(4, {"E": 0})
        assert a != PartitionSpec(5, {"E": 1})

    def test_key_position_clamps_to_arity(self):
        spec = PartitionSpec(4, {"E": 5})
        assert spec.key_position("E", 2) == 1
        assert spec.key_position("E", 1) == 0
        assert spec.key_position("E", 0) is None

    def test_default_key_applies_to_unnamed_relations(self):
        spec = PartitionSpec(4, {"E": 1}, default_key=0)
        assert spec.key_position("S", 3) == 0
        assert spec.key_position("E", 3) == 1

    def test_shard_of_args_matches_bucket(self):
        spec = PartitionSpec(8, {"E": 1})
        assert spec.shard_of_args("E", ("a", "b")) == stable_bucket("b", 8)
        assert spec.shard_of_args("Z", ()) == 0

    def test_validation(self):
        with pytest.raises(ModelError):
            PartitionSpec(0)
        with pytest.raises(ModelError):
            PartitionSpec(2, {"E": -1})
        with pytest.raises(ModelError):
            PartitionSpec(2, default_key=-1)


class TestPartitionFacts:
    def test_disjoint_cover(self):
        core = small_core()
        for n in (1, 2, 3, 8):
            shards = partition_facts(core, PartitionSpec(n))
            assert len(shards) == n
            union = frozenset()
            total = 0
            for shard in shards:
                assert not (union & shard.ids())
                union |= shard.ids()
                total += len(shard)
            assert union == core.ids() and total == len(core)

    def test_fact_lands_where_its_key_hashes(self):
        core = small_core()
        spec = PartitionSpec(4, {"E": 1})
        shards = partition_facts(core, spec)
        table = core.table
        for fid in core.ids():
            bucket = bucket_of_fact(core, spec, fid)
            assert fid in shards[bucket]
            t = table.fact_tuple(fid)
            if table.relation_name(t[0]) == "E":
                assert bucket == stable_bucket(
                    table.constant_value(t[2]), 4
                )

    def test_zero_arity_facts_go_to_shard_zero(self):
        core = GlobalDatabase([fact("Z")]).core()
        shards = partition_facts(core, PartitionSpec(4))
        assert len(shards[0]) == 1
        assert all(len(s) == 0 for s in shards[1:])

    def test_single_shard_returns_the_input(self):
        core = small_core()
        (only,) = partition_facts(core, PartitionSpec(1))
        assert only is core

    def test_partition_is_cached_by_value(self):
        table = global_table()
        core = small_core()
        first = partition_facts(core, PartitionSpec(3))
        again = partition_facts(
            GlobalDatabase(
                fact(table.relation_name(table.fact_tuple(fid)[0]),
                     *[table.constant_value(c)
                       for c in table.fact_tuple(fid)[1:]])
                for fid in core.ids()
            ).core(),
            PartitionSpec(3),
        )
        assert first is again
