"""Tests for trust/blame scoring."""

from fractions import Fraction

import pytest

from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.consensus import (
    blame_scores,
    consensus_trust_scores,
    rank_by_trust,
    suspect_sources,
    trust_scores,
)


def exact_source(name, values):
    return SourceDescriptor(
        identity_view(f"V{name}", "R", 1),
        [fact(f"V{name}", v) for v in values],
        1,
        1,
        name=name,
    )


@pytest.fixture
def outvoted():
    """A and C agree; B is the odd one out (two conflicts involve B)."""
    return SourceCollection(
        [
            exact_source("A", ["x", "y"]),
            exact_source("B", ["x", "z"]),
            exact_source("C", ["x", "y"]),
        ]
    )


class TestTrustScores:
    def test_consistent_collection_full_trust(self, example51):
        assert trust_scores(example51) == {
            "S1": Fraction(1),
            "S2": Fraction(1),
        }

    def test_unweighted_trust_treats_mcs_equally(self, outvoted):
        """MCSs are {A, C} and {B}: every source sits in exactly one of two."""
        trust = trust_scores(outvoted)
        assert trust == {
            "A": Fraction(1, 2),
            "B": Fraction(1, 2),
            "C": Fraction(1, 2),
        }

    def test_consensus_trust_rewards_the_majority(self, outvoted):
        """Only the largest coalition {A, C} counts: B is fully distrusted."""
        consensus = consensus_trust_scores(outvoted)
        assert consensus == {
            "A": Fraction(1),
            "B": Fraction(0),
            "C": Fraction(1),
        }

    def test_consensus_trust_consistent_collection(self, example51):
        assert set(consensus_trust_scores(example51).values()) == {Fraction(1)}

    def test_in_unit_interval(self, outvoted):
        for scores in (trust_scores(outvoted), consensus_trust_scores(outvoted)):
            for score in scores.values():
                assert 0 <= score <= 1


class TestBlameScores:
    def test_consistent_collection_no_blame(self, example51):
        assert set(blame_scores(example51).values()) == {Fraction(0)}

    def test_odd_one_out_most_blamed(self, outvoted):
        blame = blame_scores(outvoted)
        assert blame["B"] == Fraction(1)       # in both conflicts
        assert blame["A"] == Fraction(1, 2)


class TestRanking:
    def test_rank_by_trust(self, outvoted):
        ranking = rank_by_trust(outvoted)
        # A and C trusted equally; B last due to higher blame
        assert ranking[-1] == "B"

    def test_suspects(self, outvoted):
        suspects = suspect_sources(outvoted)
        assert set(suspects) == {"A", "B", "C"}  # all unweighted trust < 1
        assert suspects[0] == "B"  # most suspicious first (blame tiebreak)

    def test_no_suspects_when_consistent(self, example51):
        assert suspect_sources(example51) == []
