"""Tests for bound relaxation."""

from fractions import Fraction

import pytest

from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.consistency import check_consistency
from repro.consensus import (
    most_fixable_source,
    per_source_relaxation,
    scaled_collection,
    uniform_relaxation,
)


def source(name, values, c, s):
    return SourceDescriptor(
        identity_view(f"V{name}", "R", 1),
        [fact(f"V{name}", v) for v in values],
        c,
        s,
        name=name,
    )


@pytest.fixture
def mildly_inconsistent():
    """A says D = {x}; B is sound on {y}. Relaxing either claim a bit
    (A's completeness or B's soundness) restores consistency."""
    return SourceCollection(
        [
            source("A", ["x"], 1, 1),
            source("B", ["y"], 0, 1),
        ]
    )


class TestScaledCollection:
    def test_scaling_all(self, mildly_inconsistent):
        scaled = scaled_collection(mildly_inconsistent, Fraction(1, 2))
        assert scaled.by_name("A").completeness_bound == Fraction(1, 2)
        assert scaled.by_name("B").soundness_bound == Fraction(1, 2)

    def test_scaling_only_named(self, mildly_inconsistent):
        scaled = scaled_collection(
            mildly_inconsistent, Fraction(1, 2), only=["B"]
        )
        assert scaled.by_name("A").completeness_bound == 1
        assert scaled.by_name("B").soundness_bound == Fraction(1, 2)

    def test_scaling_by_one_is_identity(self, mildly_inconsistent):
        scaled = scaled_collection(mildly_inconsistent, Fraction(1))
        assert scaled.sources == mildly_inconsistent.sources


class TestUniformRelaxation:
    def test_consistent_needs_no_discount(self, example51):
        discount, relaxed = uniform_relaxation(example51)
        assert discount == 0 and relaxed.sources == example51.sources

    def test_inconsistent_gets_consistent_result(self, mildly_inconsistent):
        discount, relaxed = uniform_relaxation(mildly_inconsistent)
        assert 0 < discount <= 1
        assert check_consistency(relaxed).consistent

    def test_discount_near_true_threshold(self, mildly_inconsistent):
        """D = {x, y} satisfies A at c = 1/2: the threshold is λ = 1/2."""
        discount, _ = uniform_relaxation(
            mildly_inconsistent, precision=Fraction(1, 256)
        )
        assert Fraction(1, 2) <= discount <= Fraction(1, 2) + Fraction(1, 256)

    def test_tighter_precision_smaller_bound(self, mildly_inconsistent):
        loose, _ = uniform_relaxation(mildly_inconsistent, Fraction(1, 8))
        tight, _ = uniform_relaxation(mildly_inconsistent, Fraction(1, 512))
        assert tight <= loose


class TestPerSourceRelaxation:
    def test_consistent_zero(self, example51):
        assert per_source_relaxation(example51, "S1") == 0

    def test_fixable_through_either_source(self, mildly_inconsistent):
        for name in ("A", "B"):
            discount = per_source_relaxation(mildly_inconsistent, name)
            assert discount is not None and 0 < discount <= 1

    def test_unfixable_source_returns_none(self):
        """C's bounds are already 0 — discounting C cannot fix A vs B."""
        collection = SourceCollection(
            [
                source("A", ["x"], 1, 1),
                source("B", ["y"], 0, 1),
                source("C", ["x"], 0, 0),
            ]
        )
        assert per_source_relaxation(collection, "C") is None


class TestMostFixable:
    def test_consistent_returns_none(self, example51):
        assert most_fixable_source(example51) is None

    def test_identifies_cheapest_fix(self, mildly_inconsistent):
        result = most_fixable_source(mildly_inconsistent)
        assert result is not None
        name, discount = result
        assert name in ("A", "B") and 0 < discount <= 1
        relaxed = scaled_collection(
            mildly_inconsistent, Fraction(1) - discount, only=[name]
        )
        assert check_consistency(relaxed).consistent
