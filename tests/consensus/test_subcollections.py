"""Tests for maximal consistent / minimal inconsistent sub-collections."""

import pytest

from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.consensus import (
    is_consistent_subset,
    maximal_consistent_subcollections,
    minimal_inconsistent_subcollections,
    minimal_repairs,
    repair_via_hitting_set,
    subcollection,
)


def exact_source(name, values):
    i = name
    return SourceDescriptor(
        identity_view(f"V{i}", "R", 1),
        [fact(f"V{i}", v) for v in values],
        1,
        1,
        name=name,
    )


def sound_source(name, values):
    return SourceDescriptor(
        identity_view(f"V{name}", "R", 1),
        [fact(f"V{name}", v) for v in values],
        0,
        1,
        name=name,
    )


@pytest.fixture
def conflicting():
    """A and B claim exact-but-different worlds; C agrees with A."""
    return SourceCollection(
        [
            exact_source("A", ["x", "y"]),
            exact_source("B", ["x", "z"]),
            exact_source("C", ["x", "y"]),
        ]
    )


class TestSubcollection:
    def test_selection(self, conflicting):
        sub = subcollection(conflicting, frozenset({"A", "C"}))
        assert [s.name for s in sub] == ["A", "C"]

    def test_empty_subset_consistent(self, conflicting):
        assert is_consistent_subset(conflicting, frozenset())


class TestMaximalConsistent:
    def test_consistent_collection_single_mcs(self, example51):
        assert maximal_consistent_subcollections(example51) == [
            frozenset({"S1", "S2"})
        ]

    def test_conflicting_collection(self, conflicting):
        maximal = maximal_consistent_subcollections(conflicting)
        assert frozenset({"A", "C"}) in maximal
        assert frozenset({"B"}) in maximal
        assert len(maximal) == 2

    def test_antichain(self, conflicting):
        maximal = maximal_consistent_subcollections(conflicting)
        for left in maximal:
            for right in maximal:
                if left != right:
                    assert not left <= right

    def test_all_mcs_members_consistent(self, conflicting):
        for names in maximal_consistent_subcollections(conflicting):
            assert is_consistent_subset(conflicting, names)


class TestMinimalInconsistent:
    def test_consistent_has_no_conflicts(self, example51):
        assert minimal_inconsistent_subcollections(example51) == []

    def test_conflicts_identified(self, conflicting):
        conflicts = minimal_inconsistent_subcollections(conflicting)
        assert frozenset({"A", "B"}) in conflicts
        assert frozenset({"B", "C"}) in conflicts
        assert len(conflicts) == 2

    def test_conflicts_are_minimal(self, conflicting):
        for conflict in minimal_inconsistent_subcollections(conflicting):
            for name in conflict:
                smaller = conflict - {name}
                assert is_consistent_subset(conflicting, smaller)


class TestRepairs:
    def test_consistent_needs_empty_repair(self, example51):
        assert minimal_repairs(example51) == [frozenset()]

    def test_drop_b_is_the_repair(self, conflicting):
        assert minimal_repairs(conflicting) == [frozenset({"B"})]

    def test_hitting_set_route_agrees(self, conflicting):
        repair, conflicts = repair_via_hitting_set(conflicting)
        assert repair == frozenset({"B"})
        assert len(conflicts) == 2
        remaining = frozenset(s.name for s in conflicting) - repair
        assert is_consistent_subset(conflicting, remaining)

    def test_hitting_set_route_consistent_collection(self, example51):
        repair, conflicts = repair_via_hitting_set(example51)
        assert repair == frozenset() and conflicts == []


class TestThreeWayConflict:
    def test_mutually_exclusive_exact_sources(self):
        collection = SourceCollection(
            [
                exact_source("A", ["x"]),
                exact_source("B", ["y"]),
                exact_source("C", ["z"]),
            ]
        )
        maximal = maximal_consistent_subcollections(collection)
        assert sorted(maximal, key=sorted) == [
            frozenset({"A"}),
            frozenset({"B"}),
            frozenset({"C"}),
        ]
        conflicts = minimal_inconsistent_subcollections(collection)
        assert len(conflicts) == 3  # every pair clashes
        repair, _ = repair_via_hitting_set(collection)
        assert len(repair) == 2  # drop any two
