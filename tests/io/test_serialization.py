"""Tests for the text serialization format."""

from fractions import Fraction

import pytest

from repro.exceptions import ParseError
from repro.model import GlobalDatabase, fact
from repro.io import (
    dumps_collection,
    dumps_database,
    load_collection,
    loads_collection,
    loads_database,
    save_collection,
)

from tests.conftest import make_example51_collection

EXAMPLE_TEXT = """
# Example 5.1
source S1 completeness=1/2 soundness=0.5
view V1(x) <- R(x)
fact V1("a")
fact V1("b")

source S2 completeness=1/2 soundness=1/2
view V2(x) <- R(x)
fact V2("b")
fact V2("c")
"""


class TestLoads:
    def test_basic(self):
        collection = loads_collection(EXAMPLE_TEXT)
        assert len(collection) == 2
        s1 = collection.by_name("S1")
        assert s1.completeness_bound == Fraction(1, 2)
        assert s1.soundness_bound == Fraction(1, 2)
        assert fact("V1", "a") in s1.extension

    def test_decimal_and_fraction_bounds_equal(self):
        collection = loads_collection(EXAMPLE_TEXT)
        assert (
            collection.by_name("S1").soundness_bound
            == collection.by_name("S2").soundness_bound
        )

    def test_views_with_builtins(self):
        text = (
            "source S completeness=1 soundness=1\n"
            "view V(s, y) <- Temperature(s, y), After(y, 1900)\n"
            'fact V(438432, 1950)\n'
        )
        collection = loads_collection(text)
        assert len(collection.by_name("S").view.builtin_body()) == 1

    def test_missing_view_rejected(self):
        with pytest.raises(ParseError):
            loads_collection("source S completeness=1 soundness=1\nfact V(1)\n")

    def test_fact_before_source_rejected(self):
        with pytest.raises(ParseError):
            loads_collection('fact V("a")\n')

    def test_duplicate_view_rejected(self):
        text = (
            "source S completeness=1 soundness=1\n"
            "view V(x) <- R(x)\n"
            "view V(x) <- R(x)\n"
        )
        with pytest.raises(ParseError):
            loads_collection(text)

    def test_bad_bound_token(self):
        with pytest.raises(ParseError):
            loads_collection("source S completeness=1 wrongness=1\nview V(x) <- R(x)\n")

    def test_malformed_source_line(self):
        with pytest.raises(ParseError):
            loads_collection("source S\nview V(x) <- R(x)\n")

    def test_unrecognized_line(self):
        with pytest.raises(ParseError):
            loads_collection("bogus line\n")


class TestRoundTrip:
    def test_collection_roundtrip(self, example51):
        text = dumps_collection(example51)
        loaded = loads_collection(text)
        assert loaded.sources == example51.sources

    def test_collection_with_numeric_constants(self):
        text = (
            "source S completeness=1/3 soundness=2/3\n"
            "view V(s, y) <- Temperature(s, y)\n"
            "fact V(438432, 1950)\n"
        )
        collection = loads_collection(text)
        assert loads_collection(dumps_collection(collection)).sources == (
            collection.sources
        )

    def test_database_roundtrip(self):
        db = GlobalDatabase([fact("R", "a", 1), fact("S", 2.5)])
        assert loads_database(dumps_database(db)) == db

    def test_empty_database(self):
        assert loads_database(dumps_database(GlobalDatabase())) == GlobalDatabase()

    def test_file_roundtrip(self, tmp_path, example51):
        path = str(tmp_path / "collection.sources")
        save_collection(example51, path)
        assert load_collection(path).sources == example51.sources


class TestDatabaseParsing:
    def test_comments_ignored(self):
        db = loads_database("# comment\nfact R(1)\n\n")
        assert db == GlobalDatabase([fact("R", 1)])

    def test_non_fact_line_rejected(self):
        with pytest.raises(ParseError):
            loads_database("atom R(1)\n")
