"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import save_collection, save_database
from repro.model import GlobalDatabase, fact

from tests.conftest import make_example51_collection


@pytest.fixture
def collection_file(tmp_path):
    path = str(tmp_path / "example51.sources")
    save_collection(make_example51_collection(), path)
    return path


@pytest.fixture
def inconsistent_file(tmp_path):
    from repro.queries import identity_view
    from repro.sources import SourceCollection, SourceDescriptor

    collection = SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1), [fact("V1", "a")], 1, 1, name="S1"
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1), [fact("V2", "b")], 0, 1, name="S2"
            ),
        ]
    )
    path = str(tmp_path / "bad.sources")
    save_collection(collection, path)
    return path


class TestCheck:
    def test_consistent_exit_zero(self, collection_file, capsys):
        assert main(["check", collection_file]) == 0
        out = capsys.readouterr().out
        assert "CONSISTENT" in out and "witness" in out

    def test_inconsistent_exit_one(self, inconsistent_file, capsys):
        assert main(["check", inconsistent_file]) == 1
        assert "INCONSISTENT" in capsys.readouterr().out

    def test_missing_file_exit_two(self, capsys):
        assert main(["check", "/nonexistent/file"]) == 2
        assert "error:" in capsys.readouterr().err


class TestConfidence:
    def test_ranked_output(self, collection_file, capsys):
        assert main(
            ["confidence", collection_file, "--domain", "a,b,c,d1"]
        ) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip()]
        assert "R('b')" in lines[0]  # highest confidence first
        assert "6/7" in lines[0]


class TestWorlds:
    def test_enumeration_with_limit(self, collection_file, capsys):
        assert main(
            ["worlds", collection_file, "--domain", "a,b,c", "--limit", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "total possible worlds: 5" in out
        assert "... and 3 more" in out


class TestAudit:
    def test_admitted_world(self, collection_file, tmp_path, capsys):
        world_path = str(tmp_path / "world.facts")
        save_database(GlobalDatabase([fact("R", "b")]), world_path)
        assert main(["audit", collection_file, "--world", world_path]) == 0
        assert "world admitted" in capsys.readouterr().out

    def test_rejected_world(self, collection_file, tmp_path, capsys):
        world_path = str(tmp_path / "empty.facts")
        save_database(GlobalDatabase(), world_path)
        assert main(["audit", collection_file, "--world", world_path]) == 1
        assert "VIOLATED" in capsys.readouterr().out


class TestConsensus:
    def test_consistent_collection(self, collection_file, capsys):
        assert main(["consensus", collection_file]) == 0
        assert "fully trusted" in capsys.readouterr().out

    def test_conflicting_collection(self, tmp_path, capsys):
        from repro.queries import identity_view
        from repro.sources import SourceCollection, SourceDescriptor

        collection = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("VA", "R", 1),
                    [fact("VA", "x"), fact("VA", "y")], 1, 1, name="A",
                ),
                SourceDescriptor(
                    identity_view("VB", "R", 1),
                    [fact("VB", "x"), fact("VB", "z")], 1, 1, name="B",
                ),
                SourceDescriptor(
                    identity_view("VC", "R", 1),
                    [fact("VC", "x"), fact("VC", "y")], 1, 1, name="C",
                ),
            ]
        )
        path = str(tmp_path / "conflict.sources")
        save_collection(collection, path)
        assert main(["consensus", path]) == 1
        out = capsys.readouterr().out
        assert "minimal conflicts" in out
        assert "minimum repair (drop): {B}" in out
        assert "uniform bound discount" in out


class TestRewrite:
    def test_rewrite_identity_views(self, collection_file, capsys):
        assert main(
            ["rewrite", collection_file, "--query", "ans(x) <- R(x)"]
        ) == 0
        out = capsys.readouterr().out
        assert "EQUIVALENT" in out
        assert "answers from the sources" in out

    def test_plans_only(self, collection_file, capsys):
        assert main(
            [
                "rewrite",
                collection_file,
                "--query",
                "ans(x) <- R(x)",
                "--plans-only",
            ]
        ) == 0
        assert "answers" not in capsys.readouterr().out

    def test_no_rewriting_exists(self, collection_file, capsys):
        assert main(
            ["rewrite", collection_file, "--query", "ans(x) <- T(x)"]
        ) == 1
        assert "no sound rewriting" in capsys.readouterr().out


class TestErrorPaths:
    """Input errors exit 2 via one ``error:`` line — never a traceback."""

    def test_malformed_collection_file(self, tmp_path, capsys):
        path = tmp_path / "garbage.sources"
        path.write_text("this is { not a source collection\n")
        assert main(["check", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_malformed_database_file(self, collection_file, tmp_path, capsys):
        path = tmp_path / "garbage.facts"
        path.write_text("not-a-fact(((\n")
        assert main(["audit", collection_file, "--world", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_confidence_missing_file(self, capsys):
        assert main(
            ["confidence", "/nonexistent/file", "--domain", "a,b"]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestStatsJson:
    def test_stats_emits_machine_readable_line(self, collection_file, capsys):
        import json

        assert main(
            [
                "confidence", collection_file,
                "--domain", "a,b,c,d1", "--stats",
            ]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        payload = json.loads(lines[-1])  # last line is the JSON snapshot
        assert payload["tasks"]["submitted"] >= 1
        assert payload["executor"] in ("serial", "process", "thread")
        assert set(payload["tasks"]) == {"submitted", "memoized", "dispatched"}


class TestServe:
    def test_burst_prints_summary_and_snapshot(self, collection_file, capsys):
        import json

        assert main(
            [
                "serve", collection_file,
                "--domain", "a,b,c,d1", "--requests", "12",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "served 12 requests" in out
        assert "ok: 12" in out
        snapshot = json.loads(out.strip().splitlines()[-1])
        assert snapshot["metrics"]["counters"]["responses_ok"] == 12

    def test_json_mode_prints_only_snapshot(self, collection_file, capsys):
        import json

        assert main(
            [
                "serve", collection_file,
                "--domain", "a,b,c,d1", "--requests", "4", "--json",
            ]
        ) == 0
        out = capsys.readouterr().out.strip()
        snapshot = json.loads(out)  # the whole stdout is one JSON document
        assert set(snapshot) == {
            "cache", "gateway", "metrics", "plan", "registry", "shard",
            "tracing",
        }
        assert "caches" in snapshot["cache"]

    def test_non_identity_collection_rejected(self, tmp_path, capsys):
        from repro.queries import identity_view
        from repro.sources import SourceCollection, SourceDescriptor

        collection = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")],
                    "1/2", "1/2", name="S1",
                ),
                SourceDescriptor(
                    identity_view("V2", "T", 1), [fact("V2", "b")],
                    "1/2", "1/2", name="S2",
                ),
            ]
        )
        path = str(tmp_path / "mixed.sources")
        save_collection(collection, path)
        assert main(["serve", path, "--domain", "a,b"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "identity-view" in err

    def test_bad_request_count_rejected(self, collection_file, capsys):
        assert main(
            [
                "serve", collection_file,
                "--domain", "a,b", "--requests", "0",
            ]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestAnswer:
    def test_answer_output(self, collection_file, capsys):
        assert main(
            [
                "answer",
                collection_file,
                "--query",
                "ans(x) <- R(x)",
                "--domain",
                "a,b,c",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "possible worlds: 5" in out
        assert "ans('b')" in out

    def test_bad_query_exit_two(self, collection_file, capsys):
        assert main(
            ["answer", collection_file, "--query", "garbage", "--domain", "a"]
        ) == 2


class TestAnswerShards:
    def test_sharded_answers_identical_to_single_store(
        self, collection_file, capsys
    ):
        base_args = [
            "answer", collection_file,
            "--query", "ans(x) <- R(x)", "--domain", "a,b,c",
        ]
        assert main(base_args) == 0
        single = capsys.readouterr().out
        assert main(base_args + ["--shards", "3"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == single

    def test_explain_reports_shard_plan(self, collection_file, capsys):
        assert main(
            [
                "answer", collection_file,
                "--query", "ans(x) <- R(x)", "--domain", "a,b,c",
                "--shards", "4", "--explain",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "shard plan: strategy=scatter" in out
        assert "shards=4" in out

    def test_explain_reports_pruned_shards(self, collection_file, capsys):
        # constant at the partition-key position: one shard executes, the
        # EXPLAIN surface reports the other three as pruned
        assert main(
            [
                "answer", collection_file,
                "--query", "ans() <- R('a')", "--domain", "a,b,c",
                "--shards", "4", "--explain",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "strategy=pruned" in out
        assert "pruned=3" in out and "executed=1" in out

    def test_invalid_shard_count_exit_two(self, collection_file, capsys):
        assert main(
            [
                "answer", collection_file,
                "--query", "ans(x) <- R(x)", "--domain", "a",
                "--shards", "0",
            ]
        ) == 2


class TestServeShards:
    def test_sharded_serve_snapshot_has_shard_section(
        self, collection_file, capsys
    ):
        import json

        assert main(
            [
                "serve", collection_file,
                "--domain", "a,b,c,d1", "--requests", "6",
                "--shards", "2", "--json",
            ]
        ) == 0
        snapshot = json.loads(capsys.readouterr().out.strip())
        assert snapshot["shard"]["shards"] == 2
        counters = snapshot["metrics"]["counters"]
        assert counters.get("query_requests", 0) >= 1
        assert counters.get("shard_queries", 0) >= 1
