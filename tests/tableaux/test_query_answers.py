"""Tests for template-based certain answers (§6 future work)."""

import pytest

from repro.model import Variable, atom, fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.tableaux import (
    DatabaseTemplate,
    Tableau,
    certain_answer_from_tableau,
    certain_answer_from_template,
    certain_answer_from_templates,
)
from repro.confidence import certain_answer

from tests.conftest import example51_domain, make_example51_collection

x, y = Variable("x"), Variable("y")


class TestFromTableau:
    def test_ground_atoms_answer(self):
        tableau = Tableau([fact("R", "a", "b")])
        q = parse_rule("ans(u) <- R(u, v)")
        assert certain_answer_from_tableau(q, tableau) == frozenset(
            {fact("ans", "a")}
        )

    def test_nulls_filtered(self):
        tableau = Tableau([atom("R", "a", x)])
        q_full = parse_rule("ans(u, v) <- R(u, v)")
        q_projected = parse_rule("ans(u) <- R(u, v)")
        assert certain_answer_from_tableau(q_full, tableau) == frozenset()
        assert certain_answer_from_tableau(q_projected, tableau) == frozenset(
            {fact("ans", "a")}
        )

    def test_join_through_shared_variable(self):
        tableau = Tableau([atom("R", "a", x), atom("S", x, "c")])
        q = parse_rule("ans(u, w) <- R(u, v), S(v, w)")
        # the join succeeds through the shared null, producing a null-free answer
        assert certain_answer_from_tableau(q, tableau) == frozenset(
            {fact("ans", "a", "c")}
        )

    def test_empty_tableau_no_answers(self):
        q = parse_rule("ans(u) <- R(u)")
        assert certain_answer_from_tableau(q, Tableau([])) == frozenset()


class TestAnswerTableau:
    """The symbolic (§6 'finite representation') answers."""

    def test_variables_kept(self):
        from repro.tableaux import answer_tableau

        tableau = Tableau([atom("R", "a", x), atom("S", x, "c")])
        q = parse_rule("ans(u, v) <- R(u, v)")
        result = answer_tableau(q, tableau)
        assert result == Tableau([atom("ans", "a", x)])

    def test_join_resolves_witness(self):
        from repro.tableaux import answer_tableau

        tableau = Tableau([atom("R", "a", x), atom("S", x, "c")])
        q = parse_rule("ans(u, w) <- R(u, v), S(v, w)")
        assert answer_tableau(q, tableau) == Tableau([fact("ans", "a", "c")])

    def test_ground_part_is_certain_answer(self):
        from repro.tableaux import answer_tableau

        tableau = Tableau([atom("R", "a", x), fact("R", "b", "k")])
        q = parse_rule("ans(u, v) <- R(u, v)")
        result = answer_tableau(q, tableau)
        ground = {a for a in result if a.is_ground()}
        assert ground == certain_answer_from_tableau(q, tableau)

    def test_answer_template_per_alternative(self):
        from repro.tableaux import answer_template

        template = DatabaseTemplate(
            [Tableau([fact("R", "a")]), Tableau([fact("R", "b")])]
        )
        q = parse_rule("ans(u) <- R(u)")
        result = answer_template(q, template)
        assert len(result.tableaux) == 2
        assert Tableau([fact("ans", "a")]) in result.tableaux


class TestFromTemplate:
    def test_intersection_over_alternatives(self):
        template = DatabaseTemplate(
            [
                Tableau([fact("R", "a"), fact("R", "b")]),
                Tableau([fact("R", "a"), fact("R", "c")]),
            ]
        )
        q = parse_rule("ans(u) <- R(u)")
        assert certain_answer_from_template(q, template) == frozenset(
            {fact("ans", "a")}
        )

    def test_no_tableaux_empty(self):
        q = parse_rule("ans(u) <- R(u)")
        assert certain_answer_from_template(q, DatabaseTemplate([])) == frozenset()


class TestFromCollection:
    def test_sound_source_facts_certain(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a"), fact("V1", "b")],
                    0,
                    1,
                    name="S1",
                )
            ]
        )
        q = parse_rule("ans(u) <- R(u)")
        assert certain_answer_from_templates(q, col) == frozenset(
            {fact("ans", "a"), fact("ans", "b")}
        )

    def test_partial_soundness_nothing_certain(self, example51):
        q = parse_rule("ans(u) <- R(u)")
        assert certain_answer_from_templates(q, example51) == frozenset()

    def test_sound_under_approximation(self, example51):
        """Template answers must always be inside the enumerated certain answer."""
        upgraded = SourceCollection(
            [
                example51[0].with_bounds(soundness_bound=1),
                example51[1],
            ]
        )
        q = parse_rule("ans(u) <- R(u)")
        via_templates = certain_answer_from_templates(q, upgraded)
        exact = certain_answer(q, upgraded, example51_domain(1))
        assert via_templates <= exact
        assert fact("ans", "a") in via_templates

    def test_projection_view(self):
        view = parse_rule("V(u) <- R(u, w)")
        col = SourceCollection(
            [SourceDescriptor(view, [fact("V", "a")], 0, 1, name="S1")]
        )
        q_projected = parse_rule("ans(u) <- R(u, w)")
        q_full = parse_rule("ans(u, w) <- R(u, w)")
        assert certain_answer_from_templates(q_projected, col) == frozenset(
            {fact("ans", "a")}
        )
        assert certain_answer_from_templates(q_full, col) == frozenset()

    @pytest.mark.parametrize(
        "soundness, expected_certain",
        [(1, True), ("1/2", False)],
    )
    def test_matches_enumeration_on_identity(self, soundness, expected_certain):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a"), fact("V1", "b")],
                    0,
                    soundness,
                    name="S1",
                )
            ]
        )
        q = parse_rule("ans(u) <- R(u)")
        via_templates = certain_answer_from_templates(q, col)
        exact = certain_answer(q, col, ["a", "b", "c"])
        assert via_templates <= exact
        assert (fact("ans", "a") in via_templates) == expected_certain
        assert (fact("ans", "a") in exact) == expected_certain
