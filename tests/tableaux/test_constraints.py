"""Tests for constraints (U, Θ) and their satisfaction."""

from repro.model import Constant, GlobalDatabase, Variable, atom, fact
from repro.model.valuation import Substitution
from repro.tableaux import Constraint, Tableau

x, y = Variable("x"), Variable("y")


class TestSatisfaction:
    def test_example_from_paper_section4(self):
        """Example 4.1/4.2: whenever a occurs first in R, second is b or b'."""
        constraint = Constraint(
            Tableau([atom("R", "a", x)]),
            [
                Substitution({x: Constant("b")}),
                Substitution({x: Constant("bp")}),
            ],
        )
        good = GlobalDatabase(
            [fact("R", "a", "b"), fact("R", "a", "bp"), fact("S", "b", "c")]
        )
        bad = GlobalDatabase([fact("R", "a", "c")])
        assert constraint.satisfied_by(good)
        assert not constraint.satisfied_by(bad)

    def test_vacuous_when_tableau_never_embeds(self):
        constraint = Constraint(Tableau([atom("T", x)]), [])
        assert constraint.satisfied_by(GlobalDatabase([fact("R", 1)]))

    def test_empty_theta_forbids_embedding(self):
        constraint = Constraint(Tableau([atom("R", x)]), [])
        assert not constraint.satisfied_by(GlobalDatabase([fact("R", 1)]))
        assert constraint.satisfied_by(GlobalDatabase())

    def test_cardinality_style_constraint(self):
        """Two-row tableau with a merge substitution: |R| <= 1."""
        x1, x2 = Variable("x1"), Variable("x2")
        constraint = Constraint(
            Tableau([atom("R", x1), atom("R", x2)]),
            [Substitution({x1: x2})],
        )
        assert constraint.satisfied_by(GlobalDatabase([fact("R", 1)]))
        assert not constraint.satisfied_by(
            GlobalDatabase([fact("R", 1), fact("R", 2)])
        )

    def test_violating_embeddings_reported(self):
        constraint = Constraint(
            Tableau([atom("R", x)]), [Substitution({x: Constant(1)})]
        )
        db = GlobalDatabase([fact("R", 1), fact("R", 2)])
        violations = list(constraint.violating_embeddings(db))
        assert len(violations) == 1
        assert violations[0].get(x) == Constant(2)

    def test_equality_and_hash(self):
        c1 = Constraint(Tableau([atom("R", x)]), [Substitution({x: Constant(1)})])
        c2 = Constraint(Tableau([atom("R", x)]), [Substitution({x: Constant(1)})])
        assert c1 == c2 and hash(c1) == hash(c2)
