"""Tests for database templates and rep(T) (Definition 4.1)."""

import pytest

from repro.exceptions import DomainTooLargeError
from repro.model import Constant, GlobalDatabase, Variable, atom, fact
from repro.model.valuation import Substitution
from repro.tableaux import Constraint, DatabaseTemplate, Tableau

x = Variable("x")


@pytest.fixture
def paper_template():
    """Example 4.1: T1 = {R(a,x), S(b,c), S(b,c')}, T2 = {R(a',b'), S(b,c)},
    C = {({R(a,x)}, {{x/b}, {x/b'}})}."""
    t1 = Tableau(
        [atom("R", "a", x), atom("S", "b", "c"), atom("S", "b", "cp")]
    )
    t2 = Tableau([atom("R", "ap", "bp"), atom("S", "b", "c")])
    constraint = Constraint(
        Tableau([atom("R", "a", x)]),
        [Substitution({x: Constant("b")}), Substitution({x: Constant("bp")})],
    )
    return DatabaseTemplate([t1, t2], [constraint])


class TestMembership:
    def test_example42_members(self, paper_template):
        """The three databases listed in Example 4.2 are represented."""
        members = [
            GlobalDatabase(
                [fact("R", "a", "b"), fact("S", "b", "c"), fact("S", "b", "cp")]
            ),
            GlobalDatabase(
                [fact("R", "a", "bp"), fact("S", "b", "c"), fact("S", "b", "cp")]
            ),
            GlobalDatabase([fact("R", "ap", "bp"), fact("S", "b", "c")]),
        ]
        for db in members:
            assert paper_template.admits(db), db

    def test_example42_superset_member(self, paper_template):
        db = GlobalDatabase(
            [
                fact("R", "a", "b"),
                fact("R", "a", "bp"),
                fact("S", "b", "c"),
                fact("S", "b", "cp"),
            ]
        )
        assert paper_template.admits(db)

    def test_example42_violating_superset(self, paper_template):
        db = GlobalDatabase(
            [
                fact("R", "a", "c"),   # violates the constraint
                fact("R", "a", "bp"),
                fact("S", "b", "c"),
                fact("S", "b", "cp"),
            ]
        )
        assert not paper_template.admits(db)

    def test_no_tableau_embeds(self, paper_template):
        assert not paper_template.admits(GlobalDatabase([fact("S", "b", "c")]))

    def test_violated_constraints_diagnostics(self, paper_template):
        db = GlobalDatabase(
            [fact("R", "a", "zz"), fact("R", "ap", "bp"), fact("S", "b", "c")]
        )
        assert len(paper_template.violated_constraints(db)) == 1


class TestSchemaAndEnumeration:
    def test_schema(self, paper_template):
        schema = paper_template.schema()
        assert schema.arity("R") == 2 and schema.arity("S") == 2

    def test_enumeration_members_all_admitted(self):
        template = DatabaseTemplate([Tableau([atom("R", x)])], [])
        worlds = list(template.represented_databases(["a", "b"]))
        assert worlds
        for world in worlds:
            assert template.admits(world)
        # every represented world embeds R(x): must be nonempty
        assert all(len(w) >= 1 for w in worlds)
        assert len(worlds) == 3  # {a}, {b}, {a,b}

    def test_enumeration_guard(self):
        template = DatabaseTemplate(
            [Tableau([atom("R", x, Variable("y"), Variable("z"))])]
        )
        with pytest.raises(DomainTooLargeError):
            list(template.represented_databases(["a", "b", "c"]))
