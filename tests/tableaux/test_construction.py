"""Tests for the T^U(S) / C^U(S) construction (Section 4)."""

from fractions import Fraction

import pytest

from repro.model import GlobalDatabase, fact
from repro.queries import identity_view, parse_rule
from repro.queries.builtins import default_registry
from repro.model.terms import FreshVariableFactory
from repro.sources import SourceCollection, SourceDescriptor
from repro.tableaux import (
    allowable_combinations,
    cardinality_constraint,
    materialize_builtins,
    minimal_combinations,
    source_tableau,
    template_for_combination,
)

from tests.conftest import make_example51_collection


class TestAllowableCombinations:
    def test_count_example51(self, example51):
        """u_i ⊆ v_i with |u_i| ≥ 1 for |v_i| = 2 → 3 choices per source."""
        combos = list(allowable_combinations(example51))
        assert len(combos) == 9

    def test_sizes_respect_soundness(self, example51):
        for u1, u2 in allowable_combinations(example51):
            assert len(u1) >= 1 and len(u2) >= 1

    def test_minimal_combinations_subset(self, example51):
        minimal = list(minimal_combinations(example51))
        assert len(minimal) == 4  # 2 choices of single fact per source
        allowable = set(map(tuple, allowable_combinations(example51)))
        assert set(map(tuple, minimal)) <= allowable

    def test_zero_soundness_includes_empty(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 0, 0, name="S1"
                )
            ]
        )
        combos = list(allowable_combinations(col))
        assert (frozenset(),) in combos


class TestSourceTableau:
    def test_identity_grounding(self, example51):
        source = example51[0]
        fresh = FreshVariableFactory()
        tableau = source_tableau(source, [fact("V1", "a")], fresh)
        assert fact("R", "a") in tableau

    def test_existential_variables_fresh_per_fact(self):
        view = parse_rule("V(x) <- R(x, y)")
        source = SourceDescriptor(
            view, [fact("V", "a"), fact("V", "b")], 1, 1, name="S"
        )
        fresh = FreshVariableFactory(taken=view.variables())
        tableau = source_tableau(source, source.extension, fresh)
        assert len(tableau) == 2
        # the two R atoms must not share their existential second column
        seconds = [a.args[1] for a in tableau]
        assert seconds[0] != seconds[1]


class TestCardinalityConstraint:
    def test_m_value(self):
        view = identity_view("V", "R", 1)
        source = SourceDescriptor(view, [], Fraction(1, 2), 0, name="S")
        fresh = FreshVariableFactory()
        constraint = cardinality_constraint(source, sound_count=2, fresh=fresh)
        # m = floor(2 / 0.5) = 4 -> 5 rows, theta count 5*4
        assert len(constraint.tableau) == 5
        assert len(constraint.substitutions) == 20

    def test_none_when_c_zero(self):
        view = identity_view("V", "R", 1)
        source = SourceDescriptor(view, [], 0, 0, name="S")
        constraint = cardinality_constraint(source, 1, FreshVariableFactory())
        assert constraint is None

    def test_enforces_size_bound(self, example51):
        source = example51[0]  # c = 1/2
        fresh = FreshVariableFactory()
        constraint = cardinality_constraint(source, sound_count=1, fresh=fresh)
        # m = 2: databases with <= 2 R-facts satisfy, 3 violate
        ok = GlobalDatabase([fact("R", "a"), fact("R", "b")])
        too_big = GlobalDatabase([fact("R", "a"), fact("R", "b"), fact("R", "c")])
        assert constraint.satisfied_by(ok)
        assert not constraint.satisfied_by(too_big)

    def test_m_zero_forbids_any_derivation(self):
        view = identity_view("V", "R", 1)
        source = SourceDescriptor(view, [], 1, 0, name="S")
        constraint = cardinality_constraint(source, 0, FreshVariableFactory())
        assert constraint.satisfied_by(GlobalDatabase())
        assert not constraint.satisfied_by(GlobalDatabase([fact("R", "a")]))


class TestTemplateForCombination:
    def test_template_membership_matches_poss(self, example51):
        """For U = full extensions, the frozen tableau database is possible."""
        combination = tuple(
            frozenset(fact("R", v) for v in values)
            for values in (["a", "b"], ["b", "c"])
        )
        # rename to local names as the construction expects extension facts
        combination = (
            frozenset({fact("V1", "a"), fact("V1", "b")}),
            frozenset({fact("V2", "b"), fact("V2", "c")}),
        )
        template = template_for_combination(example51, combination)
        world = GlobalDatabase(
            [fact("R", "a"), fact("R", "b"), fact("R", "c")]
        )
        assert template.admits(world)
        assert example51.admits(world)

    def test_constraint_count(self, example51):
        combination = (
            frozenset({fact("V1", "b")}),
            frozenset({fact("V2", "b")}),
        )
        template = template_for_combination(example51, combination)
        assert len(template.constraints) == 2


class TestMaterializeBuiltins:
    def test_after_facts(self):
        registry = default_registry()
        db = materialize_builtins(registry, [1899, 1900, 1950], ["After"])
        assert fact("After", 1950, 1900) in db
        assert fact("After", 1899, 1900) not in db

    def test_unknown_builtin(self):
        from repro.exceptions import SourceError

        with pytest.raises(SourceError):
            materialize_builtins(default_registry(), [1], ["Nope"])
