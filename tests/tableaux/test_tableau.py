"""Tests for tableaux and embedding search."""

from repro.model import Constant, GlobalDatabase, Variable, atom, fact
from repro.model.valuation import Substitution
from repro.tableaux import Tableau

x, y = Variable("x"), Variable("y")


class TestStructure:
    def test_set_semantics(self):
        t = Tableau([atom("R", x), atom("R", x)])
        assert len(t) == 1

    def test_variables_and_constants(self):
        t = Tableau([atom("R", x, "a"), atom("S", y)])
        assert t.variables() == {x, y}
        assert {c.value for c in t.constants()} == {"a"}

    def test_union(self):
        t = Tableau([atom("R", x)]) | Tableau([atom("S", y)])
        assert len(t) == 2

    def test_equality_hash(self):
        assert Tableau([atom("R", x)]) == Tableau([atom("R", x)])
        assert len({Tableau([atom("R", x)]), Tableau([atom("R", x)])}) == 1

    def test_substitute(self):
        t = Tableau([atom("R", x, y)])
        grounded = t.substitute(Substitution({x: Constant(1), y: Constant(2)}))
        assert grounded.is_ground()
        assert fact("R", 1, 2) in grounded


class TestFreeze:
    def test_freeze_grounds_with_distinct_constants(self):
        t = Tableau([atom("R", x, y), atom("S", y)])
        frozen, freezing = t.freeze()
        assert frozen.is_ground()
        images = {freezing.get(v) for v in t.variables()}
        assert len(images) == 2  # distinct fresh constants

    def test_freeze_avoids_taken(self):
        t = Tableau([atom("R", x)])
        frozen, freezing = t.freeze(taken_constants=[Constant("_frz1")])
        assert freezing.get(x) != Constant("_frz1")


class TestEmbeddings:
    def test_single_atom(self):
        t = Tableau([atom("R", x, y)])
        db = GlobalDatabase([fact("R", 1, 2), fact("R", 3, 4)])
        assert len(list(t.embeddings(db))) == 2

    def test_join_constraint(self):
        t = Tableau([atom("R", x, y), atom("R", y, x)])
        db = GlobalDatabase([fact("R", 1, 2), fact("R", 2, 1), fact("R", 3, 4)])
        embeddings = list(t.embeddings(db))
        values = {(e.get(x).value, e.get(y).value) for e in embeddings}
        assert values == {(1, 2), (2, 1)}

    def test_ground_atom_membership(self):
        t = Tableau([fact("R", 1), atom("S", x)])
        db_with = GlobalDatabase([fact("R", 1), fact("S", 2)])
        db_without = GlobalDatabase([fact("S", 2)])
        assert t.embeds_in(db_with)
        assert not t.embeds_in(db_without)

    def test_empty_tableau_embeds_everywhere(self):
        assert Tableau([]).embeds_in(GlobalDatabase())

    def test_seed_restricts(self):
        t = Tableau([atom("R", x)])
        db = GlobalDatabase([fact("R", 1), fact("R", 2)])
        seeded = list(t.embeddings(db, seed=Substitution({x: Constant(1)})))
        assert len(seeded) == 1
        assert seeded[0].get(x) == Constant(1)
