"""Differential tests for Theorem 4.1: poss(S) = ∪_U rep(T^U(S))."""

import pytest

from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.tableaux import (
    direct_possible_worlds,
    template_possible_worlds,
    theorem41_holds,
)

from tests.conftest import example51_domain, make_example51_collection


class TestIdentityCollections:
    def test_example51_m1(self, example51):
        assert theorem41_holds(example51, example51_domain(1))

    def test_example51_m0(self, example51):
        assert theorem41_holds(example51, example51_domain(0))

    def test_single_exact(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a"), fact("V1", "b")],
                    1,
                    1,
                    name="S1",
                )
            ]
        )
        assert theorem41_holds(col, ["a", "b", "c"])

    def test_sound_only(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 0, 1, name="S1"
                )
            ]
        )
        assert theorem41_holds(col, ["a", "b"])

    def test_complete_only(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 1, 0, name="S1"
                )
            ]
        )
        assert theorem41_holds(col, ["a", "b"])

    def test_inconsistent_both_sides_empty(self):
        col = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 1, 1, name="S1"
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1), [fact("V2", "b")], 0, 1, name="S2"
                ),
            ]
        )
        assert direct_possible_worlds(col, ["a", "b"]) == set()
        assert template_possible_worlds(col, ["a", "b"]) == set()


class TestGeneralViews:
    def test_projection_view(self):
        view = parse_rule("V1(x) <- R(x, y)")
        col = SourceCollection(
            [SourceDescriptor(view, [fact("V1", "a")], 1, 1, name="S1")]
        )
        assert theorem41_holds(col, ["a", "b"])

    def test_projection_view_partial_bounds(self):
        view = parse_rule("V1(x) <- R(x, y)")
        col = SourceCollection(
            [
                SourceDescriptor(
                    view, [fact("V1", "a"), fact("V1", "b")], "1/2", "1/2", name="S1"
                )
            ]
        )
        assert theorem41_holds(col, ["a", "b"])

    def test_two_relations(self):
        view = parse_rule("V1(x) <- R(x), S(x)")
        col = SourceCollection(
            [SourceDescriptor(view, [fact("V1", "a")], 1, 1, name="S1")]
        )
        assert theorem41_holds(col, ["a", "b"])

    def test_mixed_sources(self):
        v1 = parse_rule("V1(x) <- R(x, y)")
        v2 = parse_rule("V2(y) <- R(x, y)")
        col = SourceCollection(
            [
                SourceDescriptor(v1, [fact("V1", "a")], 1, "1/1", name="S1"),
                SourceDescriptor(v2, [fact("V2", "b")], 1, 1, name="S2"),
            ]
        )
        assert theorem41_holds(col, ["a", "b"])
