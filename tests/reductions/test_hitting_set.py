"""Tests for HS / HS* problems and solvers."""

import random

import pytest

from repro.exceptions import ReductionError
from repro.reductions import (
    HittingSetInstance,
    HSStarInstance,
    minimum_hitting_set,
    solve_exact,
    solve_greedy,
)


class TestInstances:
    def test_universe(self):
        inst = HittingSetInstance([{1, 2}, {3}], 2)
        assert inst.universe == {1, 2, 3}

    def test_empty_subset_rejected(self):
        with pytest.raises(ReductionError):
            HittingSetInstance([{1}, set()], 1)

    def test_no_subsets_rejected(self):
        with pytest.raises(ReductionError):
            HittingSetInstance([], 1)

    def test_negative_k_rejected(self):
        with pytest.raises(ReductionError):
            HittingSetInstance([{1}], -1)

    def test_is_hitting_set(self):
        inst = HittingSetInstance([{1, 2}, {2, 3}], 1)
        assert inst.is_hitting_set({2})
        assert not inst.is_hitting_set({1})          # misses {2,3}
        assert not inst.is_hitting_set({1, 3})       # size > K

    def test_hs_star_requires_singleton_last(self):
        HSStarInstance([{1, 2}, {3}], 2)
        with pytest.raises(ReductionError):
            HSStarInstance([{3}, {1, 2}], 2)


class TestExactSolver:
    def test_simple_hit(self):
        inst = HittingSetInstance([{1, 2}, {2, 3}], 1)
        assert solve_exact(inst) == frozenset({2})

    def test_infeasible_budget(self):
        inst = HittingSetInstance([{1}, {2}, {3}], 2)
        assert solve_exact(inst) is None

    def test_disjoint_subsets_need_one_each(self):
        inst = HittingSetInstance([{1}, {2}, {3}], 3)
        solution = solve_exact(inst)
        assert solution == frozenset({1, 2, 3})

    def test_k_zero_with_subsets(self):
        inst = HittingSetInstance([{1}], 0)
        assert solve_exact(inst) is None

    def test_solution_always_valid(self):
        rng = random.Random(5)
        for _ in range(30):
            subsets = [
                set(rng.sample(range(8), rng.randint(1, 4))) for _ in range(5)
            ]
            k = rng.randint(1, 5)
            inst = HittingSetInstance(subsets, k)
            solution = solve_exact(inst)
            if solution is not None:
                assert inst.is_hitting_set(solution)

    def test_exact_is_complete_vs_brute_force(self):
        """If brute force finds any hitting set of size <= K, so must we."""
        from itertools import combinations

        rng = random.Random(9)
        for _ in range(25):
            subsets = [
                set(rng.sample(range(6), rng.randint(1, 3))) for _ in range(4)
            ]
            k = rng.randint(1, 4)
            inst = HittingSetInstance(subsets, k)
            brute = any(
                inst.is_hitting_set(set(combo))
                for size in range(k + 1)
                for combo in combinations(sorted(inst.universe, key=repr), size)
            )
            assert (solve_exact(inst) is not None) == brute


class TestGreedy:
    def test_greedy_hits_everything(self):
        rng = random.Random(2)
        for _ in range(20):
            subsets = [
                set(rng.sample(range(10), rng.randint(1, 4))) for _ in range(6)
            ]
            inst = HittingSetInstance(subsets, 10)
            greedy = solve_greedy(inst)
            assert all(greedy & s for s in inst.subsets)

    def test_greedy_never_smaller_than_optimum(self):
        rng = random.Random(3)
        for _ in range(15):
            subsets = [
                set(rng.sample(range(7), rng.randint(1, 3))) for _ in range(5)
            ]
            optimum = minimum_hitting_set(subsets)
            greedy = solve_greedy(HittingSetInstance(subsets, len(optimum)))
            assert len(greedy) >= len(optimum)


class TestMinimum:
    def test_minimum_value(self):
        assert minimum_hitting_set([{1, 2}, {2, 3}, {3, 4}]) in (
            frozenset({2, 3}),
            frozenset({2, 4}),
            frozenset({1, 3}),
        )

    def test_single_subset(self):
        assert len(minimum_hitting_set([{5, 6}])) == 1
