"""Round-trip tests for Lemma 3.3 and Theorem 3.2 reductions."""

import random
from fractions import Fraction

import pytest

from repro.exceptions import ReductionError
from repro.model import GlobalDatabase, fact
from repro.consistency import check_identity
from repro.reductions import (
    HSStarInstance,
    HittingSetInstance,
    database_to_hitting_set,
    hitting_set_to_database,
    hs_star_to_collection,
    hs_to_hs_star,
    map_solution_back,
    map_solution_forward,
    solve_exact,
    solve_hs_star_via_consistency,
)


class TestLemma33:
    """HS reduces to HS*."""

    def test_transformation_shape(self):
        inst = HittingSetInstance([{1, 2}], 1)
        star, fresh = hs_to_hs_star(inst)
        assert isinstance(star, HSStarInstance)
        assert star.k == 2
        assert star.subsets[-1] == frozenset([fresh])
        assert fresh not in inst.universe

    def test_yes_maps_to_yes(self):
        inst = HittingSetInstance([{1, 2}, {2, 3}], 1)
        star, fresh = hs_to_hs_star(inst)
        hs_solution = solve_exact(inst)
        assert hs_solution is not None
        forward = map_solution_forward(hs_solution, fresh)
        assert star.is_hitting_set(forward)

    def test_no_maps_to_no(self):
        inst = HittingSetInstance([{1}, {2}, {3}], 2)
        star, _ = hs_to_hs_star(inst)
        assert solve_exact(inst) is None
        assert solve_exact(star) is None

    def test_star_solution_maps_back(self):
        inst = HittingSetInstance([{1, 2}, {2, 3}], 1)
        star, fresh = hs_to_hs_star(inst)
        star_solution = solve_exact(star)
        back = map_solution_back(star_solution, fresh)
        assert inst.is_hitting_set(back)

    def test_map_back_requires_fresh(self):
        with pytest.raises(ReductionError):
            map_solution_back(frozenset({1}), "_fresh")

    @pytest.mark.parametrize("seed", range(10))
    def test_equisolvability_random(self, seed):
        rng = random.Random(seed)
        subsets = [
            set(rng.sample(range(6), rng.randint(1, 3))) for _ in range(4)
        ]
        k = rng.randint(1, 4)
        inst = HittingSetInstance(subsets, k)
        star, _ = hs_to_hs_star(inst)
        assert (solve_exact(inst) is not None) == (solve_exact(star) is not None)


class TestTheorem32:
    """HS* reduces to CONSISTENCY."""

    def test_collection_shape(self):
        star = HSStarInstance([{1, 2}, {3}], 2)
        col = hs_star_to_collection(star)
        assert len(col) == 2
        assert col[0].completeness_bound == Fraction(1, 2)
        assert col[0].soundness_bound == Fraction(1, 2)   # 1/|A_1|
        assert col[1].soundness_bound == Fraction(1)       # singleton

    def test_k_zero_rejected(self):
        with pytest.raises(ReductionError):
            hs_star_to_collection(HSStarInstance([{1}], 0))

    def test_database_solution_mappings(self):
        db = GlobalDatabase([fact("R", 1), fact("R", 3)])
        assert database_to_hitting_set(db) == frozenset({1, 3})
        assert hitting_set_to_database(frozenset({1, 3})) == db

    def test_yes_instance(self):
        star = HSStarInstance([{1, 2}, {2, 3}, {4}], 2)
        solution = solve_hs_star_via_consistency(star)
        assert solution is not None and star.is_hitting_set(solution)

    def test_no_instance(self):
        star = HSStarInstance([{1}, {2}, {3}, {4}], 3)
        assert solve_hs_star_via_consistency(star) is None

    def test_witness_database_respects_reduction(self):
        star = HSStarInstance([{1, 2}, {2, 3}, {4}], 2)
        col = hs_star_to_collection(star)
        result = check_identity(col)
        assert result.consistent
        assert star.is_hitting_set(database_to_hitting_set(result.witness))

    @pytest.mark.parametrize("seed", range(12))
    def test_equisolvability_random(self, seed):
        rng = random.Random(100 + seed)
        subsets = [
            set(rng.sample(range(1, 7), rng.randint(1, 3))) for _ in range(3)
        ]
        singleton_element = rng.randint(10, 12)
        subsets.append({singleton_element})
        k = rng.randint(1, 5)
        star = HSStarInstance(subsets, k)
        direct = solve_exact(star)
        via_consistency = solve_hs_star_via_consistency(star)
        assert (direct is not None) == (via_consistency is not None)
        if via_consistency is not None:
            assert star.is_hitting_set(via_consistency)


class TestFullChain:
    """HS → HS* → CONSISTENCY, end to end (the Theorem 3.2 pipeline)."""

    @pytest.mark.parametrize("seed", range(8))
    def test_hs_solved_through_consistency(self, seed):
        rng = random.Random(200 + seed)
        subsets = [
            set(rng.sample(range(5), rng.randint(1, 3))) for _ in range(4)
        ]
        k = rng.randint(1, 4)
        inst = HittingSetInstance(subsets, k)
        star, fresh = hs_to_hs_star(inst)
        star_solution = solve_hs_star_via_consistency(star)
        direct = solve_exact(inst)
        assert (direct is not None) == (star_solution is not None)
        if star_solution is not None:
            assert inst.is_hitting_set(map_solution_back(star_solution, fresh))
