"""E13 — the §2.2 auditing methodology, end to end.

Accounting systems declare bounds obtained by statistical auditing (sample
size from the target confidence, Clopper–Pearson lower bound, FD-derived
completeness). The design-level guarantee is *probabilistic*: a 95%-level
lower bound should under-shoot the true soundness in ≈95% of audits. The
bench measures that empirical coverage and the conservatism (how far below
the truth the declared bound sits), across error rates.
"""

import random
import time

from repro.workloads import accounting

from benchmarks.conftest import write_table


def test_e13_coverage_table(benchmark, results_dir):
    """Empirical coverage of the 95% audit bounds across error rates."""

    def sweep():
        rows = []
        for error_rate in (0.02, 0.1, 0.25):
            holds = 0
            total = 0
            slack_sum = 0.0
            for seed in range(20):
                workload = accounting.generate(
                    n_systems=2,
                    n_transactions=150,
                    loss_rate=0.1,
                    error_rate=error_rate,
                    confidence=0.95,
                    rng=random.Random(int(error_rate * 1000) + seed),
                )
                for system in workload.systems:
                    total += 1
                    declared = float(system.descriptor.soundness_bound)
                    true_value = float(system.true_soundness)
                    if declared <= true_value:
                        holds += 1
                    slack_sum += true_value - declared
            coverage = holds / total
            rows.append(
                [
                    f"{error_rate:.2f}",
                    total,
                    f"{coverage:.3f}",
                    f"{slack_sum / total:+.4f}",
                ]
            )
            assert coverage >= 0.8  # 95% design level, finite-sample noise
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e13_audit_coverage",
        "E13a: Clopper-Pearson audit bounds — empirical coverage at the "
        "95% design level",
        ["error rate", "audits", "coverage", "mean slack (true - declared)"],
        rows,
        notes=[
            "coverage stays near/above the design level; slack is the price "
            "of the one-sided guarantee",
        ],
    )


def test_e13_ground_truth_admission_table(benchmark, results_dir):
    """How often the (unknowable) ledger is a possible world of the audited
    collection — i.e. how often declared bounds are jointly honest."""

    def sweep():
        rows = []
        for loss_rate in (0.05, 0.15, 0.3):
            admitted = 0
            runs = 15
            for seed in range(runs):
                workload = accounting.generate(
                    n_systems=2,
                    n_transactions=120,
                    loss_rate=loss_rate,
                    error_rate=0.08,
                    rng=random.Random(7000 + seed),
                )
                if workload.collection.admits(workload.ledger):
                    admitted += 1
            rows.append([f"{loss_rate:.2f}", runs, f"{admitted / runs:.2f}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e13_admission",
        "E13b: ledger admitted as a possible world (joint honesty rate)",
        ["loss rate", "runs", "admission rate"],
        rows,
    )


def test_e13_generation_speed(benchmark):
    """Cost of one audited-workload generation (ledger + 2 audits)."""
    benchmark(
        lambda: accounting.generate(
            n_systems=2, n_transactions=150, rng=random.Random(3)
        )
    )
