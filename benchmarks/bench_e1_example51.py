"""E1 — Example 5.1: closed-form confidences and their large-m limits.

Regenerates the paper's only worked quantitative result. Our exact counts
(cross-checked against brute force and hand enumeration) give, over
dom = {a, b, c, d_1..d_m}:

    conf(R(a)) = conf(R(c)) = (m+3)/(2m+5)
    conf(R(b))              = (2m+4)/(2m+5)
    conf(R(d_i))            = 2/(2m+5)

The paper prints these same families with m shifted by one — an arithmetic
slip documented in EXPERIMENTS.md; the limits (1/2, 1, 0) agree. The bench
also times the block-counting algorithm, demonstrating the "exponential in
principle" computation is polynomial in m here.
"""

from fractions import Fraction

from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence import BlockCounter, IdentityInstance

from benchmarks.conftest import write_table


def example51_collection() -> SourceCollection:
    return SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1),
                [fact("V1", "a"), fact("V1", "b")],
                "1/2", "1/2", name="S1",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "b"), fact("V2", "c")],
                "1/2", "1/2", name="S2",
            ),
        ]
    )


def domain(m: int):
    return ["a", "b", "c"] + [f"d{i}" for i in range(1, m + 1)]


def confidences_for(m: int):
    counter = BlockCounter(IdentityInstance(example51_collection(), domain(m)))
    return {
        "a": counter.confidence(fact("R", "a")),
        "b": counter.confidence(fact("R", "b")),
        "c": counter.confidence(fact("R", "c")),
        "d": counter.confidence(fact("R", "d1")) if m >= 1 else None,
    }


def test_e1_table(benchmark, results_dir):
    """Regenerate the Example 5.1 confidence table across m."""
    all_conf = benchmark.pedantic(
        lambda: {m: confidences_for(m) for m in (1, 2, 5, 10, 50, 200)},
        rounds=1,
        iterations=1,
    )
    rows = []
    for m in (1, 2, 5, 10, 50, 200):
        conf = all_conf[m]
        ours_a = Fraction(m + 3, 2 * m + 5)
        ours_b = Fraction(2 * m + 4, 2 * m + 5)
        ours_d = Fraction(2, 2 * m + 5)
        paper_a = Fraction(m + 2, 2 * m + 3)
        paper_b = Fraction(2 * m + 2, 2 * m + 3)
        assert conf["a"] == conf["c"] == ours_a
        assert conf["b"] == ours_b
        assert conf["d"] == ours_d
        rows.append(
            [
                m,
                f"{conf['a']} (~{float(conf['a']):.4f})",
                f"{conf['b']} (~{float(conf['b']):.4f})",
                f"{conf['d']} (~{float(conf['d']):.4f})",
                f"{paper_a}",
                f"{paper_b}",
            ]
        )
    # asymptotics: conf(b) -> 1, conf(a) -> 1/2, conf(d) -> 0
    big = confidences_for(400)
    assert abs(float(big["b"]) - 1) < 0.01
    assert abs(float(big["a"]) - 0.5) < 0.01
    assert float(big["d"]) < 0.01
    write_table(
        "e1_example51",
        "E1: Example 5.1 exact confidences over dom = {a,b,c,d_1..d_m}",
        ["m", "conf(a)=conf(c)", "conf(b)", "conf(d_i)", "paper a", "paper b"],
        rows,
        notes=[
            "paper's printed formulas equal ours with m -> m-1 (off-by-one slip)",
            "limits m->inf: conf(b)->1, conf(a)->1/2, conf(d)->0 (paper agrees)",
        ],
    )


def test_e1_block_counting_speed(benchmark):
    """Time exact confidence at m = 200 (fact space of 203 variables)."""
    collection = example51_collection()
    dom = domain(200)

    def run():
        counter = BlockCounter(IdentityInstance(collection, dom))
        return counter.confidence(fact("R", "b"))

    result = benchmark(run)
    assert result == Fraction(404, 405)


def test_e1_scaling_in_m(benchmark, results_dir):
    """Counting cost grows polynomially in m (the paper's method is 2^N)."""
    import time

    def sweep():
        rows = []
        for m in (10, 100, 1000):
            start = time.perf_counter()
            counter = BlockCounter(
                IdentityInstance(example51_collection(), domain(m))
            )
            counter.confidence(fact("R", "b"))
            elapsed = time.perf_counter() - start
            rows.append([m, 3 + m, f"{elapsed * 1000:.2f} ms", f"2^{3 + m}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e1_scaling",
        "E1b: block counting vs the paper's brute-force bound",
        ["m", "N (variables)", "block counting", "brute-force worlds"],
        rows,
    )


def test_e1_engine_memoization(benchmark, results_dir):
    """The memoized engine on Example 5.1 at m = 200 (E1c).

    The first pass computes one counting task per signature block plus the
    denominator; the second pass (same engine, warm memo) answers every
    task from the cache. Alpha-equivalent blocks collide on one cache line,
    so even the cold pass dispatches fewer sweeps than it submits tasks.
    """
    import time

    from repro.confidence.engine import ConfidenceEngine, LRUMemo

    collection = example51_collection()
    dom = domain(200)
    memo = LRUMemo(256)

    def run():
        rows = []
        for label in ("cold", "warm"):
            engine = ConfidenceEngine(collection, dom, memo=memo)
            start = time.perf_counter()
            confidences = engine.confidences()
            elapsed = time.perf_counter() - start
            assert confidences[fact("R", "b")] == Fraction(404, 405)
            snapshot = engine.stats.cache
            rows.append(
                [
                    label,
                    engine.stats.tasks_submitted,
                    engine.stats.tasks_memoized,
                    engine.stats.tasks_dispatched,
                    f"{elapsed * 1000:.2f} ms",
                    f"{snapshot.hit_rate:.0%}",
                ]
            )
            engine.close()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table(
        "e1_engine_cache",
        "E1c: memoized engine on Example 5.1 (m = 200)",
        ["pass", "tasks", "memoized", "computed", "wall time", "cache hit rate"],
        rows,
        notes=[
            "warm pass answers every counting task from the canonical-key "
            "LRU memo without running a single DP sweep",
        ],
    )
