#!/usr/bin/env python3
"""E21 — the unified cache runtime: warm-path overhead and bounded memory.

The cache refactor moved every module-global cache onto one registry with
byte accounting, a shared budget, and tag invalidation. That machinery
rides on the hottest paths in the repo (memo lookups, per-world scan
caches), so this benchmark pins the two properties the refactor must not
cost:

* **warm-path overhead** — the E18 per-world workload (same join, same
  world pool) re-run on the enrolled runtime with no budget set. The warm
  row must keep E18's speedup floor over backtracking: the registry's
  accounting must be invisible when it has nothing to do.
* **world churn under budget** — a long stream of *distinct* worlds (10k
  full, 1.5k quick) evaluated once each with a byte budget set. Every
  store triggers accounting and, at steady state, a weighted eviction.
  Accounted bytes must never exceed the budget at any sample point, the
  budget must actually bite (``budget_evictions > 0``), and every answer
  is checked against the backtracking oracle — eviction pressure must
  never change an answer.

Usage::

    PYTHONPATH=src python benchmarks/bench_e21_cache.py            # full
    PYTHONPATH=src python benchmarks/bench_e21_cache.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_e21_cache.py --json out.json

Writes ``benchmarks/results/e21_cache.txt`` and a JSON trajectory entry
(default ``BENCH_cache.json`` at the repo root). Exits non-zero when the
warm row falls below the floor or the budget fails to bound memory.
"""

from __future__ import annotations

import argparse
import datetime
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for _p in (REPO_ROOT, REPO_ROOT / "src"):
    if str(_p) not in sys.path:
        sys.path.insert(0, str(_p))

from repro.cache import cache_registry, set_cache_budget_mb
from repro.model import GlobalDatabase, fact
from repro.plan import clear_data_sources, evaluate as plan_evaluate
from repro.queries import evaluate_backtracking, parse_rule

from benchmarks.conftest import write_table

#: Same floors as E18: the runtime must not eat the plan pipeline's win.
SPEEDUP_FLOOR_FULL = 3.0
SPEEDUP_FLOOR_QUICK = 1.5

#: Far below the layer's natural ~0.7 MiB churn footprint, so the budget
#: actually bites: steady-state stores must evict to stay under it.
CHURN_BUDGET_MB = 0.25

JOIN_RULE = "ans(x, z) <- E(x, y), F(y, z)"


def best_of(fn, reps: int) -> float:
    """Fastest of *reps* timed calls, in seconds."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def make_world_pool(pool_size: int, seed: int = 18):
    """The E18 world pool, bit-for-bit: perturbed ~60-fact E/F databases."""
    rng = random.Random(seed)
    base_e = [(f"e{i}", f"m{i % 8}") for i in range(30)]
    base_f = [(f"m{i % 8}", f"t{i}") for i in range(30)]
    worlds = []
    for _ in range(pool_size):
        e = [p for p in base_e if rng.random() > 0.08]
        f = [p for p in base_f if rng.random() > 0.08]
        worlds.append(
            GlobalDatabase(
                [fact("E", *p) for p in e] + [fact("F", *p) for p in f]
            )
        )
    return worlds


# -- warm-path overhead --------------------------------------------------------

def run_warm_path(quick: bool):
    pool_size, cycles, reps = (50, 6, 2) if quick else (100, 20, 3)
    worlds = make_world_pool(pool_size)
    query = parse_rule(JOIN_RULE)
    evaluations = pool_size * cycles

    clear_data_sources()
    for world in worlds:
        if plan_evaluate(query, world) != evaluate_backtracking(query, world):
            raise AssertionError("E21: plan and backtracking answers differ")

    def plan_pass():
        for _ in range(cycles):
            for world in worlds:
                plan_evaluate(query, world)

    def boxed_pass():
        for _ in range(cycles):
            for world in worlds:
                evaluate_backtracking(query, world)

    t_plan = best_of(plan_pass, reps)
    t_boxed = best_of(boxed_pass, reps)
    warm_speedup = t_boxed / t_plan
    rows = [
        ["warm per-world", f"{evaluations} evals, pool={pool_size}",
         f"{t_plan * 1000:.1f} ms", f"{t_boxed * 1000:.1f} ms",
         f"{warm_speedup:.2f}x"],
    ]
    record = {
        "pool_size": pool_size,
        "evaluations": evaluations,
        "plan_warm_ms": round(t_plan * 1000, 3),
        "backtracking_ms": round(t_boxed * 1000, 3),
        "warm_speedup": round(warm_speedup, 2),
    }
    return rows, record


# -- world churn under a byte budget -------------------------------------------

def churn_worlds(count: int, seed: int = 21):
    """*Distinct* small worlds — no pool cycling, every store is fresh."""
    rng = random.Random(seed)
    for i in range(count):
        e = [(f"e{rng.randrange(40)}", f"m{rng.randrange(8)}")
             for _ in range(18)]
        f = [(f"m{rng.randrange(8)}", f"t{rng.randrange(40)}")
             for _ in range(18)]
        yield GlobalDatabase(
            [fact("E", *p) for p in e] + [fact("F", *p) for p in f]
        )


def run_churn(quick: bool):
    count = 1_500 if quick else 10_000
    check_every = 1 if quick else 4  # oracle-check cadence (oracle is slow)
    registry = cache_registry()
    query = parse_rule(JOIN_RULE)
    budget_bytes = int(CHURN_BUDGET_MB * 1024 * 1024)

    clear_data_sources()
    set_cache_budget_mb(CHURN_BUDGET_MB)
    before = registry.stats()
    max_bytes = 0
    mismatches = 0
    start = time.perf_counter()
    try:
        for i, world in enumerate(churn_worlds(count)):
            answers = plan_evaluate(query, world)
            if i % check_every == 0:
                if answers != evaluate_backtracking(query, world):
                    mismatches += 1
            total = registry.total_bytes()
            if total > max_bytes:
                max_bytes = total
    finally:
        elapsed = time.perf_counter() - start
        after = registry.stats()
        set_cache_budget_mb(None)

    budget_evictions = after["budget_evictions"] - before["budget_evictions"]
    bounded = max_bytes <= budget_bytes
    rows = [
        ["world churn", f"{count} distinct worlds, "
         f"budget {CHURN_BUDGET_MB:.1f} MB",
         f"{elapsed * 1000:.0f} ms",
         f"peak {max_bytes / 1024:.0f} KiB",
         "bounded" if bounded else "OVER BUDGET"],
    ]
    record = {
        "worlds": count,
        "budget_bytes": budget_bytes,
        "max_accounted_bytes": max_bytes,
        "bounded": bounded,
        "budget_evictions": budget_evictions,
        "answer_mismatches": mismatches,
        "elapsed_ms": round(elapsed * 1000, 1),
        "per_world_us": round(elapsed / count * 1e6, 1),
    }
    return rows, record


# -- driver --------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller pool, shorter churn (CI smoke mode)",
    )
    parser.add_argument(
        "--json", type=Path, default=REPO_ROOT / "BENCH_cache.json",
        help="where to write the JSON trajectory entry",
    )
    args = parser.parse_args(argv)
    floor = SPEEDUP_FLOOR_QUICK if args.quick else SPEEDUP_FLOOR_FULL
    mode = "quick" if args.quick else "full"

    warm_rows, warm_record = run_warm_path(args.quick)
    churn_rows, churn_record = run_churn(args.quick)
    tree = cache_registry().stats()

    headline = warm_record["warm_speedup"]
    passed = (
        headline >= floor
        and churn_record["bounded"]
        and churn_record["budget_evictions"] > 0
        and churn_record["answer_mismatches"] == 0
    )
    notes = [
        f"mode={mode}; acceptance: warm speedup >= {floor:.1f}x AND "
        "churn peak <= budget AND budget_evictions > 0 AND no mismatches",
        f"headline: warm {headline:.2f}x, churn peak "
        f"{churn_record['max_accounted_bytes'] / 1024:.0f} KiB of "
        f"{churn_record['budget_bytes'] / 1024:.0f} KiB budget, "
        f"{churn_record['budget_evictions']} budget evictions -> "
        f"{'PASS' if passed else 'FAIL'}",
        "warm row = E18's per-world workload on the enrolled runtime, no "
        "budget set (accounting overhead only)",
        "churn row = distinct worlds streamed once each under a byte "
        "budget; every sampled answer checked against backtracking",
    ]
    table = write_table(
        "e21_cache",
        "E21: unified cache runtime — warm overhead and budgeted churn",
        ["workload", "case", "time", "memory", "verdict"],
        warm_rows + churn_rows,
        notes=notes,
    )
    print(table)

    payload = {
        "bench": "e21_cache",
        "date": datetime.date.today().isoformat(),
        "mode": mode,
        "workloads": {
            "warm_path": warm_record,
            "churn": churn_record,
        },
        "cache_tree": tree,
        "acceptance": {
            "speedup_floor": floor,
            "warm_speedup": headline,
            "passed": passed,
        },
    }
    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}")

    if not passed:
        print("FAIL: E21 acceptance criteria not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
