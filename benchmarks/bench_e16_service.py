"""E16 — the mediator service under open-loop load.

Two tables:

1. **Micro-batching** — the same request burst served per-request
   (``max_batch=1``) and micro-batched. Batched dispatch amortizes one
   engine call over the whole batch, so throughput rises with the batch
   cap; the memo-off ablation shows the margin without the engine cache
   hiding the per-call cost.
2. **Fault injection** — the burst under injected source latency,
   transient errors, and tight deadlines. Degradation must be *graceful*:
   every request ends in an explicit terminal status (OK / TIMEOUT /
   REJECTED / ERROR), never a crash or a silently wrong confidence.
"""

import asyncio
import time

from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.service import (
    FaultPolicy,
    MediatorService,
    RequestStatus,
    SchedulerConfig,
)

from benchmarks.conftest import write_table


def _chain_collection(n_sources: int) -> SourceCollection:
    """Example 5.1 generalized: S_i claims {e_i, e_{i+1}}, completeness
    1/4 and soundness 1/2 (a 1/2 completeness floor on every overlapping
    pair admits no database once the chain outgrows Example 5.1)."""
    sources = []
    for i in range(1, n_sources + 1):
        sources.append(
            SourceDescriptor(
                identity_view(f"V{i}", "R", 1),
                [fact(f"V{i}", f"e{i}"), fact(f"V{i}", f"e{i + 1}")],
                "1/4",
                "1/2",
                name=f"S{i}",
            )
        )
    return SourceCollection(sources)


def _domain(n_sources: int, anonymous: int = 2):
    claimed = [f"e{i}" for i in range(1, n_sources + 2)]
    return claimed + [f"x{i}" for i in range(anonymous)]


async def _burst(service: MediatorService, requests: int, timeout=None):
    """Open-loop: admit everything, then await everything."""
    facts = service.registry.snapshot().covered_facts()
    async with service:
        futures = []
        for i in range(requests):
            wanted = [facts[i % len(facts)], facts[(i + 1) % len(facts)]]
            futures.append(await service.submit(wanted, timeout=timeout))
        return [await f for f in futures]


def _run_config(collection, domain, requests, batch, cache_size, policy=None,
                timeout=None):
    service = MediatorService(
        collection,
        domain,
        config=SchedulerConfig(
            max_queue=max(256, requests),
            max_batch=batch,
            engine_cache_size=cache_size,
        ),
        fault_policy=policy,
    )
    start = time.perf_counter()
    responses = asyncio.run(_burst(service, requests, timeout=timeout))
    elapsed = time.perf_counter() - start
    return service, responses, elapsed


def test_e16_batching(benchmark, results_dir):
    """Throughput per-request vs micro-batched, memo on and off."""
    collection = _chain_collection(8)
    domain = _domain(8)
    requests = 160

    def sweep():
        rows = []
        for cache_size, cache_label in ((0, "off"), (None, "shared")):
            baseline = None
            for batch in (1, 4, 16, 32):
                service, responses, elapsed = _run_config(
                    collection, domain, requests, batch, cache_size
                )
                assert all(r.ok for r in responses)
                counters = service.metrics.snapshot()["counters"]
                latency = service.metrics.histogram("latency").snapshot()
                throughput = requests / elapsed
                if batch == 1:
                    baseline = throughput
                rows.append(
                    (
                        cache_label,
                        batch,
                        counters["engine_calls"],
                        f"{throughput:8.0f}",
                        f"{throughput / baseline:5.2f}x",
                        f"{1000 * latency['p50']:7.2f}",
                        f"{1000 * latency['p95']:7.2f}",
                    )
                )
            # The acceptance claim: batching beats per-request dispatch.
            per_request = float(rows[-4][3])
            batched = float(rows[-1][3])
            assert batched > per_request, (
                f"batched throughput {batched} <= per-request {per_request} "
                f"(memo {cache_label})"
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e16_batching",
        "E16: micro-batching vs per-request dispatch "
        f"(8-source chain, {requests} requests, open loop)",
        ["memo", "max_batch", "engine calls", "req/s", "speedup",
         "p50 ms", "p95 ms"],
        rows,
        notes=[
            "speedup is against max_batch=1 within the same memo setting",
            "one engine call serves a whole batch; the memo additionally "
            "reuses counting tasks across calls",
        ],
    )


def test_e16_fault_injection(benchmark, results_dir):
    """Graceful degradation: explicit statuses under injected faults."""
    collection = _chain_collection(6)
    domain = _domain(6)
    requests = 80

    def sweep():
        rows = []
        scenarios = [
            ("healthy", None, None),
            ("latency 2ms", FaultPolicy(latency=0.002, seed=11), None),
            (
                "errors 50%",
                FaultPolicy(error_rate=0.5, seed=7),
                None,
            ),
            (
                "latency + 5ms deadline",
                FaultPolicy(latency=0.01, seed=11),
                0.005,
            ),
        ]
        for label, policy, timeout in scenarios:
            service, responses, elapsed = _run_config(
                collection, domain, requests, 8, None,
                policy=policy, timeout=timeout,
            )
            by_status = {status: 0 for status in RequestStatus}
            for response in responses:
                by_status[response.status] += 1
            # Graceful: every request reached exactly one terminal status.
            assert sum(by_status.values()) == requests
            counters = service.metrics.snapshot()["counters"]
            latency = service.metrics.histogram("latency").snapshot()
            rows.append(
                (
                    label,
                    by_status[RequestStatus.OK],
                    by_status[RequestStatus.TIMEOUT],
                    by_status[RequestStatus.ERROR],
                    counters.get("source_read_retries", 0),
                    f"{1000 * latency['p95']:7.2f}",
                )
            )
        healthy, latency_row, errors, deadline = rows
        assert healthy[1] == requests            # all OK when healthy
        assert latency_row[1] == requests        # latency alone only slows
        assert errors[1] + errors[3] == requests  # errors: OK or explicit ERROR
        assert errors[4] > 0                      # ...after real retries
        assert deadline[2] > 0                    # deadlines expire explicitly
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e16_faults",
        f"E16: fault injection over a {requests}-request burst "
        "(6-source chain, batch 8, retries 3)",
        ["scenario", "ok", "timeout", "error", "retries", "p95 ms"],
        rows,
        notes=[
            "every request ends in an explicit terminal status — the "
            "service never crashes or answers from a wrong snapshot",
            "TIMEOUT responses carry no confidences (no silently late or "
            "partial answers)",
        ],
    )
