"""E15 — answering queries using views (§1.2's Information-Manifold context).

The rewriting pipeline answers global-schema queries directly from source
extensions, without possible-world reasoning. Measured claims:

* with exact sources, the equivalent rewriting returns exactly the true
  answer (Motro-sound and Motro-complete), at a fraction of the cost of
  possible-world enumeration;
* with noisy sources, answers remain Motro-sound for sound sources and the
  heuristic support score ranks correct answers above corrupted ones;
* planner cost grows with the number of views but stays in milliseconds on
  realistic view sets.
"""

import random
import time

from repro.model import GlobalDatabase, fact
from repro.queries import evaluate, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.baselines import classify_answer
from repro.rewriting import execute_annotated, execute_plan, find_rewritings
from repro.workloads.perturb import perturb_extension, slack_bound

from benchmarks.conftest import write_table

V_FULL = parse_rule("VFull(x, y) <- R(x, y)")
V_PROJ = parse_rule("VProj(x) <- R(x, y)")
V_S = parse_rule("VS(y, z) <- S(y, z)")
V_JOINED = parse_rule("VJ(x, z) <- R(x, y), S(y, z)")
QUERY = parse_rule("ans(x, z) <- R(x, y), S(y, z)")


def ground_truth(n_pairs: int, seed: int = 3) -> GlobalDatabase:
    rng = random.Random(seed)
    facts = []
    for i in range(n_pairs):
        mid = f"m{i}"
        facts.append(fact("R", f"a{i}", mid))
        facts.append(fact("S", mid, f"z{i % 4}"))
    return GlobalDatabase(facts)


def collection_from_truth(
    truth: GlobalDatabase,
    drop: float,
    corrupt: float,
    rng: random.Random,
) -> SourceCollection:
    sources = []
    domain = sorted({c.value for f in truth for c in f.args})
    for view, name in ((V_FULL, "SR"), (V_S, "SS")):
        intended = view.apply(truth)
        perturbed = perturb_extension(intended, drop, corrupt, domain, rng)
        sources.append(
            SourceDescriptor(
                view,
                perturbed.extension,
                slack_bound(perturbed.completeness),
                slack_bound(perturbed.soundness),
                name=name,
            )
        )
    return SourceCollection(sources)


def test_e15_exact_sources_table(benchmark, results_dir):
    """Equivalent rewriting over exact sources = the true answer."""

    def sweep():
        rows = []
        for n_pairs in (10, 50, 200):
            truth = ground_truth(n_pairs)
            collection = collection_from_truth(
                truth, 0.0, 0.0, random.Random(1)
            )
            start = time.perf_counter()
            plans = find_rewritings(QUERY, [V_FULL, V_PROJ, V_S])
            plan_time = time.perf_counter() - start
            assert plans and plans[0].equivalent
            start = time.perf_counter()
            answers = execute_plan(plans[0].plan, collection)
            execute_time = time.perf_counter() - start
            sound, complete = classify_answer(answers, QUERY, truth)
            assert sound and complete
            rows.append(
                [
                    n_pairs,
                    len(answers),
                    "sound+complete",
                    f"{plan_time * 1000:.1f} ms",
                    f"{execute_time * 1000:.1f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e15_exact_sources",
        "E15a: equivalent rewriting over exact sources",
        ["|truth pairs|", "|answers|", "Motro class", "t plan", "t execute"],
        rows,
        notes=["answers equal the hypothetical real-world answer exactly"],
    )


def test_e15_noisy_support_table(benchmark, results_dir):
    """Support-score ranking quality under source corruption."""

    def sweep():
        rows = []
        for corrupt in (0.0, 0.1, 0.3):
            truth = ground_truth(40)
            collection = collection_from_truth(
                truth, 0.1, corrupt, random.Random(int(corrupt * 100) + 7)
            )
            plans = find_rewritings(QUERY, [V_FULL, V_S])
            annotated = execute_annotated(plans[0].plan, collection)
            if not annotated:
                rows.append([f"{corrupt:.1f}", 0, "-", "-"])
                continue
            true_answer = evaluate(QUERY, truth)
            correct = sum(1 for a in annotated if a.fact in true_answer)
            top = annotated[: max(1, len(annotated) // 2)]
            top_correct = sum(1 for a in top if a.fact in true_answer)
            rows.append(
                [
                    f"{corrupt:.1f}",
                    len(annotated),
                    f"{correct / len(annotated):.2f}",
                    f"{top_correct / len(top):.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e15_noisy_support",
        "E15b: answer precision under corruption (all vs top-half by support)",
        ["corrupt rate", "|answers|", "precision (all)", "precision (top half)"],
        rows,
        notes=[
            "support = product of contributing sources' soundness bounds; "
            "a ranking heuristic, not the exact confidence",
        ],
    )


def test_e15_planner_cost_table(benchmark, results_dir):
    """Planner cost and plan counts as the view set grows."""

    def sweep():
        view_sets = [
            ("2 views", [V_FULL, V_S]),
            ("3 views", [V_FULL, V_PROJ, V_S]),
            ("4 views", [V_FULL, V_PROJ, V_S, V_JOINED]),
        ]
        rows = []
        for name, views in view_sets:
            start = time.perf_counter()
            plans = find_rewritings(QUERY, views)
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    name,
                    len(plans),
                    sum(1 for p in plans if p.equivalent),
                    f"{elapsed * 1000:.1f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e15_planner_cost",
        "E15c: planner cost vs view-set size",
        ["view set", "sound plans", "equivalent plans", "time"],
        rows,
    )


def test_e15_execution_speed(benchmark):
    """Steady-state plan execution over a 200-pair collection."""
    truth = ground_truth(200)
    collection = collection_from_truth(truth, 0.0, 0.0, random.Random(2))
    plan = find_rewritings(QUERY, [V_FULL, V_S])[0].plan
    benchmark(lambda: execute_plan(plan, collection))
