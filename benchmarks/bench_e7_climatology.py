"""E7 — the §1.1 motivating scenario end-to-end.

Synthetic GHCN: per-country temperature sources with selection views,
perturbed extensions, measured (c, s) declarations. Reproduced claims:

* the declared bounds are honest — the ground truth is a possible world
  and measured quality never falls below declarations;
* the functional-dependency argument (§2.2) predicts source completeness
  a priori (stations × years × months);
* heavier perturbation degrades declared quality monotonically (shape);
* the planner contacts high-completeness sources first and reaches target
  coverage with a short prefix.
"""

import random
import time

from repro.integration import Mediator, plan_prefix
from repro.queries import parse_rule
from repro.workloads import climatology

from benchmarks.conftest import write_table


def test_e7_honesty_table(benchmark, results_dir):
    """Declared vs measured quality per source, several perturbation levels."""

    def sweep():
        rows = []
        for drop, corrupt in [(0.0, 0.0), (0.1, 0.05), (0.3, 0.15), (0.5, 0.3)]:
            workload = climatology.generate(
                n_countries=2,
                stations_per_country=3,
                years=(1989, 1990, 1991),
                months=(1, 7),
                drop_rate=drop,
                corrupt_rate=corrupt,
                rng=random.Random(int(drop * 100) * 7 + int(corrupt * 100)),
            )
            assert workload.collection.admits(workload.ground_truth)
            s1 = workload.collection.by_name("S1")
            rows.append(
                [
                    f"{drop:.2f}",
                    f"{corrupt:.2f}",
                    f"{float(s1.completeness_bound):.3f}",
                    f"{float(s1.soundness_bound):.3f}",
                    f"{float(s1.completeness(workload.ground_truth)):.3f}",
                    f"{float(s1.soundness(workload.ground_truth)):.3f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # shape: quality declines as perturbation grows
    completeness_values = [float(r[2]) for r in rows]
    assert completeness_values[0] == 1.0
    assert completeness_values[-1] < completeness_values[0]
    write_table(
        "e7_honesty",
        "E7a: declared bounds vs measured quality (source S1)",
        ["drop", "corrupt", "declared c", "declared s", "measured c", "measured s"],
        rows,
        notes=["ground truth admitted as a possible world at every level"],
    )


def test_e7_fd_prediction_table(benchmark, results_dir):
    """FD-derived intended sizes match the views' actual intended content."""

    def sweep():
        workload = climatology.generate(
            n_countries=3,
            stations_per_country=2,
            years=(1989, 1990, 1991, 1992),
            months=(1, 4, 7, 10),
            cutoff_years={"C2": 1990},
            drop_rate=0.2,
            corrupt_rate=0.1,
            rng=random.Random(77),
        )
        rows = []
        for i, country in enumerate(workload.countries, start=1):
            source = workload.collection.by_name(f"S{i}")
            cutoff = 1990 if country == "C2" else min(workload.years) - 1
            predicted = workload.fd_intended_size(country, cutoff)
            actual = len(source.intended_content(workload.ground_truth))
            assert predicted == actual, country
            rows.append([country, cutoff, predicted, actual])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e7_fd_prediction",
        "E7b: FD argument — predicted |phi(D)| vs actual intended content",
        ["country", "cutoff year", "predicted (st x yr x mo)", "actual"],
        rows,
    )


def test_e7_planner_table(benchmark, results_dir):
    """Source-access ordering by declared completeness (planner baseline)."""

    def sweep():
        workload = climatology.generate(
            n_countries=4,
            stations_per_country=2,
            years=(1990, 1991),
            months=(1, 7),
            drop_rate=0.25,
            corrupt_rate=0.1,
            rng=random.Random(5),
        )
        query = parse_rule("ans(s, y, m, v) <- Temperature(s, y, m, v)")
        rows = []
        for target in ("0.5", "0.9", "0.99"):
            chosen, coverage = plan_prefix(workload.collection, query, target)
            rows.append(
                [
                    target,
                    len(chosen),
                    " ".join(s.name for s in chosen),
                    f"{float(coverage):.3f}",
                ]
            )
        # monotone: higher targets need at least as many sources
        assert rows[0][1] <= rows[1][1] <= rows[2][1]
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e7_planner",
        "E7c: completeness-ordered access plans for a temperature query",
        ["target coverage", "#sources", "order", "est. coverage"],
        rows,
    )


def test_e7_generation_speed(benchmark):
    """Workload generation throughput (the harness's inner loop)."""
    benchmark(
        lambda: climatology.generate(
            n_countries=2,
            stations_per_country=3,
            years=(1989, 1990, 1991),
            months=(1, 4, 7, 10),
            rng=random.Random(1),
        )
    )
