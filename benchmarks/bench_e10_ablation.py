"""E10 — ablations of the design choices DESIGN.md calls out.

1. **DP state clamping** (consistency): total-size pruning plus sound-count
   saturation vs the raw reachable-state DP. Verdicts must match; the table
   shows the cost gap growing with instance size.
2. **Canonical freeze before quotient search** (general views): how often
   the cheap freeze pass decides alone, vs forcing the quotient pass.
3. **Block decomposition for counting**: blocks-with-anonymous-folding vs
   materializing the anonymous block as explicit facts in the Γ system
   (the naive encoding) — the reason Example 5.1 scales to m = 1000.
"""

import random
import time

from repro.consistency import check_identity
from repro.consistency.checker import check_consistency
from repro.model import fact
from repro.queries import parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.confidence import BlockCounter, IdentityInstance
from repro.workloads.random_sources import consistent_identity_collection

from benchmarks.conftest import write_table


def _disjoint_tight_collection(n_sources: int, size: int) -> SourceCollection:
    """Disjoint extensions with tight bounds: the clamp's best case (the
    total_max prune cuts everything beyond ⌊k/c⌋ facts)."""
    from repro.queries import identity_view

    sources = []
    next_id = 0
    for i in range(1, n_sources + 1):
        values = [f"e{next_id + j}" for j in range(size)]
        next_id += size
        sources.append(
            SourceDescriptor(
                identity_view(f"V{i}", "R", 1),
                [fact(f"V{i}", v) for v in values],
                "0.9",
                "0.9",
                name=f"S{i}",
            )
        )
    return SourceCollection(sources)


def test_e10_clamping_ablation(benchmark, results_dir):
    """Clamped vs unclamped consistency DP: same verdicts, different cost.

    Two regimes: overlapping noisy copies of one truth (bounds loose —
    clamping is roughly cost-neutral) and disjoint extensions with tight
    bounds (the total-size prune collapses the state space)."""

    def sweep():
        rows = []
        cases = [
            ("overlap", None, 2, 20, 10),
            ("overlap", None, 3, 40, 20),
            ("overlap", None, 4, 32, 16),
            ("disjoint", _disjoint_tight_collection(4, 10), 4, None, None),
            ("disjoint", _disjoint_tight_collection(5, 12), 5, None, None),
            ("disjoint", _disjoint_tight_collection(6, 10), 6, None, None),
        ]
        for regime, prebuilt, n_sources, universe, truth in cases:
            if prebuilt is None:
                collection, _, _ = consistent_identity_collection(
                    n_sources, universe, truth, rng=random.Random(42 + n_sources)
                )
            else:
                collection = prebuilt
            start = time.perf_counter()
            clamped = check_identity(collection, clamp=True)
            clamped_time = time.perf_counter() - start
            start = time.perf_counter()
            unclamped = check_identity(collection, clamp=False)
            unclamped_time = time.perf_counter() - start
            assert clamped.consistent == unclamped.consistent
            rows.append(
                [
                    regime,
                    n_sources,
                    collection.total_extension_size(),
                    "yes" if clamped.consistent else "no",
                    f"{clamped_time * 1000:.1f} ms",
                    f"{unclamped_time * 1000:.1f} ms",
                    f"{unclamped_time / max(clamped_time, 1e-9):.1f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # tight-bound regime must show a clear win on the largest instance
    assert float(rows[-1][-1].rstrip("x")) > 5
    write_table(
        "e10_clamping",
        "E10a: consistency DP — state clamping ablation (two regimes)",
        ["regime", "sources", "sum |v_i|", "consistent",
         "clamped", "unclamped", "speedup"],
        rows,
        notes=[
            "verdicts identical in every row",
            "clamping is ~cost-neutral on loose overlapping sources and "
            "decisive (10-100x) when bounds are tight and extensions disjoint",
        ],
    )


def test_e10_freeze_first_ablation(benchmark, results_dir):
    """How often canonical freeze decides without the quotient pass."""

    def sweep():
        scenarios = []
        # freeze succeeds: plain projection views
        view = parse_rule("V(x) <- R(x, y)")
        scenarios.append(
            (
                "projection, exact",
                SourceCollection(
                    [
                        SourceDescriptor(
                            view,
                            [fact("V", "a"), fact("V", "b")],
                            1,
                            1,
                            name="S1",
                        )
                    ]
                ),
            )
        )
        # freeze fails, quotient needed: completeness forces merging
        w = parse_rule("W(x) <- R(x, y)")
        u = parse_rule("U(y) <- R(x, y)")
        scenarios.append(
            (
                "merge forced",
                SourceCollection(
                    [
                        SourceDescriptor(w, [fact("W", "a")], 1, 1, name="S1"),
                        SourceDescriptor(u, [fact("U", "z")], 1, 1, name="S2"),
                    ]
                ),
            )
        )
        rows = []
        for name, collection in scenarios:
            start = time.perf_counter()
            result = check_consistency(collection)
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    name,
                    result.method,
                    "yes" if result.consistent else "no",
                    f"{elapsed * 1000:.1f} ms",
                ]
            )
        assert rows[0][1] == "canonical-freeze"
        assert rows[1][1] == "quotient-search"
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e10_freeze_first",
        "E10b: canonical freeze vs quotient search (general views)",
        ["scenario", "deciding method", "consistent", "time"],
        rows,
    )


def test_e10_anonymous_folding(benchmark, results_dir):
    """Counting with analytic anonymous folding vs growing the domain.

    With folding, cost is flat in the number of anonymous constants; a naive
    encoding would add one 0/1 variable per anonymous fact (2^m growth).
    """
    from repro.model import fact as make_fact
    from repro.queries import identity_view

    def collection():
        return SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [make_fact("V1", "a"), make_fact("V1", "b")],
                    "1/2", "1/2", name="S1",
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1),
                    [make_fact("V2", "b"), make_fact("V2", "c")],
                    "1/2", "1/2", name="S2",
                ),
            ]
        )

    def sweep():
        rows = []
        for m in (10, 100, 1000):
            domain = ["a", "b", "c"] + [f"d{i}" for i in range(m)]
            start = time.perf_counter()
            counter = BlockCounter(IdentityInstance(collection(), domain))
            worlds = counter.count_worlds()
            elapsed = time.perf_counter() - start
            rows.append(
                [m, f"{elapsed * 1000:.2f} ms", f"~2^{m + 3} candidates naive"]
            )
            assert worlds > 0
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e10_anonymous_folding",
        "E10c: analytic anonymous-block folding vs naive per-fact variables",
        ["anonymous facts m", "block counting", "naive search space"],
        rows,
    )
