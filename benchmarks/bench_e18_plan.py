#!/usr/bin/env python3
"""E18 — the compiled plan pipeline vs the backtracking evaluator (repro.plan).

Measures the unified query-plan IR on the workload every possible-worlds
algorithm in this repo spends its time in: the *same* query evaluated over
*many* databases, most of them seen before.

* **per-world evaluation** — the join ``ans(x, z) <- E(x, y), F(y, z)``
  over a cycled pool of perturbed worlds (~60 binary facts each). The plan
  arm compiles once per alpha-equivalence class and reuses each world's
  cached scan rows and hash-join build sides through the value-keyed data
  source LRU; the backtracking arm re-scans ``F``'s whole extension for
  every ``E`` fact, every world, every pass. Cold pass (first sight of each
  world) and warm pass (the repeated-evaluation steady state — the headline)
  are reported separately.
* **alpha-renamed query batch** — many syntactic variants of a few query
  shapes over one world: every rename after the first is a plan-cache hit,
  and the hit rate lands in the JSON payload (the observability contract
  of ``repro.plan.plan_stats()``).

Both arms are asserted answer-identical on every world before anything is
timed — the refactor's fidelity contract, enforced again on the benchmark
workload itself.

Usage::

    PYTHONPATH=src python benchmarks/bench_e18_plan.py            # full
    PYTHONPATH=src python benchmarks/bench_e18_plan.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_e18_plan.py --json out.json

Writes ``benchmarks/results/e18_plan.txt`` and a JSON trajectory entry
(default ``BENCH_plan.json`` at the repo root). Exits non-zero when the
warm per-world headline falls below the acceptance floor (3.0x full, 1.5x
quick — the quick floor is looser because CI machines are noisy).
"""

from __future__ import annotations

import argparse
import datetime
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for _p in (REPO_ROOT, REPO_ROOT / "src"):
    if str(_p) not in sys.path:
        sys.path.insert(0, str(_p))

from repro.model import GlobalDatabase, fact
from repro.plan import (
    clear_data_sources,
    evaluate as plan_evaluate,
    plan_stats,
    shared_plan_cache,
)
from repro.queries import evaluate_backtracking, parse_rule

from benchmarks.conftest import write_table

SPEEDUP_FLOOR_FULL = 3.0
SPEEDUP_FLOOR_QUICK = 1.5

JOIN_RULE = "ans(x, z) <- E(x, y), F(y, z)"

RENAME_SHAPES = [
    "ans({0}, {2}) <- E({0}, {1}), F({1}, {2})",
    "ans({0}) <- E({0}, {1}), E({1}, {0})",
    "ans({0}, {1}) <- E({0}, {1})",
    "ans({1}) <- F({0}, {1})",
    "ans({0}, {2}) <- E({0}, {1}), F({1}, {2}), Lt({0}, {2})",
]


def best_of(fn, reps: int) -> float:
    """Fastest of *reps* timed calls, in seconds (standard microbench floor)."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def make_world_pool(pool_size: int, seed: int = 18):
    """Distinct perturbations of one ~60-fact bipartite E/F database."""
    rng = random.Random(seed)
    base_e = [(f"e{i}", f"m{i % 8}") for i in range(30)]
    base_f = [(f"m{i % 8}", f"t{i}") for i in range(30)]
    worlds = []
    for _ in range(pool_size):
        e = [p for p in base_e if rng.random() > 0.08]
        f = [p for p in base_f if rng.random() > 0.08]
        worlds.append(
            GlobalDatabase(
                [fact("E", *p) for p in e] + [fact("F", *p) for p in f]
            )
        )
    return worlds


# -- per-world evaluation ------------------------------------------------------

def run_per_world(quick: bool):
    pool_size, cycles, reps = (50, 6, 2) if quick else (100, 20, 3)
    worlds = make_world_pool(pool_size)
    query = parse_rule(JOIN_RULE)
    evaluations = pool_size * cycles

    # Fidelity first: both arms agree on every world in the pool.
    clear_data_sources()
    for world in worlds:
        if plan_evaluate(query, world) != evaluate_backtracking(query, world):
            raise AssertionError("E18: plan and backtracking answers differ")

    def plan_pass():
        for _ in range(cycles):
            for world in worlds:
                plan_evaluate(query, world)

    def boxed_pass():
        for _ in range(cycles):
            for world in worlds:
                evaluate_backtracking(query, world)

    # Cold: every world's scans and indexes built from scratch (one cycle).
    clear_data_sources()
    start = time.perf_counter()
    for world in worlds:
        plan_evaluate(query, world)
    t_cold = (time.perf_counter() - start) * cycles  # scaled to pass size
    # Warm: the steady state the possible-worlds loops live in.
    t_plan = best_of(plan_pass, reps)
    t_boxed = best_of(boxed_pass, reps)
    warm_speedup = t_boxed / t_plan
    cold_speedup = t_boxed / t_cold
    rows = [
        ["per-world (cold)", f"{evaluations} evals, pool={pool_size}",
         f"{t_cold * 1000:.1f} ms", f"{t_boxed * 1000:.1f} ms",
         f"{cold_speedup:.2f}x"],
        ["per-world (warm)", f"{evaluations} evals, pool={pool_size}",
         f"{t_plan * 1000:.1f} ms", f"{t_boxed * 1000:.1f} ms",
         f"{warm_speedup:.2f}x"],
    ]
    record = {
        "pool_size": pool_size,
        "evaluations": evaluations,
        "plan_cold_ms": round(t_cold * 1000, 3),
        "plan_warm_ms": round(t_plan * 1000, 3),
        "backtracking_ms": round(t_boxed * 1000, 3),
        "cold_speedup": round(cold_speedup, 2),
        "warm_speedup": round(warm_speedup, 2),
    }
    return rows, record


# -- alpha-renamed query batch -------------------------------------------------

def renamed_queries(variants_per_shape: int):
    pools = [
        ("x", "y", "z"), ("a", "b", "c"), ("p", "q", "r"),
        ("u", "v", "w"), ("s", "t", "o"), ("k", "l", "n"),
        ("x1", "y1", "z1"), ("x2", "y2", "z2"), ("aa", "bb", "cc"),
        ("q1", "q2", "q3"),
    ]
    queries = []
    for shape in RENAME_SHAPES:
        for pool in pools[:variants_per_shape]:
            queries.append(parse_rule(shape.format(*pool)))
    return queries


def run_rename_batch(quick: bool):
    variants, reps = (4, 3) if quick else (10, 5)
    queries = renamed_queries(variants)
    world = make_world_pool(1, seed=99)[0]

    for q in queries:
        if plan_evaluate(q, world) != evaluate_backtracking(q, world):
            raise AssertionError("E18: rename batch answers differ")

    cache = shared_plan_cache()
    before = cache.stats()

    def plan_pass():
        for q in queries:
            plan_evaluate(q, world)

    def boxed_pass():
        for q in queries:
            evaluate_backtracking(q, world)

    t_plan = best_of(plan_pass, reps)
    t_boxed = best_of(boxed_pass, reps)
    after = cache.stats()
    delta_hits = after.hits - before.hits
    delta_misses = after.misses - before.misses
    hit_rate = (
        delta_hits / (delta_hits + delta_misses)
        if delta_hits + delta_misses else 1.0
    )
    speedup = t_boxed / t_plan
    rows = [
        ["rename batch",
         f"{len(queries)} queries / {len(RENAME_SHAPES)} shapes "
         f"(hit rate {hit_rate:.3f})",
         f"{t_plan * 1000:.1f} ms", f"{t_boxed * 1000:.1f} ms",
         f"{speedup:.2f}x"],
    ]
    record = {
        "queries": len(queries),
        "shapes": len(RENAME_SHAPES),
        "timed_hit_rate": round(hit_rate, 4),
        "plan_ms": round(t_plan * 1000, 3),
        "backtracking_ms": round(t_boxed * 1000, 3),
        "speedup": round(speedup, 2),
    }
    return rows, record


# -- driver --------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller pool and fewer reps (CI smoke mode)",
    )
    parser.add_argument(
        "--json", type=Path, default=REPO_ROOT / "BENCH_plan.json",
        help="where to write the JSON trajectory entry",
    )
    args = parser.parse_args(argv)
    floor = SPEEDUP_FLOOR_QUICK if args.quick else SPEEDUP_FLOOR_FULL
    mode = "quick" if args.quick else "full"

    world_rows, world_record = run_per_world(args.quick)
    rename_rows, rename_record = run_rename_batch(args.quick)
    stats = plan_stats()

    headline = world_record["warm_speedup"]
    passed = headline >= floor
    notes = [
        f"mode={mode}; acceptance floor {floor:.1f}x on the warm per-world row",
        f"headline: warm per-world {headline:.2f}x -> "
        f"{'PASS' if passed else 'FAIL'}",
        "warm = repeated evaluation over already-seen worlds (cached scans "
        "and join build sides); cold row scaled to the same evaluation count",
        f"shared plan cache: hits={stats['cache']['hits']} "
        f"misses={stats['cache']['misses']} "
        f"hit_rate={stats['cache']['hit_rate']:.3f}; "
        f"data sources cached: {stats['data_sources']}",
    ]
    table = write_table(
        "e18_plan",
        "E18: compiled plan pipeline vs backtracking evaluation",
        ["workload", "case", "plan", "backtracking", "speedup"],
        world_rows + rename_rows,
        notes=notes,
    )
    print(table)

    payload = {
        "bench": "e18_plan",
        "date": datetime.date.today().isoformat(),
        "mode": mode,
        "workloads": {
            "per_world": world_record,
            "rename_batch": rename_record,
        },
        "stats": stats,
        "acceptance": {
            "floor": floor,
            "warm_per_world_speedup": headline,
            "passed": passed,
        },
    }
    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}")

    if not passed:
        print(
            f"FAIL: warm per-world speedup below the {floor:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
