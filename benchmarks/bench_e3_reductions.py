"""E3 — the reduction pipeline HS → HS* → CONSISTENCY (Thm 3.2, Lemma 3.3).

Measures round-trip correctness on random instances (solving hitting set
directly vs through the source-consistency reduction) and the relative cost
of the two routes, plus the greedy approximation's quality gap.
"""

import random
import time

from repro.reductions import (
    HittingSetInstance,
    hs_star_to_collection,
    hs_to_hs_star,
    map_solution_back,
    minimum_hitting_set,
    solve_exact,
    solve_greedy,
    solve_hs_star_via_consistency,
)

from benchmarks.conftest import write_table


def random_instance(seed: int, universe: int = 8, subsets: int = 5):
    rng = random.Random(seed)
    sets = [
        set(rng.sample(range(universe), rng.randint(1, 3))) for _ in range(subsets)
    ]
    return HittingSetInstance(sets, rng.randint(1, universe // 2))


def test_e3_roundtrip_table(benchmark, results_dir):
    """Direct vs via-consistency verdicts and costs on random instances."""

    def sweep():
        rows = []
        agreements = 0
        for seed in range(15):
            instance = random_instance(seed)
            start = time.perf_counter()
            direct = solve_exact(instance)
            direct_time = time.perf_counter() - start
            star, fresh = hs_to_hs_star(instance)
            start = time.perf_counter()
            reduced = solve_hs_star_via_consistency(star)
            reduced_time = time.perf_counter() - start
            agree = (direct is not None) == (reduced is not None)
            agreements += agree
            if reduced is not None:
                mapped = map_solution_back(reduced, fresh)
                assert instance.is_hitting_set(mapped)
            rows.append(
                [
                    seed,
                    instance.k,
                    "yes" if direct is not None else "no",
                    "yes" if reduced is not None else "no",
                    f"{direct_time * 1000:.2f} ms",
                    f"{reduced_time * 1000:.2f} ms",
                ]
            )
        assert agreements == 15
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e3_roundtrip",
        "E3a: HS solved directly vs via the Theorem 3.2 reduction",
        ["seed", "K", "direct", "via consistency", "t direct", "t reduction"],
        rows,
        notes=["verdicts agree on all 15 random instances"],
    )


def test_e3_greedy_gap_table(benchmark, results_dir):
    """Greedy approximation vs exact optimum (the classic ln(n) gap)."""

    def sweep():
        rows = []
        for seed in range(10):
            rng = random.Random(500 + seed)
            sets = [
                set(rng.sample(range(10), rng.randint(2, 4))) for _ in range(7)
            ]
            optimum = minimum_hitting_set(sets)
            greedy = solve_greedy(HittingSetInstance(sets, 10))
            rows.append(
                [seed, len(optimum), len(greedy),
                 f"{len(greedy) / len(optimum):.2f}x"]
            )
            assert len(greedy) >= len(optimum)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e3_greedy_gap",
        "E3b: greedy hitting set vs exact optimum",
        ["seed", "optimum", "greedy", "ratio"],
        rows,
    )


def test_e3_reduction_construction_speed(benchmark):
    """Time building the Theorem 3.2 source collection for one instance."""
    star, _ = hs_to_hs_star(random_instance(3))
    collection = benchmark(lambda: hs_star_to_collection(star))
    assert len(collection) == len(star.subsets)


def test_e3_solve_via_consistency_speed(benchmark):
    """Time the full reduce-and-decide pipeline."""
    star, _ = hs_to_hs_star(random_instance(7, universe=10, subsets=6))
    benchmark(lambda: solve_hs_star_via_consistency(star))
