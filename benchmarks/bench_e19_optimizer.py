#!/usr/bin/env python3
"""E19 — the cost-based adaptive optimizer vs the static join order.

Measures what :mod:`repro.plan.optimizer` buys over the purely syntactic
``order_body`` order on workloads where cardinalities, not syntax, decide
the cost:

* **skewed chain join** (the headline) — ``ans(x, z) <- Big(y, z), Mid(x, y),
  Tiny(x, w)`` over one database with ``m`` ``Big`` facts (default 20 000).
  The static order's alphabetical tie-break starts at ``Big``, and the
  ``Big ⨝ Mid`` intermediate explodes to ~20·m rows before ``Tiny`` prunes
  it; the optimizer's DP order starts at ``Tiny`` and never materializes
  more than a few thousand rows. Both plans run on the *same* executor and
  the *same* cached data source — the measured gap is purely join order.
* **adaptive re-optimization** — the same chain shape compiled against a
  *misleading* world (where ``P`` is tiny), then executed repeatedly over a
  world where ``P`` holds ``m`` facts. The first executions record the
  mis-estimate, runtime feedback marks the plan stale, and the next plan
  cache hit re-optimizes with the observed cardinalities; the bench times
  the misled plan against the re-optimized one.
* **statistics maintenance** — profiling a perturbed world from scratch vs
  incrementally from its parent's cached statistics (the
  ``IFactSet.derivation`` hint path).

Fidelity first: every arm is asserted answer-identical to the backtracking
oracle before anything is timed — the optimizer may only change *cost*.

Usage::

    PYTHONPATH=src python benchmarks/bench_e19_optimizer.py            # full
    PYTHONPATH=src python benchmarks/bench_e19_optimizer.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_e19_optimizer.py --json out.json

Writes ``benchmarks/results/e19_optimizer.txt`` and a JSON trajectory entry
(default ``BENCH_optimizer.json`` at the repo root). Exits non-zero when the
skewed-chain headline falls below the acceptance floor (2.0x full, 1.3x
quick).
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for _p in (REPO_ROOT, REPO_ROOT / "src"):
    if str(_p) not in sys.path:
        sys.path.insert(0, str(_p))

from repro.confidence.engine.memo import LRUMemo
from repro.core import global_table
from repro.model import GlobalDatabase, fact
from repro.plan import (
    clear_data_sources,
    clear_statistics,
    compile_query,
    data_source_for,
    execute_plan,
    optimizer_stats,
    plan_for,
    reset_optimizer_stats,
    statistics_for,
)
from repro.plan.statistics import TableStatistics
from repro.queries import evaluate_backtracking, parse_rule

from benchmarks.conftest import write_table

SPEEDUP_FLOOR_FULL = 2.0
SPEEDUP_FLOOR_QUICK = 1.3

CHAIN_RULE = "ans(x, z) <- Big(y, z), Mid(x, y), Tiny(x, w)"
ADAPTIVE_RULE = "ans(x, z) <- P(y, z), Q(x, y), T(x, w)"


def best_of(fn, reps: int) -> float:
    """Fastest of *reps* timed calls, in seconds (standard microbench floor)."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def chain_world(m: int, big: str, mid: str, tiny: str) -> GlobalDatabase:
    """A skewed chain instance: ``big`` fans out ~m/100 rows per join key."""
    keys = max(1, m // 200)
    facts = [fact(big, f"k{i % keys}", f"z{i}") for i in range(m)]
    facts += [fact(mid, f"x{i % 1000}", f"k{i % keys}") for i in range(m // 10)]
    facts += [fact(tiny, f"x{i * 97 % 1000}", f"w{i}") for i in range(10)]
    return GlobalDatabase(facts)


# -- skewed chain join (headline) ----------------------------------------------

def run_skewed_chain(quick: bool):
    m, reps = (4000, 2) if quick else (20000, 3)
    database = chain_world(m, "Big", "Mid", "Tiny")
    core = database.core()
    query = parse_rule(CHAIN_RULE)
    table = global_table()

    static_plan = compile_query(query, table)
    optimized_plan = compile_query(query, table, stats=statistics_for(core))
    source = data_source_for(core)

    # Fidelity first: both plans and the oracle agree.
    expected = {
        tuple(c.value for c in a.args)
        for a in evaluate_backtracking(query, database)
    }
    constant_value = table.constant_value
    for plan in (static_plan, optimized_plan):
        got = {
            tuple(constant_value(c) for c in row)
            for row in execute_plan(plan, source)
        }
        if got != expected:
            raise AssertionError("E19: optimizer changed the answers")

    t_static = best_of(lambda: execute_plan(static_plan, source), reps)
    t_opt = best_of(lambda: execute_plan(optimized_plan, source), reps)
    speedup = t_static / t_opt
    rows = [
        ["skewed chain", f"m={m}, 3-way join",
         f"{t_opt * 1000:.1f} ms", f"{t_static * 1000:.1f} ms",
         f"{speedup:.2f}x"],
    ]
    record = {
        "m": m,
        "answers": len(expected),
        "optimized_ms": round(t_opt * 1000, 3),
        "static_ms": round(t_static * 1000, 3),
        "speedup": round(speedup, 2),
        "optimizer_info": optimized_plan.optimizer_info,
    }
    return rows, record


# -- adaptive re-optimization --------------------------------------------------

def run_adaptive(quick: bool):
    m, reps = (4000, 2) if quick else (20000, 3)
    # Misleading world: P is tiny, T is the big relation — the optimizer
    # correctly puts P early *for this world*.
    misleading = GlobalDatabase(
        [fact("P", f"k{i}", f"z{i}") for i in range(10)]
        + [fact("Q", f"x{i % 50}", f"k{i % 10}") for i in range(200)]
        + [fact("T", f"x{i % 1000}", f"w{i}") for i in range(m // 4)]
    )
    actual = chain_world(m, "P", "Q", "T")
    query = parse_rule(ADAPTIVE_RULE)
    table = global_table()
    cache = LRUMemo(64)

    misled = plan_for(query, cache=cache, facts=misleading.core())
    actual_core = actual.core()
    source = data_source_for(actual_core)

    expected = execute_plan(misled, source)
    before = optimizer_stats()
    # Feedback from real executions marks the plan stale...
    for _ in range(2):
        execute_plan(misled, source)
    # ...and the next cache hit re-optimizes with observed cardinalities.
    adapted = plan_for(query, cache=cache, facts=actual_core)
    after = optimizer_stats()
    if adapted is misled:
        raise AssertionError("E19: stale plan was not re-optimized")
    if execute_plan(adapted, source) != expected:
        raise AssertionError("E19: re-optimization changed the answers")

    t_misled = best_of(lambda: execute_plan(misled, source), reps)
    t_adapted = best_of(lambda: execute_plan(adapted, source), reps)
    speedup = t_misled / t_adapted
    rows = [
        ["adaptive reopt", f"m={m}, misled -> re-optimized",
         f"{t_adapted * 1000:.1f} ms", f"{t_misled * 1000:.1f} ms",
         f"{speedup:.2f}x"],
    ]
    record = {
        "m": m,
        "adapted_ms": round(t_adapted * 1000, 3),
        "misled_ms": round(t_misled * 1000, 3),
        "speedup": round(speedup, 2),
        "misestimates": (after["misestimates"] or 0)
        - (before["misestimates"] or 0),
        "reoptimizations": (after["reoptimizations"] or 0)
        - (before["reoptimizations"] or 0),
        "misled_info": misled.optimizer_info,
        "adapted_info": adapted.optimizer_info,
    }
    return rows, record


# -- statistics maintenance ----------------------------------------------------

def run_statistics(quick: bool):
    m, reps = (4000, 3) if quick else (20000, 5)
    core = chain_world(m, "Big", "Mid", "Tiny").core()
    base_stats = statistics_for(core)
    removed = tuple(core)[: m // 100]
    derived = core.without_ids(removed)

    def incremental():
        return TableStatistics.derive(
            base_stats, derived,
            derived.derivation().added, derived.derivation().removed,
        )

    def from_scratch():
        return TableStatistics.profile(derived)

    if incremental().relations.keys() != from_scratch().relations.keys():
        raise AssertionError("E19: incremental statistics diverged")
    t_incremental = best_of(incremental, reps)
    t_scratch = best_of(from_scratch, reps)
    speedup = t_scratch / t_incremental
    rows = [
        ["stats maintenance", f"m={m}, {len(removed)}-fact delta",
         f"{t_incremental * 1000:.2f} ms", f"{t_scratch * 1000:.2f} ms",
         f"{speedup:.2f}x"],
    ]
    record = {
        "m": m,
        "delta": len(removed),
        "incremental_ms": round(t_incremental * 1000, 3),
        "profile_ms": round(t_scratch * 1000, 3),
        "speedup": round(speedup, 2),
    }
    return rows, record


# -- driver --------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller relations and fewer reps (CI smoke mode)",
    )
    parser.add_argument(
        "--json", type=Path, default=REPO_ROOT / "BENCH_optimizer.json",
        help="where to write the JSON trajectory entry",
    )
    args = parser.parse_args(argv)
    floor = SPEEDUP_FLOOR_QUICK if args.quick else SPEEDUP_FLOOR_FULL
    mode = "quick" if args.quick else "full"

    clear_data_sources()
    clear_statistics()
    reset_optimizer_stats()

    chain_rows, chain_record = run_skewed_chain(args.quick)
    adaptive_rows, adaptive_record = run_adaptive(args.quick)
    stats_rows, stats_record = run_statistics(args.quick)
    counters = optimizer_stats()

    headline = chain_record["speedup"]
    passed = headline >= floor
    notes = [
        f"mode={mode}; acceptance floor {floor:.1f}x on the skewed-chain row",
        f"headline: skewed chain {headline:.2f}x -> "
        f"{'PASS' if passed else 'FAIL'}",
        "both arms share one executor and one cached data source; the gap "
        "is join order (static = syntactic order_body, optimized = "
        "statistics-driven DP)",
        f"optimizer counters: optimized={counters['plans_optimized']} "
        f"dp={counters['dp_orders']} "
        f"misestimates={counters['misestimates']} "
        f"reoptimizations={counters['reoptimizations']}",
    ]
    table = write_table(
        "e19_optimizer",
        "E19: cost-based adaptive optimizer vs static join order",
        ["workload", "case", "optimized", "static/misled", "speedup"],
        chain_rows + adaptive_rows + stats_rows,
        notes=notes,
    )
    print(table)

    payload = {
        "bench": "e19_optimizer",
        "date": datetime.date.today().isoformat(),
        "mode": mode,
        "workloads": {
            "skewed_chain": chain_record,
            "adaptive_reopt": adaptive_record,
            "statistics_maintenance": stats_record,
        },
        "optimizer": counters,
        "acceptance": {
            "floor": floor,
            "skewed_chain_speedup": headline,
            "passed": passed,
        },
    }
    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}")

    if not passed:
        print(
            f"FAIL: skewed-chain speedup below the {floor:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
