"""E9 — baseline agreement: Grahne–Mendelzon (0/1) and Motro.

The paper generalizes Grahne & Mendelzon's all-or-nothing model; at bounds
c, s ∈ {0, 1} our machinery must reproduce their analytical answers:

* consistency ⇔ (∪ sound extensions) ⊆ (∩ complete extensions);
* certain base facts = the sound union; possible = the complete intersection;
* certain answers are Motro-sound, possible answers Motro-complete,
  whenever the real world is itself a possible world.
"""

import random
import time

from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.algebra import RelationScan
from repro.baselines import (
    answer_is_complete,
    answer_is_sound,
    certain_facts_01,
    is_consistent_01,
    possible_facts_01,
)
from repro.confidence import answer_query, enumeration_confidences
from repro.consistency import check_identity

from benchmarks.conftest import write_table

KINDS = {"sound": (0, 1), "complete": (1, 0), "exact": (1, 1)}
VALUES = ["a", "b", "c", "d"]


def random_01_collection(seed: int) -> SourceCollection:
    rng = random.Random(seed)
    sources = []
    for i in range(1, rng.randint(2, 4) + 1):
        kind = rng.choice(list(KINDS))
        c, s = KINDS[kind]
        values = rng.sample(VALUES, rng.randint(1, 3))
        sources.append(
            SourceDescriptor(
                identity_view(f"V{i}", "R", 1),
                [fact(f"V{i}", v) for v in values],
                c,
                s,
                name=f"S{i}({kind})",
            )
        )
    return SourceCollection(sources)


def test_e9_consistency_agreement_table(benchmark, results_dir):
    """Closed-form 0/1 consistency vs the general decision procedure."""

    def sweep():
        rows = []
        agreements = 0
        for seed in range(20):
            collection = random_01_collection(seed)
            start = time.perf_counter()
            analytic = is_consistent_01(collection)
            analytic_time = time.perf_counter() - start
            start = time.perf_counter()
            general = check_identity(collection).consistent
            general_time = time.perf_counter() - start
            agreements += analytic == general
            rows.append(
                [
                    seed,
                    " ".join(s.name for s in collection),
                    "yes" if analytic else "no",
                    "yes" if general else "no",
                    f"{analytic_time * 1e6:.0f} us",
                    f"{general_time * 1e6:.0f} us",
                ]
            )
        assert agreements == 20
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e9_consistency_agreement",
        "E9a: Grahne-Mendelzon closed form vs general checker (20 random 0/1 fleets)",
        ["seed", "sources", "GM verdict", "general verdict", "t GM", "t general"],
        rows,
        notes=["verdicts agree on all instances"],
    )


def test_e9_certain_possible_agreement(benchmark, results_dir):
    """Analytical certain/possible facts vs confidences {1} / (0, 1]."""

    def sweep():
        rows = []
        for seed in range(20):
            collection = random_01_collection(seed)
            if not is_consistent_01(collection):
                continue
            confidences = enumeration_confidences(collection, VALUES)
            certain_analytic = certain_facts_01(collection)
            possible_analytic = possible_facts_01(collection, VALUES)
            certain_measured = {f for f, c in confidences.items() if c == 1}
            possible_measured = {f for f, c in confidences.items() if c > 0}
            assert certain_analytic == certain_measured, seed
            assert possible_measured <= possible_analytic, seed
            rows.append(
                [
                    seed,
                    len(certain_analytic),
                    len(possible_analytic),
                    len(possible_measured),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e9_certain_possible",
        "E9b: analytical certain/possible facts vs world-counting",
        ["seed", "|certain|", "|possible| (analytic upper)", "|possible| (measured)"],
        rows,
        notes=[
            "certain sets match exactly; measured possible ⊆ analytic upper "
            "bound (the bound ignores interactions between sources)",
        ],
    )


def test_e9_motro_bridge(benchmark, results_dir):
    """Certain ⊆ real-world answer ⊆ possible, whenever the real world is a
    possible world (Motro's soundness/completeness of answers)."""

    def sweep():
        rows = []
        for seed in range(10):
            collection = random_01_collection(seed)
            if not is_consistent_01(collection):
                continue
            query = RelationScan("R", 1)
            qa = answer_query(query, collection, VALUES)
            # take each enumerated possible world as a candidate real world
            from repro.confidence import possible_worlds

            checked = 0
            for world in possible_worlds(collection, VALUES):
                assert answer_is_sound(qa.certain, query, world)
                assert answer_is_complete(qa.possible, query, world)
                checked += 1
                if checked >= 20:
                    break
            rows.append([seed, checked])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e9_motro",
        "E9c: certain answers Motro-sound / possible answers Motro-complete",
        ["seed", "worlds checked"],
        rows,
        notes=["all checks passed for every candidate real world"],
    )
