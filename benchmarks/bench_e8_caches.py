"""E8 — the §6 cache/mirror application.

Identity views over `Live(object)`: every §5.1 result applies verbatim to
fleets of stale caches. Reproduced claims/shapes:

* confidence ranks truly-live objects above retired ones — precision@k of
  the confidence ranking degrades gracefully with staleness;
* the certain answer (confidence 1) is always a subset of the truly live
  set when caches declare honestly (Motro-soundness of certain answers);
* more caches → sharper confidence separation (consensus effect).
"""

import random
from fractions import Fraction

from repro.confidence import certain_facts, covered_fact_confidences
from repro.consistency import check_identity
from repro.workloads import caches

from benchmarks.conftest import write_table


def ranked_objects(fleet):
    confidences = covered_fact_confidences(fleet.collection, fleet.domain)
    ranking = sorted(confidences.items(), key=lambda kv: -kv[1])
    return confidences, [f.args[0].value for f, _ in ranking]


def test_e8_staleness_sweep_table(benchmark, results_dir):
    """Precision@k of the liveness ranking vs staleness level."""

    def sweep():
        rows = []
        for stale in (0.0, 0.1, 0.25, 0.4):
            fleet = caches.generate(
                n_objects=12,
                n_retired=8,
                n_caches=4,
                miss_rate=0.2,
                stale_rate=stale,
                rng=random.Random(int(stale * 100)),
            )
            assert check_identity(fleet.collection).consistent
            confidences, ranking = ranked_objects(fleet)
            live = fleet.live_objects()
            p5 = caches.ranking_quality(ranking, live, 5)
            p12 = caches.ranking_quality(ranking, live, 12)
            certain = certain_facts(confidences)
            certain_live = all(
                f.args[0].value in live for f in certain
            )
            rows.append(
                [
                    f"{stale:.2f}",
                    f"{float(p5):.3f}",
                    f"{float(p12):.3f}",
                    len(certain),
                    "yes" if certain_live else "NO",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # top-5 precision stays perfect at low staleness
    assert rows[0][1] == "1.000"
    write_table(
        "e8_staleness",
        "E8a: liveness-confidence ranking vs staleness",
        ["stale rate", "precision@5", "precision@12", "|certain|",
         "certain all live?"],
        rows,
        notes=["certain answers (confidence 1) were truly live in all runs"],
    )


def test_e8_fleet_size_table(benchmark, results_dir):
    """Consensus: more caches separate live from retired more sharply."""

    def sweep():
        rows = []
        for n_caches in (1, 2, 4, 8):
            fleet = caches.generate(
                n_objects=10,
                n_retired=6,
                n_caches=n_caches,
                miss_rate=0.25,
                stale_rate=0.25,
                rng=random.Random(300 + n_caches),
            )
            confidences, _ = ranked_objects(fleet)
            live = fleet.live_objects()
            live_scores = [
                float(c) for f, c in confidences.items()
                if f.args[0].value in live
            ]
            stale_scores = [
                float(c) for f, c in confidences.items()
                if f.args[0].value not in live
            ]
            mean_live = sum(live_scores) / len(live_scores) if live_scores else 0
            mean_stale = (
                sum(stale_scores) / len(stale_scores) if stale_scores else 0
            )
            rows.append(
                [
                    n_caches,
                    f"{mean_live:.3f}",
                    f"{mean_stale:.3f}" if stale_scores else "(none held)",
                    f"{mean_live - mean_stale:.3f}" if stale_scores else "-",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e8_fleet_size",
        "E8b: confidence separation (mean live vs mean stale) by fleet size",
        ["caches", "mean conf (live)", "mean conf (stale)", "gap"],
        rows,
        notes=["the live/stale gap widens with more independent caches"],
    )


def test_e8_confidence_computation_speed(benchmark):
    """Exact per-object confidence over a 4-cache, 20-object fleet."""
    fleet = caches.generate(
        n_objects=14, n_retired=6, n_caches=4, rng=random.Random(9)
    )
    benchmark(
        lambda: covered_fact_confidences(fleet.collection, fleet.domain)
    )
