"""E2 — CONSISTENCY decision cost (Theorem 3.2 / Lemma 3.1).

The paper proves CONSISTENCY NP-complete in the size of the view extensions
and bounds the witness size (Lemma 3.1). This experiment measures:

* the identity-view dynamic program's scaling in extension size and in the
  number of sources (polynomial for fixed n, exponential in n — matching
  the theory: signatures grow with n);
* the general-view checker's canonical-freeze fast path vs the complete
  quotient search;
* that every positive verdict's witness respects the Lemma 3.1 bound.
"""

import random
import time

from repro.consistency import check_consistency, check_identity, size_bound
from repro.queries import parse_rule
from repro.model import fact
from repro.sources import SourceCollection, SourceDescriptor
from repro.workloads.random_sources import (
    consistent_identity_collection,
    random_identity_collection,
)

from benchmarks.conftest import write_table


def test_e2_identity_scaling_table(benchmark, results_dir):
    """DP cost as extensions grow, with witness-bound verification."""

    def sweep():
        rows = []
        for n_sources, universe, truth in [
            (2, 20, 10),
            (2, 60, 30),
            (3, 30, 15),
            (3, 60, 30),
            (4, 40, 20),
        ]:
            collection, _, _ = consistent_identity_collection(
                n_sources, universe, truth, rng=random.Random(n_sources)
            )
            start = time.perf_counter()
            result = check_identity(collection)
            elapsed = time.perf_counter() - start
            assert result.consistent
            assert len(result.witness) <= size_bound(collection)
            rows.append(
                [
                    n_sources,
                    collection.total_extension_size(),
                    size_bound(collection),
                    len(result.witness),
                    f"{elapsed * 1000:.2f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e2_identity_scaling",
        "E2a: identity-view consistency (signature-block DP)",
        ["sources", "sum |v_i|", "Lemma 3.1 bound", "|witness|", "time"],
        rows,
        notes=[
            "witness size always within the Lemma 3.1 bound",
            "cost grows mildly with |v| for fixed n but steeply with the "
            "number of sources — matching Theorem 3.2's NP-completeness "
            "(the state space is exponential in n)",
        ],
    )


def test_e2_mixed_verdicts(benchmark, results_dir):
    """Random collections with arbitrary bounds: decision rate and outcomes."""

    def sweep():
        rows = []
        for seed in range(12):
            rng = random.Random(1000 + seed)
            collection = random_identity_collection(
                3, 10, extension_size=(2, 5), rng=rng
            )
            start = time.perf_counter()
            result = check_identity(collection)
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    seed,
                    collection.total_extension_size(),
                    "yes" if result.consistent else "no",
                    f"{elapsed * 1000:.2f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    verdicts = {r[2] for r in rows}
    write_table(
        "e2_mixed_verdicts",
        "E2b: random declared bounds — both verdicts exercised",
        ["seed", "sum |v_i|", "consistent", "time"],
        rows,
        notes=[f"distinct verdicts observed: {sorted(verdicts)}"],
    )


def general_view_collection(n_facts: int) -> SourceCollection:
    view = parse_rule("V(x) <- R(x, y)")
    extension = [fact("V", f"k{i}") for i in range(n_facts)]
    return SourceCollection(
        [SourceDescriptor(view, extension, "1/2", "1/2", name="S1")]
    )


def test_e2_general_freeze_speed(benchmark):
    """Canonical-freeze path on a projection view (8 extension facts)."""
    collection = general_view_collection(8)
    result = benchmark(lambda: check_consistency(collection))
    assert result.consistent and result.method == "canonical-freeze"


def test_e2_general_vs_identity_table(benchmark, results_dir):
    """Freeze vs quotient costs across combination-space sizes."""

    def sweep():
        rows = []
        for n_facts in (2, 4, 6, 8):
            collection = general_view_collection(n_facts)
            start = time.perf_counter()
            result = check_consistency(collection)
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    n_facts,
                    result.method,
                    result.combinations_tried,
                    f"{elapsed * 1000:.2f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e2_general_views",
        "E2c: general-view checker (projection views, c = s = 1/2)",
        ["|v|", "method", "combinations tried", "time"],
        rows,
    )
