"""E5 — Theorem 4.1: templates represent exactly the possible worlds.

For small collections over finite domains we enumerate poss(S) twice —
directly from the definition, and as ∪_U rep(T^U(S)) — and compare. The
table also reports the *compression*: how many templates (|𝒰|) represent
how many worlds, versus the worlds' total size.
"""

import time

from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.tableaux import (
    allowable_combinations,
    direct_possible_worlds,
    template_possible_worlds,
)

from benchmarks.conftest import write_table


def scenarios():
    yield "example51(m=1)", SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1),
                [fact("V1", "a"), fact("V1", "b")], "1/2", "1/2", name="S1",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "b"), fact("V2", "c")], "1/2", "1/2", name="S2",
            ),
        ]
    ), ["a", "b", "c", "d1"]
    yield "sound+complete", SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1), [fact("V1", "a")], 0, 1, name="S1"
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "a"), fact("V2", "b")], 1, 0, name="S2",
            ),
        ]
    ), ["a", "b", "c"]
    yield "projection view", SourceCollection(
        [
            SourceDescriptor(
                parse_rule("V1(x) <- R(x, y)"),
                [fact("V1", "a")], 1, 1, name="S1",
            )
        ]
    ), ["a", "b"]
    yield "two-relation join", SourceCollection(
        [
            SourceDescriptor(
                parse_rule("V1(x) <- R(x), S(x)"),
                [fact("V1", "a")], 1, 1, name="S1",
            )
        ]
    ), ["a", "b"]


def test_e5_theorem41_table(benchmark, results_dir):
    """poss(S) == ∪_U rep(T^U(S)) on every scenario, with sizes and times."""

    def sweep():
        rows = []
        for name, collection, domain in scenarios():
            n_templates = sum(1 for _ in allowable_combinations(collection))
            start = time.perf_counter()
            direct = direct_possible_worlds(collection, domain)
            direct_time = time.perf_counter() - start
            start = time.perf_counter()
            via_templates = template_possible_worlds(collection, domain)
            template_time = time.perf_counter() - start
            assert direct == via_templates, name
            rows.append(
                [
                    name,
                    n_templates,
                    len(direct),
                    f"{direct_time * 1000:.1f} ms",
                    f"{template_time * 1000:.1f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e5_theorem41",
        "E5: Theorem 4.1 — direct poss(S) vs union of template reps",
        ["scenario", "|U| (templates)", "|poss(S)|", "t direct", "t templates"],
        rows,
        notes=["the two world sets are identical in every scenario"],
    )


def test_e5_membership_speed(benchmark):
    """rep(T) membership checking throughput (the paper's Example 4.1)."""
    from repro.model import Constant, GlobalDatabase, Variable, atom
    from repro.model.valuation import Substitution
    from repro.tableaux import Constraint, DatabaseTemplate, Tableau

    x = Variable("x")
    template = DatabaseTemplate(
        [
            Tableau([atom("R", "a", x), atom("S", "b", "c"), atom("S", "b", "cp")]),
            Tableau([atom("R", "ap", "bp"), atom("S", "b", "c")]),
        ],
        [
            Constraint(
                Tableau([atom("R", "a", x)]),
                [
                    Substitution({x: Constant("b")}),
                    Substitution({x: Constant("bp")}),
                ],
            )
        ],
    )
    world = GlobalDatabase(
        [
            fact("R", "a", "b"),
            fact("R", "a", "bp"),
            fact("S", "b", "c"),
            fact("S", "b", "cp"),
        ]
    )
    assert benchmark(lambda: template.admits(world))
