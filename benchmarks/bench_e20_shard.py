#!/usr/bin/env python3
"""E20 — sharded scatter-gather vs the single-store executor (repro.shard).

Measures the payoff of partition awareness on the workload sharding is for:
**point lookups with a constant at the partition key**. The planner proves
the constant fixes one shard (``strategy=pruned``), so the executor touches
``m/N`` facts where the single-store plan scans all ``m`` — the speedup is
the pruning ratio, no parallelism required.

* **pruned point lookups** (the headline) — first-sight distinct-constant
  key lookups over ``R(k, v)`` at ``m`` facts. Each constant compiles its
  own plan and builds its own scan rows, so every query pays a real scan:
  the single-store arm filters all ``m`` grouped tuples, the pruned arm
  only its shard's ``~m/N``. (Timed cold — a repeated constant is a
  scan-row cache hit in either arm and measures nothing.)
* **full scan (scatter)** — the honest context row: a variable at the key
  position touches every shard, so sharding buys nothing serially (union of
  per-shard scans ≈ one scan; small constant overhead).

Both arms are asserted answer-identical on every query before anything is
timed — the subsystem's equivalence contract, enforced on the benchmark
workload itself.

Usage::

    PYTHONPATH=src python benchmarks/bench_e20_shard.py            # full
    PYTHONPATH=src python benchmarks/bench_e20_shard.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_e20_shard.py --json out.json

Writes ``benchmarks/results/e20_shard.txt`` and a JSON trajectory entry
(default ``BENCH_shard.json`` at the repo root). Exits non-zero when the
pruned-lookup headline at the acceptance shard count falls below the floor
(2.0x full, 1.2x quick — quick runs a smaller store on noisy CI machines).
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for _p in (REPO_ROOT, REPO_ROOT / "src"):
    if str(_p) not in sys.path:
        sys.path.insert(0, str(_p))

from repro.model import GlobalDatabase, fact
from repro.plan import clear_data_sources, evaluate as plan_evaluate
from repro.shard import (
    PartitionSpec,
    ShardExecutor,
    ShardedDatabase,
    clear_partitions,
    reset_shard_stats,
    shard_stats,
)
from repro.queries import parse_rule

from benchmarks.conftest import write_table


def best_of(fn, reps: int) -> float:
    """Fastest of *reps* timed calls, in seconds (standard microbench floor)."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best

SPEEDUP_FLOOR_FULL = 2.0
SPEEDUP_FLOOR_QUICK = 1.2

#: The acceptance criterion's shard count (the headline row).
ACCEPTANCE_SHARDS = 4


def make_store(m: int, distinct_keys: int) -> GlobalDatabase:
    """``m`` facts of ``R(k, v)`` over ``distinct_keys`` partition keys."""
    return GlobalDatabase(
        fact("R", f"k{i % distinct_keys}", f"v{i}") for i in range(m)
    )


def point_queries(count: int):
    """Distinct-constant lookups: each compiles its own plan (no cache alias)."""
    return [parse_rule(f"ans(v) <- R('k{i}', v)") for i in range(count)]


def run_point_lookups(db, queries, shard_counts, reps):
    """Headline workload: first-sight pruned lookups vs the full scan.

    Scan rows are cached per scan node — constants included — so a repeated
    lookup is a cache hit in either arm and measures nothing. The regime
    sharding pays off in is the *first sight* of each constant: the
    single-store arm filters all ``m`` grouped tuples to build the scan, the
    pruned arm only its one shard's ``~m/N``. Each timed pass therefore
    drops the data-source cache first (inside the timing, for both arms).
    """
    rows, records = [], {}

    def single_pass():
        clear_data_sources()
        for q in queries:
            plan_evaluate(q, db)

    # Fidelity + plan-compilation warmup for the single-store arm.
    expected = {q: plan_evaluate(q, db) for q in queries}
    t_single = best_of(single_pass, reps)

    for n in shard_counts:
        executor = ShardExecutor(ShardedDatabase(db, PartitionSpec(n)))
        for q in queries:
            if executor.answer(q) != expected[q]:
                raise AssertionError("E20: sharded and single answers differ")

        def shard_pass():
            clear_data_sources()
            for q in queries:
                executor.answer(q)

        t_shard = best_of(shard_pass, reps)
        speedup = t_single / t_shard
        pruned = executor.counters.get("shards_pruned", 0)
        rows.append(
            [f"point lookups, N={n}",
             f"{len(queries)} queries, strategy=pruned",
             f"{t_shard * 1000:.1f} ms", f"{t_single * 1000:.1f} ms",
             f"{speedup:.2f}x"]
        )
        records[str(n)] = {
            "shards": n,
            "sharded_ms": round(t_shard * 1000, 3),
            "single_ms": round(t_single * 1000, 3),
            "speedup": round(speedup, 2),
            "shards_pruned_total": pruned,
        }
    return rows, records


def run_full_scan(db, shards, reps):
    """Context row: scatter over every shard vs one single-store scan."""
    query = parse_rule("ans(k, v) <- R(k, v)")
    executor = ShardExecutor(ShardedDatabase(db, PartitionSpec(shards)))
    expected = plan_evaluate(query, db)
    if executor.answer(query) != expected:
        raise AssertionError("E20: scatter scan answers differ")

    t_single = best_of(lambda: plan_evaluate(query, db), reps)
    t_shard = best_of(lambda: executor.answer(query), reps)
    speedup = t_single / t_shard
    rows = [
        [f"full scan, N={shards}", "1 query, strategy=scatter",
         f"{t_shard * 1000:.1f} ms", f"{t_single * 1000:.1f} ms",
         f"{speedup:.2f}x"],
    ]
    record = {
        "shards": shards,
        "sharded_ms": round(t_shard * 1000, 3),
        "single_ms": round(t_single * 1000, 3),
        "speedup": round(speedup, 2),
    }
    return rows, record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller store and fewer reps (CI smoke mode)",
    )
    parser.add_argument(
        "--json", type=Path, default=REPO_ROOT / "BENCH_shard.json",
        help="where to write the JSON trajectory entry",
    )
    parser.add_argument(
        "--facts", type=int, default=None, metavar="M",
        help="override the store size (default 20000 full, 4000 quick)",
    )
    args = parser.parse_args(argv)
    floor = SPEEDUP_FLOOR_QUICK if args.quick else SPEEDUP_FLOOR_FULL
    mode = "quick" if args.quick else "full"
    m = args.facts or (4000 if args.quick else 20000)
    queries, reps = (15, 2) if args.quick else (50, 3)
    shard_counts = (ACCEPTANCE_SHARDS, 8)

    clear_data_sources()
    clear_partitions()
    reset_shard_stats()
    # Enough distinct keys that each lookup returns a handful of answers:
    # the timed asymmetry is the scan-row build, not answer materialization.
    db = make_store(m, distinct_keys=max(queries * 4, 500))
    lookup_rows, lookup_records = run_point_lookups(
        db, point_queries(queries), shard_counts, reps
    )
    scan_rows, scan_record = run_full_scan(db, ACCEPTANCE_SHARDS, reps)

    headline = lookup_records[str(ACCEPTANCE_SHARDS)]["speedup"]
    passed = headline >= floor
    counters = shard_stats()
    notes = [
        f"mode={mode}; m={m} facts; acceptance floor {floor:.1f}x on the "
        f"N={ACCEPTANCE_SHARDS} pruned point-lookup row",
        f"headline: pruned lookups at N={ACCEPTANCE_SHARDS} "
        f"{headline:.2f}x -> {'PASS' if passed else 'FAIL'}",
        "pruned = the planner proves the lookup constant fixes one shard, "
        "so the executor scans ~m/N facts instead of m (no parallelism)",
        f"shard counters: pruned={counters.get('shards_pruned', 0)} "
        f"fragments={counters.get('fragments_executed', 0)} "
        f"queries={counters.get('queries', 0)}",
    ]
    table = write_table(
        "e20_shard",
        "E20: sharded scatter-gather vs single-store execution",
        ["workload", "case", "sharded", "single store", "speedup"],
        lookup_rows + scan_rows,
        notes=notes,
    )
    print(table)

    payload = {
        "bench": "e20_shard",
        "date": datetime.date.today().isoformat(),
        "mode": mode,
        "facts": m,
        "workloads": {
            "point_lookups": lookup_records,
            "full_scan": scan_record,
        },
        "counters": counters,
        "acceptance": {
            "floor": floor,
            "shards": ACCEPTANCE_SHARDS,
            "pruned_lookup_speedup": headline,
            "passed": passed,
        },
    }
    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}")

    if not passed:
        print(
            f"FAIL: pruned lookup speedup below the {floor:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
