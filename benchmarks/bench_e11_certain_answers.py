"""E11 — certain-answer computation routes (§6 future work + related work).

Three routes to certain answers, with agreement and cost:

* exhaustive world enumeration (the definition, exponential in the fact
  space);
* the Theorem 4.1 template route (exponential in Σ|v_i|, independent of the
  domain size);
* the Information-Manifold canonical database from sound views (polynomial;
  a sound under-approximation that misses completeness-forced facts).
"""

import time

from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.baselines import certain_answer_im
from repro.confidence import certain_answer, certain_answer_lower_bound
from repro.tableaux import certain_answer_from_templates

from benchmarks.conftest import write_table


def scenarios():
    q = parse_rule("ans(u) <- R(u)")
    yield (
        "sound identity",
        SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a"), fact("V1", "b")],
                    0, 1, name="S1",
                )
            ]
        ),
        q,
        ["a", "b", "c"],
    )
    yield (
        "sound + partial",
        SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a"), fact("V1", "b")],
                    "1/2", 1, name="S1",
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1),
                    [fact("V2", "b"), fact("V2", "c")],
                    "1/2", "1/2", name="S2",
                ),
            ]
        ),
        q,
        ["a", "b", "c", "d1"],
    )
    yield (
        "completeness-forced",
        SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1),
                    [fact("V1", "a")], 1, 0, name="S1",
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1),
                    [fact("V2", "a"), fact("V2", "b")], 0, "1/2", name="S2",
                ),
            ]
        ),
        q,
        ["a", "b"],
    )
    yield (
        "projection view",
        SourceCollection(
            [
                SourceDescriptor(
                    parse_rule("V1(u) <- R(u, w)"),
                    [fact("V1", "a")], 0, 1, name="S1",
                )
            ]
        ),
        parse_rule("ans(u) <- R(u, w)"),
        ["a", "b"],
    )


def test_e11_route_agreement_table(benchmark, results_dir):
    """Certain answers per route; template/IM must stay within the truth."""

    def sweep():
        rows = []
        for name, collection, query, domain in scenarios():
            start = time.perf_counter()
            exact = certain_answer(query, collection, domain)
            enum_time = time.perf_counter() - start

            start = time.perf_counter()
            via_templates = certain_answer_from_templates(query, collection)
            template_time = time.perf_counter() - start

            start = time.perf_counter()
            via_im = certain_answer_im(query, collection)
            im_time = time.perf_counter() - start

            if collection.identity_relation() is not None:
                via_base = certain_answer_lower_bound(query, collection, domain)
                assert via_base <= exact, name
                base_cell = str(len(via_base))
            else:
                base_cell = "n/a"

            assert via_templates <= exact, name
            assert via_im <= exact, name
            rows.append(
                [
                    name,
                    len(exact),
                    len(via_templates),
                    len(via_im),
                    base_cell,
                    f"{enum_time * 1000:.1f} ms",
                    f"{template_time * 1000:.1f} ms",
                    f"{im_time * 1000:.2f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # the completeness-forced scenario shows the structural gap:
    forced = next(r for r in rows if r[0] == "completeness-forced")
    assert forced[1] == 1 and forced[3] == 0  # exact sees R(a); IM cannot
    assert forced[4] == "1"  # the base-facts route DOES see the forced fact
    write_table(
        "e11_certain_answers",
        "E11: certain answers — enumeration vs templates vs IM vs base-facts",
        ["scenario", "|exact|", "|templates|", "|IM|", "|base-facts|",
         "t enum", "t templates", "t IM"],
        rows,
        notes=[
            "templates, IM, and base-facts are sound under-approximations "
            "(subset in every row)",
            "completeness-forced row: only world-level reasoning (exact or "
            "the confidence-1 base facts) sees facts forced by completeness "
            "bounds; view-based IM/templates cannot. Conversely base-facts "
            "is identity-only (n/a on the projection-view row).",
        ],
    )


def test_e11_im_speed(benchmark):
    """IM canonical-database route on a larger sound source."""
    view = parse_rule("V1(u) <- R(u, w)")
    collection = SourceCollection(
        [
            SourceDescriptor(
                view,
                [fact("V1", f"k{i}") for i in range(40)],
                0, 1, name="S1",
            )
        ]
    )
    q = parse_rule("ans(u) <- R(u, w)")
    result = benchmark(lambda: certain_answer_im(q, collection))
    assert len(result) == 40
