"""E4 — counting methods: exact enumeration vs blocks vs Monte Carlo.

Section 5.1 observes the confidence computation is exponential "at least in
principle". This experiment quantifies the three routes we implement:

* brute-force enumeration of the 0/1 solutions of Γ (the paper's method);
* the signature-block DP (exact, polynomial in the fact space here);
* Monte-Carlo estimation from the exact uniform world sampler
  (error vs sample budget).
"""

import random
import time

from repro.model import fact
from repro.confidence import (
    BlockCounter,
    GammaSystem,
    IdentityInstance,
    WorldSampler,
)
from repro.workloads.random_sources import consistent_identity_collection

from benchmarks.conftest import write_table


def instance_of_size(universe: int, seed: int = 1) -> IdentityInstance:
    # Positive slack keeps poss(S) genuinely uncertain: with slack 0 the
    # declared bounds equal the measured quality and often pin a single
    # world, making confidences degenerate (all 0/1).
    collection, _, domain = consistent_identity_collection(
        3, universe, max(2, universe // 2), slack=0.25, rng=random.Random(seed)
    )
    return IdentityInstance(collection, domain)


def test_e4_exact_vs_blocks_table(benchmark, results_dir):
    """Crossover: brute force explodes, block counting stays flat."""

    def sweep():
        rows = []
        for universe in (6, 10, 14, 18):
            instance = instance_of_size(universe)
            target = sorted(
                instance.blocks[-1].facts
            )[0] if instance.blocks else fact("R", "e0")

            start = time.perf_counter()
            block_confidence = BlockCounter(instance).confidence(target)
            block_time = time.perf_counter() - start

            if universe <= 14:
                gamma = GammaSystem(instance)
                start = time.perf_counter()
                brute_confidence = gamma.confidence(target)
                brute_time = time.perf_counter() - start
                assert brute_confidence == block_confidence
                brute_cell = f"{brute_time * 1000:.1f} ms"
            else:
                brute_cell = f"(2^{universe} worlds — skipped)"
            rows.append(
                [
                    universe,
                    instance.fact_space_size,
                    f"{block_time * 1000:.2f} ms",
                    brute_cell,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e4_exact_vs_blocks",
        "E4a: brute-force Gamma enumeration vs signature-block counting",
        ["|dom|", "N (facts)", "block counting", "brute force"],
        rows,
        notes=["both methods agree exactly wherever brute force is feasible"],
    )


def test_e4_montecarlo_error_table(benchmark, results_dir):
    """MC estimate error vs sample budget against the exact confidence."""

    def sweep():
        instance = instance_of_size(12, seed=4)
        counter = BlockCounter(instance)
        # pick a fact with interior confidence so the MC error is visible
        target = None
        exact = 1.0
        for block in instance.blocks:
            candidate = block.facts[0]
            value = float(counter.confidence(candidate))
            if 0.05 < value < 0.95:
                target, exact = candidate, value
                break
        if target is None:  # fall back to the least-certain covered fact
            target = min(
                (b.facts[0] for b in instance.blocks),
                key=lambda f: float(counter.confidence(f)),
            )
            exact = float(counter.confidence(target))
        rows = []
        for samples in (100, 1000, 10000):
            sampler = WorldSampler(instance, random.Random(7))
            start = time.perf_counter()
            estimate = sampler.estimate_confidence(target, samples)
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    samples,
                    f"{estimate:.4f}",
                    f"{exact:.4f}",
                    f"{abs(estimate - exact):.4f}",
                    f"{elapsed * 1000:.1f} ms",
                ]
            )
        # error at the largest budget should be small
        assert abs(float(rows[-1][1]) - exact) < 0.03
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e4_montecarlo",
        "E4b: Monte-Carlo confidence estimation (exact uniform sampler)",
        ["samples", "estimate", "exact", "abs error", "time"],
        rows,
        notes=["error decays ~ 1/sqrt(samples), as expected"],
    )


def test_e4_block_counting_speed(benchmark):
    """Steady-state timing of the block DP on a 3-source instance."""
    instance = instance_of_size(16, seed=2)
    target = instance.blocks[0].facts[0]
    benchmark(lambda: BlockCounter(instance).confidence(target))


def test_e4_sampler_throughput(benchmark):
    """Worlds sampled per second (sampler setup amortized)."""
    instance = instance_of_size(16, seed=3)
    sampler = WorldSampler(instance, random.Random(11))
    benchmark(sampler.sample)


def test_e4_parallel_speedup(benchmark, results_dir):
    """Serial vs parallel engine on a heavy 5-source instance (E4c).

    Exact confidence of every covered fact decomposes into one independent
    counting task per signature block; the engine dispatches them to worker
    processes. On a multi-core host the 4-worker run must beat serial wall
    clock; on a single-CPU host the numbers are still recorded but the
    speedup is not asserted (there is nothing to parallelize onto).
    """
    from repro.confidence.engine import ConfidenceEngine, available_cpus

    collection, _, domain = consistent_identity_collection(
        5, 40, 20, slack=0.25, rng=random.Random(11)
    )
    workers = 4

    def run():
        with ConfidenceEngine(
            collection, domain, workers=0, cache_size=0
        ) as serial_engine:
            start = time.perf_counter()
            serial_result = serial_engine.confidences()
            serial_time = time.perf_counter() - start
        with ConfidenceEngine(
            collection, domain, workers=workers, mode="chunked", cache_size=0
        ) as parallel_engine:
            start = time.perf_counter()
            parallel_result = parallel_engine.confidences()
            parallel_time = time.perf_counter() - start
            tasks = parallel_engine.stats.tasks_dispatched
        assert parallel_result == serial_result  # identical exact Fractions
        return serial_time, parallel_time, tasks

    serial_time, parallel_time, tasks = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = serial_time / parallel_time
    cpus = available_cpus()
    if cpus >= 2:
        # the acceptance bar: measurable wall-clock win at >= 4 workers
        assert speedup > 1.05, (
            f"parallel engine slower than serial on {cpus} CPUs: "
            f"{serial_time:.2f}s vs {parallel_time:.2f}s"
        )
    write_table(
        "e4_parallel",
        "E4c: serial vs parallel exact counting (5 sources, |dom|=40)",
        ["executor", "workers", "tasks", "wall time", "speedup"],
        [
            ["serial", 1, tasks, f"{serial_time:.2f} s", "1.00x"],
            [
                "chunked pool",
                workers,
                tasks,
                f"{parallel_time:.2f} s",
                f"{speedup:.2f}x",
            ],
        ],
        notes=[
            f"host CPUs available: {cpus}"
            + (" (single CPU: speedup not asserted)" if cpus < 2 else ""),
            "results are identical exact Fractions under both executors",
        ],
    )


def test_e4_parallel_montecarlo(benchmark, results_dir):
    """Serial vs parallel Monte-Carlo estimation, fixed seed (E4d).

    The sample budget is split into fixed-size chunks with per-chunk
    deterministic seeds, so serial and parallel runs return bit-identical
    estimates; only the wall clock changes.
    """
    from repro.confidence.engine import ConfidenceEngine, available_cpus

    instance = instance_of_size(12, seed=4)
    facts = [block.facts[0] for block in instance.blocks]
    samples = 20_000

    def run():
        with ConfidenceEngine(instance, workers=0, cache_size=0) as serial_engine:
            start = time.perf_counter()
            serial_est = serial_engine.estimate_confidences(facts, samples, seed=7)
            serial_time = time.perf_counter() - start
        with ConfidenceEngine(
            instance, workers=4, mode="chunked", cache_size=0
        ) as parallel_engine:
            start = time.perf_counter()
            parallel_est = parallel_engine.estimate_confidences(
                facts, samples, seed=7
            )
            parallel_time = time.perf_counter() - start
        assert parallel_est == serial_est  # bit-identical under a fixed seed
        return serial_time, parallel_time

    serial_time, parallel_time = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table(
        "e4_parallel_montecarlo",
        f"E4d: serial vs parallel Monte Carlo ({samples} samples, seed 7)",
        ["executor", "workers", "wall time", "samples/s"],
        [
            ["serial", 1, f"{serial_time:.2f} s", f"{samples / serial_time:,.0f}"],
            [
                "chunked pool",
                4,
                f"{parallel_time:.2f} s",
                f"{samples / parallel_time:,.0f}",
            ],
        ],
        notes=[
            f"host CPUs available: {available_cpus()}",
            "estimates are bit-identical under both executors (fixed chunking "
            "+ per-chunk seeds)",
        ],
    )
