#!/usr/bin/env python3
"""E22 — availability and answer quality under per-source outages.

The resilience acceptance experiment: scripted chaos schedules take
individual sources down (crash, partition, flap) while an open-loop
request burst runs against the mediator service, and the harness measures
what the breakers + semantic degradation buy:

* **availability** — fraction of requests ending OK. The legacy whole-read
  path turns one crashed source into a blanket ``ERROR`` for everyone; the
  resilience layer answers from the remaining sources instead.
* **answer quality** — what the degraded answers still guarantee: certain
  answers retained vs downgraded-to-possible, per the paper's semantics
  over the demoted (⟨c=0, s=0⟩) annotations.
* **containment** — zero unhandled exceptions anywhere, breakers open
  within their configured thresholds, half-open after cooldown, and
  re-open on a flapping source (the transition log is checked in the
  emitted JSON by ``tools/check_chaos.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_e22_resilience.py            # full
    PYTHONPATH=src python benchmarks/bench_e22_resilience.py --quick   # CI
    PYTHONPATH=src python benchmarks/bench_e22_resilience.py --json out.json

Writes ``benchmarks/results/e22_resilience.txt`` and a JSON trajectory
entry (default ``BENCH_resilience.json`` at the repo root). Exits non-zero
when a crashed request is observed, when resilient availability under the
hard-down scenario falls below the floor, or when the flap scenario's
breaker never re-opens.
"""

from __future__ import annotations

import argparse
import asyncio
import datetime
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for _p in (REPO_ROOT, REPO_ROOT / "src"):
    if str(_p) not in sys.path:
        sys.path.insert(0, str(_p))

from repro.confidence.answers import answer_query
from repro.model import fact
from repro.queries import identity_view, parse_rule
from repro.resilience import ChaosRunner, ChaosSchedule, ResilienceConfig, demote
from repro.service import (
    MediatorService,
    PerSourceGateway,
    SchedulerConfig,
)
from repro.sources import SourceCollection, SourceDescriptor

from benchmarks.conftest import write_table

#: Resilient availability under one hard-down source must stay above this.
AVAILABILITY_FLOOR = 0.95

QUERY = parse_rule("ans(x) <- R(x)")


def sound_chain(n: int) -> SourceCollection:
    """n sound-only sources; S_i alone certifies R(e_i).

    Soundness 1 makes each claimed fact certain; completeness 0 leaves the
    rest of the domain open — so losing S_i downgrades exactly ans(e_i)
    from certain to possible, a clean per-source answer-quality signal.
    """
    return SourceCollection(
        [
            SourceDescriptor(
                identity_view(f"V{i}", "R", 1),
                [fact(f"V{i}", f"e{i}")], 0, 1, name=f"S{i}",
            )
            for i in range(1, n + 1)
        ]
    )


def domain_for(n: int):
    return [f"e{i}" for i in range(1, n + 2)]


def resilience_config() -> ResilienceConfig:
    return ResilienceConfig(
        source_timeout=0.02,
        min_samples=1,
        consecutive_limit=2,
        cooldown=0.04,
    )


async def _drive(collection, domain, chaos: str, requests: int, pace: float,
                 resilient: bool, seed: int):
    """One scenario: a paced request burst under a chaos schedule."""
    gateway = PerSourceGateway(seed=seed)
    runner = ChaosRunner(gateway, ChaosSchedule.parse(chaos, seed=seed))
    service = MediatorService(
        collection, domain,
        config=SchedulerConfig(
            batch_window=0.0,
            max_attempts=2,
            backoff_base=0.001,
            backoff_seed=seed,
            resilience=resilience_config() if resilient else None,
        ),
        gateway=gateway,
    )
    probes = [fact("R", f"e{i + 1}") for i in range(len(tuple(collection)))]
    outcome = {
        "requests": requests,
        "ok": 0, "error": 0, "timeout": 0, "rejected": 0,
        "degraded": 0, "crashed_requests": 0,
    }
    degraded_answer_sets = []
    async with service:
        loop = asyncio.get_running_loop()
        start = loop.time()
        runner.advance(0.0)
        for i in range(requests):
            runner.advance(loop.time() - start)
            try:
                response = await service.answer(QUERY, timeout=2.0)
                outcome[response.status.value] += 1
                if response.degraded:
                    outcome["degraded"] += 1
                    degraded_answer_sets.append(
                        (response.excluded_sources,
                         frozenset(response.answers),
                         frozenset(response.downgraded_answers))
                    )
            except Exception:  # the containment claim: this never happens
                outcome["crashed_requests"] += 1
            if pace:
                await asyncio.sleep(pace)
        stats = service.stats()
    outcome["availability"] = outcome["ok"] / requests
    outcome["probed_facts"] = len(probes)
    return outcome, stats, degraded_answer_sets


def check_degraded_semantics(collection, domain, degraded_sets) -> int:
    """Every degraded answer set must equal the statically-demoted
    semantics for its exclusion set. Returns the number of distinct
    exclusion sets differentially checked."""
    checked = {}
    for excluded, answers, downgraded in degraded_sets:
        key = tuple(excluded)
        if key not in checked:
            weak = answer_query(QUERY, demote(collection, set(excluded)), domain)
            full = answer_query(QUERY, collection, domain)
            checked[key] = (frozenset(weak.certain),
                            frozenset(full.certain - weak.certain))
        want_certain, want_downgraded = checked[key]
        if answers != want_certain or downgraded != want_downgraded:
            raise AssertionError(
                f"E22: degraded answers diverge from demoted semantics "
                f"(excluded={excluded})"
            )
    return len(checked)


def transition_counts(stats) -> dict:
    edges = {}
    for t in stats.get("resilience", {}).get("transitions", ()):
        edges[(t["from"], t["to"])] = edges.get((t["from"], t["to"]), 0) + 1
    return {
        "opened": edges.get(("closed", "open"), 0)
        + edges.get(("half_open", "open"), 0),
        "reopened": edges.get(("half_open", "open"), 0),
        "half_opened": edges.get(("open", "half_open"), 0),
        "closed": edges.get(("half_open", "closed"), 0),
        "edges": {f"{a}->{b}": n for (a, b), n in sorted(edges.items())},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer sources/requests (CI smoke mode)",
    )
    parser.add_argument(
        "--json", type=Path, default=REPO_ROOT / "BENCH_resilience.json",
        help="where to write the JSON trajectory entry",
    )
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)
    mode = "quick" if args.quick else "full"
    n = 4 if args.quick else 6
    requests = 30 if args.quick else 90
    pace = 0.012 if args.quick else 0.006

    collection = sound_chain(n)
    domain = domain_for(n)
    # The flap window: S2 crashes at t=0, heals at 40% of the run (long
    # enough past the 40ms cooldown for a half-open probe to close the
    # breaker), then crashes again at 70%.
    span_ms = int(requests * pace * 1000)
    flap = (
        f"0:S2:crash, {int(span_ms * 0.4)}:S2:ok, "
        f"{int(span_ms * 0.7)}:S2:crash"
    )
    scenarios = {
        "healthy": ("", True),
        "hard_down": ("0:S2:crash", True),
        "hard_down_legacy": ("0:S2:crash", False),
        "partition": ("0:S2:partition", True),
        "flap_recover_flap": (flap, True),
    }

    results = {}
    rows = []
    wall = time.perf_counter()
    for name, (chaos, resilient) in scenarios.items():
        outcome, stats, degraded_sets = asyncio.run(
            _drive(collection, domain, chaos, requests, pace,
                   resilient, args.seed)
        )
        outcome["differential_checks"] = check_degraded_semantics(
            collection, domain, degraded_sets
        )
        outcome["transitions"] = transition_counts(stats)
        counters = stats["metrics"]["counters"]
        outcome["counters"] = {
            k: counters[k] for k in sorted(counters)
            if k.startswith(("breaker", "source_", "retry", "responses_",
                             "degraded"))
        }
        results[name] = outcome
        rows.append([
            name,
            "on" if resilient else "off",
            f"{100 * outcome['availability']:6.1f}%",
            outcome["degraded"],
            outcome["error"],
            outcome["crashed_requests"],
            outcome["transitions"]["opened"],
            outcome["transitions"]["half_opened"],
        ])
    elapsed = time.perf_counter() - wall

    resilient_avail = results["hard_down"]["availability"]
    legacy_avail = results["hard_down_legacy"]["availability"]
    crashed = sum(r["crashed_requests"] for r in results.values())
    flap_t = results["flap_recover_flap"]["transitions"]
    failures = []
    if crashed:
        failures.append(f"{crashed} unhandled request exceptions")
    if resilient_avail < AVAILABILITY_FLOOR:
        failures.append(
            f"hard-down availability {resilient_avail:.2f} < floor "
            f"{AVAILABILITY_FLOOR}"
        )
    if resilient_avail <= legacy_avail:
        failures.append(
            "resilience bought no availability over the legacy path"
        )
    if not (flap_t["reopened"] >= 1 and flap_t["half_opened"] >= 1
            and flap_t["closed"] >= 1):
        failures.append(f"flap scenario transitions incomplete: {flap_t}")

    notes = [
        f"mode={mode}; {n} sound-only sources, {requests} paced requests "
        f"per scenario, seed={args.seed}; wall {elapsed:.1f}s",
        f"headline: hard-down availability {100 * resilient_avail:.0f}% "
        f"resilient vs {100 * legacy_avail:.0f}% legacy "
        f"(floor {100 * AVAILABILITY_FLOOR:.0f}%) -> "
        f"{'PASS' if not failures else 'FAIL'}",
        "degraded answers differentially checked against the statically "
        "demoted collection (paper semantics) every scenario",
        "legacy = whole-read gateway, no breakers: one crashed source "
        "fails the entire batch read",
    ]
    table = write_table(
        "e22_resilience",
        "E22: availability and answer quality under per-source outages",
        ["scenario", "resilience", "avail", "degraded", "error",
         "crashed", "opens", "half-opens"],
        rows,
        notes=notes,
    )
    print(table)

    payload = {
        "bench": "e22_resilience",
        "date": datetime.date.today().isoformat(),
        "mode": mode,
        "sources": n,
        "requests": requests,
        "seed": args.seed,
        "scenarios": results,
        "acceptance": {
            "availability_floor": AVAILABILITY_FLOOR,
            "hard_down_availability": resilient_avail,
            "legacy_availability": legacy_avail,
            "crashed_requests": crashed,
            "flap_transitions": flap_t,
            "passed": not failures,
            "failures": failures,
        },
    }
    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
