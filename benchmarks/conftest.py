"""Shared benchmark helpers: result tables written to benchmarks/results/.

Each experiment bench both *times* its key operation (pytest-benchmark) and
*regenerates the experiment's table* — the rows a paper evaluation section
would print. Tables are written to ``benchmarks/results/<experiment>.txt``
so they survive pytest's output capture; EXPERIMENTS.md summarizes them.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_table(
    experiment: str,
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence],
    notes: Sequence[str] = (),
) -> str:
    """Render an aligned text table and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(header[i])
        for i in range(len(header))
    ]

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = [title, "=" * len(title), "", fmt(header), fmt(["-" * w for w in widths])]
    lines += [fmt(r) for r in str_rows]
    if notes:
        lines += [""] + [f"note: {n}" for n in notes]
    text = "\n".join(lines) + "\n"
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    return text


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
