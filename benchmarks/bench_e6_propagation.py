"""E6 — Definition 5.1 / Theorem 5.1: the propagation calculus vs the
possible-worlds definition.

The calculus is exact for selection and for operators over independent
events; projection/product over *correlated* tuples (shared base facts,
sources inducing correlations) is where Theorem 5.1's implicit independence
assumption bites. We measure the agreement per operator and the deviation on
adversarially-correlated queries, plus the wall-clock gap (propagation is
polynomial; enumeration is exponential).
"""

import time
from fractions import Fraction

from repro.model import Constant, fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.algebra import (
    Col,
    Comparison,
    Product,
    Projection,
    RelationScan,
    Selection,
    UnionNode,
)
from repro.confidence import (
    ExactCalculus,
    IdentityInstance,
    answer_query,
    base_confidences_from_facts,
    covered_fact_confidences,
    propagate,
)

from benchmarks.conftest import write_table


def example51():
    return SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1),
                [fact("V1", "a"), fact("V1", "b")], "1/2", "1/2", name="S1",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "b"), fact("V2", "c")], "1/2", "1/2", name="S2",
            ),
        ]
    )


DOMAIN = ["a", "b", "c", "d1"]


def operator_queries():
    scan = RelationScan("R", 1)
    yield "scan R", scan, ("b",)
    yield "sigma(x=b)", Selection(Comparison(Col(0), "=", "b"), scan), ("b",)
    yield "pi(identity)", Projection([0], scan), ("b",)
    yield "pi(collapse-all)", Projection([Constant("t")], scan), ("t",)
    yield "product RxR", Product(scan, scan), ("a", "b")
    yield "union R|R", UnionNode(scan, scan), ("b",)


def test_e6_operator_agreement_table(benchmark, results_dir):
    """Per-operator: propagated conf vs exact possible-world confidence."""

    def sweep():
        collection = example51()
        base = base_confidences_from_facts(
            covered_fact_confidences(collection, DOMAIN)
        )
        calculus = ExactCalculus(IdentityInstance(collection, DOMAIN))
        rows = []
        for name, query, probe_values in operator_queries():
            probe = tuple(Constant(v) for v in probe_values)
            start = time.perf_counter()
            propagated = propagate(query, base).get(probe, Fraction(0))
            propagation_time = time.perf_counter() - start
            start = time.perf_counter()
            via_exact_calculus = calculus.confidence(query, probe)
            exact_calculus_time = time.perf_counter() - start
            start = time.perf_counter()
            exact = answer_query(query, collection, DOMAIN).confidences.get(
                probe, Fraction(0)
            )
            enumeration_time = time.perf_counter() - start
            assert via_exact_calculus == exact, name  # repaired calculus: exact
            deviation = abs(float(propagated) - float(exact))
            rows.append(
                [
                    name,
                    f"{float(propagated):.4f}",
                    f"{float(via_exact_calculus):.4f}",
                    f"{float(exact):.4f}",
                    f"{deviation:.4f}",
                    f"{propagation_time * 1000:.2f} ms",
                    f"{exact_calculus_time * 1000:.2f} ms",
                    f"{enumeration_time * 1000:.2f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # scan / selection / identity-projection rows must agree exactly
    for row in rows[:3]:
        assert row[4] == "0.0000", row
    write_table(
        "e6_operator_agreement",
        "E6a: Definition 5.1 calculus vs exact calculus vs possible worlds",
        ["query", "conf_Q (Def 5.1)", "exact calculus", "worlds",
         "|Def5.1 dev|", "t Def5.1", "t exact calc", "t worlds"],
        rows,
        notes=[
            "scan/selection/1-1 projection: Def 5.1 already exact (Thm 5.1)",
            "merging projection & self-product: Def 5.1 deviates (violated "
            "independence); the inclusion-exclusion calculus matches the "
            "possible-worlds value exactly on every operator",
        ],
    )


def test_e6_union_independent_sources_exact(benchmark, results_dir):
    """Union over *disjoint* relations behaves independently — exact match
    requires genuinely independent base events, so we use two separate
    single-source collections glued by union."""

    def run():
        # one source per relation; the relations don't interact
        collection = SourceCollection(
            [
                SourceDescriptor(
                    identity_view("V1", "R", 1), [fact("V1", "a")], 0, 1, name="S1"
                ),
                SourceDescriptor(
                    identity_view("V2", "R", 1), [fact("V2", "a")], 0, "0", name="S2"
                ),
            ]
        )
        base = base_confidences_from_facts(
            covered_fact_confidences(collection, ["a", "b"])
        )
        query = UnionNode(RelationScan("R", 1), RelationScan("R", 1))
        propagated = propagate(query, base)[(Constant("a"),)]
        exact = answer_query(query, collection, ["a", "b"]).confidences[
            (Constant("a"),)
        ]
        return propagated, exact

    propagated, exact = benchmark.pedantic(run, rounds=1, iterations=1)
    # union of a relation with itself on a certain fact stays exact
    assert propagated == exact == 1


def test_e6_propagation_speed(benchmark):
    """Throughput of the calculus on a three-operator tree."""
    collection = example51()
    base = base_confidences_from_facts(
        covered_fact_confidences(collection, DOMAIN)
    )
    query = Projection(
        [0], Selection(Comparison(Col(0), "!=", "zz"), RelationScan("R", 1))
    )
    benchmark(lambda: propagate(query, base))


def test_e6_engine_base_confidences(benchmark, results_dir):
    """Engine-backed base confidences for the propagation calculus (E6c).

    Definition 5.1's calculus starts from base-fact confidences; computing
    them through the memoized engine means repeated propagation runs (and
    any other query touching the same blocks) reuse the counting work. The
    table shows per-stage wall time and the cache effect across two runs.
    """
    from repro.confidence.engine import ConfidenceEngine, LRUMemo

    collection = example51()
    memo = LRUMemo(128)

    def run():
        rows = []
        for label in ("cold", "warm"):
            engine = ConfidenceEngine(collection, DOMAIN, memo=memo)
            start = time.perf_counter()
            base = base_confidences_from_facts(engine.confidences())
            propagated = propagate(RelationScan("R", 1), base)
            elapsed = time.perf_counter() - start
            assert propagated[(Constant("b"),)] == Fraction(6, 7)
            stage_ms = {
                name: stage.seconds * 1000
                for name, stage in engine.stats.stages.items()
            }
            rows.append(
                [
                    label,
                    f"{stage_ms.get('plan', 0):.2f} ms",
                    f"{stage_ms.get('count', 0):.2f} ms",
                    f"{elapsed * 1000:.2f} ms",
                    f"{engine.stats.cache.hit_rate:.0%}",
                ]
            )
            engine.close()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table(
        "e6_engine",
        "E6c: propagation calculus over engine-computed base confidences",
        ["pass", "t plan", "t count", "t total", "cache hit rate"],
        rows,
        notes=[
            "warm pass: every base-fact counting task served from the memo",
        ],
    )
