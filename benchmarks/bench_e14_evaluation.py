"""E14 — query-evaluation engines: naive vs backtracking vs hash-indexed.

The substrate's inner loop (view application inside ``admits``/``poss``)
dominates everything else, so its scaling matters. Three engines, one
two-hop join workload over growing edge relations:

* **naive** — full cross product then filter (the semantic definition);
* **backtracking** — most-bound-first join with per-atom extension scans;
* **indexed** — the same join order with hash-index candidate lookup.

Shapes to reproduce: naive is quadratic-in-candidates and falls off a cliff;
indexed beats backtracking by a growing factor as relations grow.
"""

import random
import time

from repro.model import GlobalDatabase, fact
from repro.queries import (
    DatabaseIndex,
    evaluate,
    evaluate_indexed,
    evaluate_naive,
    parse_rule,
)

from benchmarks.conftest import write_table

TWO_HOP = parse_rule("V(x, z) <- E(x, y), E(y, z)")


def edge_db(n_edges: int, n_nodes: int, seed: int = 1) -> GlobalDatabase:
    rng = random.Random(seed)
    return GlobalDatabase(
        fact("E", rng.randint(1, n_nodes), rng.randint(1, n_nodes))
        for _ in range(n_edges)
    )


def test_e14_engine_scaling_table(benchmark, results_dir):
    """Two-hop join cost per engine, growing the edge relation."""

    def sweep():
        rows = []
        for n_edges in (30, 100, 300, 1000):
            db = edge_db(n_edges, n_nodes=n_edges // 3)

            start = time.perf_counter()
            via_backtracking = evaluate(TWO_HOP, db)
            backtracking_time = time.perf_counter() - start

            start = time.perf_counter()
            via_indexed = evaluate_indexed(TWO_HOP, db)
            indexed_time = time.perf_counter() - start
            assert via_indexed == via_backtracking

            if n_edges <= 100:
                start = time.perf_counter()
                via_naive = evaluate_naive(TWO_HOP, db)
                naive_time = time.perf_counter() - start
                assert via_naive == via_backtracking
                naive_cell = f"{naive_time * 1000:.1f} ms"
            else:
                naive_cell = "(skipped)"
            rows.append(
                [
                    n_edges,
                    len(via_backtracking),
                    naive_cell,
                    f"{backtracking_time * 1000:.1f} ms",
                    f"{indexed_time * 1000:.1f} ms",
                    f"{backtracking_time / max(indexed_time, 1e-9):.1f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # indexed must win clearly on the largest input
    assert float(rows[-1][-1].rstrip("x")) > 2
    write_table(
        "e14_evaluation",
        "E14: two-hop join — naive vs backtracking vs hash-indexed",
        ["|E|", "|answers|", "naive", "backtracking", "indexed",
         "index speedup"],
        rows,
        notes=["all engines agree on every input"],
    )


def test_e14_indexed_throughput(benchmark):
    """Steady-state indexed evaluation with a shared, pre-warmed index."""
    db = edge_db(600, 200)
    index = DatabaseIndex(db)
    evaluate_indexed(TWO_HOP, index)  # warm the indexes
    benchmark(lambda: evaluate_indexed(TWO_HOP, index))


def test_e14_backtracking_throughput(benchmark):
    """Same workload on the plain backtracking engine, for comparison."""
    db = edge_db(600, 200)
    benchmark(lambda: evaluate(TWO_HOP, db))
