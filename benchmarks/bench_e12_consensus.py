"""E12 — consensus & trust (the §6 future-work direction, measured).

A fleet of honest exact reporters plus one fabricating reporter: the
conflict analysis must (i) isolate the fabricator with zero consensus
trust and maximal blame, (ii) propose dropping exactly it, and (iii) find a
small uniform bound discount restoring consistency. The table sweeps the
fleet size; a second table measures the cost of conflict enumeration as the
number of sources grows (exponential, as expected for subset search).
"""

import time

from repro.model import fact
from repro.queries import identity_view
from repro.sources import SourceCollection, SourceDescriptor
from repro.consensus import (
    blame_scores,
    consensus_trust_scores,
    minimal_inconsistent_subcollections,
    repair_via_hitting_set,
    uniform_relaxation,
)

from benchmarks.conftest import write_table


def fleet_with_fabricator(n_honest: int) -> SourceCollection:
    truth = ["alice", "bob", "carol"]
    sources = [
        SourceDescriptor(
            identity_view(f"V{i}", "Customer", 1),
            [fact(f"V{i}", x) for x in truth],
            1, 1, name=f"honest{i}",
        )
        for i in range(1, n_honest + 1)
    ]
    sources.append(
        SourceDescriptor(
            identity_view("Vf", "Customer", 1),
            [fact("Vf", "mallory")],
            1, 1, name="fabricator",
        )
    )
    return SourceCollection(sources)


def test_e12_fabricator_detection_table(benchmark, results_dir):
    """The fabricator must always be isolated, at any honest-fleet size."""

    def sweep():
        rows = []
        for n_honest in (2, 3, 4, 5):
            collection = fleet_with_fabricator(n_honest)
            start = time.perf_counter()
            trust = consensus_trust_scores(collection)
            blame = blame_scores(collection)
            repair, conflicts = repair_via_hitting_set(collection)
            elapsed = time.perf_counter() - start
            assert trust["fabricator"] == 0
            assert all(
                trust[f"honest{i}"] == 1 for i in range(1, n_honest + 1)
            )
            assert repair == frozenset({"fabricator"})
            rows.append(
                [
                    n_honest,
                    len(conflicts),
                    f"{float(blame['fabricator']):.2f}",
                    f"{float(blame['honest1']):.2f}",
                    ", ".join(sorted(repair)),
                    f"{elapsed * 1000:.1f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e12_fabricator",
        "E12a: isolating a fabricating source among honest reporters",
        ["honest sources", "conflicts", "blame(fab)", "blame(honest)",
         "repair", "time"],
        rows,
        notes=["consensus trust: fabricator 0, every honest source 1"],
    )


def test_e12_relaxation_table(benchmark, results_dir):
    """Charitable reading: the discount restoring joint satisfiability."""

    def sweep():
        rows = []
        for n_honest in (2, 4):
            collection = fleet_with_fabricator(n_honest)
            start = time.perf_counter()
            discount, relaxed = uniform_relaxation(collection)
            elapsed = time.perf_counter() - start
            from repro.consistency import check_consistency

            assert check_consistency(relaxed).consistent
            rows.append(
                [n_honest, f"{float(discount):.4f}", f"{elapsed * 1000:.0f} ms"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "e12_relaxation",
        "E12b: uniform bound discount restoring consistency",
        ["honest sources", "discount", "time"],
        rows,
    )


def test_e12_conflict_enumeration_speed(benchmark):
    """Conflict enumeration on a 5-honest + 1-fabricator fleet."""
    collection = fleet_with_fabricator(5)
    conflicts = benchmark(
        lambda: minimal_inconsistent_subcollections(collection)
    )
    assert len(conflicts) == 5  # each honest source vs the fabricator
