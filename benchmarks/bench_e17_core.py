#!/usr/bin/env python3
"""E17 — the interned core vs the boxed representation (the repro.core refactor).

Measures the multi-layer interning refactor on the two workloads the paper's
algorithms spend their time in:

* **E1c block counting** — one full confidence pass over Example 5.1 at
  growing domain size m: signature-block decomposition, one memo key and one
  kernel solve per block, plus the denominator. Interned arm:
  :class:`repro.confidence.blocks.IdentityInstance` + :func:`canonical_key`.
  Boxed arm: :func:`repro.core.baseline.boxed_signature_decomposition` +
  :func:`canonical_key_boxed`. Both arms run the *same* kernel DP, so the
  delta is purely the representation layer.
* **E4c consistency** — the generic freeze-then-quotient CONSISTENCY search
  on join-view collections (:func:`check_consistency` vs the preserved
  :func:`check_consistency_boxed`). Identity collections short-circuit into
  the §5.1 ``check_identity`` fast path on both arms, so — adapting the E4
  generator — this bench uses general (non-identity) collections, which are
  the inputs that actually reach the search being measured.
* **wire shipping** — pickle roundtrip of a counting problem in
  ``to_wire`` flat-int form vs the structured ``ReducedProblem``, the shape
  the parallel engine ships to worker processes.

Both arms are asserted to produce identical answers (confidences, verdicts,
methods, counters, witnesses) before anything is timed — the refactor's
fidelity contract, enforced again here on the benchmark workloads.

Usage::

    PYTHONPATH=src python benchmarks/bench_e17_core.py            # full
    PYTHONPATH=src python benchmarks/bench_e17_core.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_e17_core.py --json out.json

Writes ``benchmarks/results/e17_core.txt`` and a JSON trajectory entry
(default ``BENCH_core.json`` at the repo root). Exits non-zero when the
headline speedups fall below the acceptance floor (2.0x full, 1.5x quick —
the quick floor is looser because CI machines are noisy).
"""

from __future__ import annotations

import argparse
import datetime
import json
import pickle
import sys
import time
from fractions import Fraction
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for _p in (REPO_ROOT, REPO_ROOT / "src"):
    if str(_p) not in sys.path:
        sys.path.insert(0, str(_p))

from repro.confidence.blocks import IdentityInstance
from repro.confidence.engine import kernel
from repro.confidence.engine.memo import canonical_key, canonical_key_boxed
from repro.consistency.checker import check_consistency, check_consistency_boxed
from repro.core.baseline import boxed_signature_decomposition
from repro.model import Atom, Variable, fact
from repro.queries import identity_view
from repro.queries.conjunctive import ConjunctiveQuery
from repro.sources import SourceCollection, SourceDescriptor

from benchmarks.conftest import write_table

SPEEDUP_FLOOR_FULL = 2.0
SPEEDUP_FLOOR_QUICK = 1.5


def best_of(fn, reps: int) -> float:
    """Fastest of *reps* timed calls, in seconds (standard microbench floor)."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- E1c: block counting -------------------------------------------------------

def example51_collection() -> SourceCollection:
    return SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1),
                [fact("V1", "a"), fact("V1", "b")],
                "1/2", "1/2", name="S1",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "b"), fact("V2", "c")],
                "1/2", "1/2", name="S2",
            ),
        ]
    )


def domain(m: int):
    return ["a", "b", "c"] + [f"d{i}" for i in range(1, m + 1)]


def _solve_blocks(spec, key_fn):
    """One confidence pass over a spec: key + solve per block + denominator."""
    denominator_problem = kernel.reduce_spec(spec)
    key_fn(denominator_problem)
    denominator = kernel.solve(denominator_problem)[0]
    confidences = []
    for j in range(spec.n_blocks):
        problem = kernel.reduce_spec(spec, forced={j: 1})
        key_fn(problem)
        confidences.append(Fraction(kernel.solve(problem)[0], denominator))
    return confidences


def e1c_interned_pass(collection, dom):
    instance = IdentityInstance(collection, dom)
    return _solve_blocks(kernel.spec_of(instance), canonical_key)


def e1c_boxed_pass(collection, dom):
    decomposition = boxed_signature_decomposition(collection, dom)
    spec = kernel.CountingSpec(
        signatures=tuple(sig for sig, _ in decomposition.blocks),
        sizes=tuple(len(facts) for _, facts in decomposition.blocks),
        min_sound=tuple(s.min_sound_count() for s in collection),
        completeness=tuple(s.completeness_bound for s in collection),
        anonymous_size=decomposition.anonymous_size,
    )
    return _solve_blocks(spec, canonical_key_boxed)


def run_e1c(quick: bool):
    collection = example51_collection()
    rows, records = [], []
    reps_by_m = {200: (10, 30), 2000: (5, 20), 20000: (3, 8)}
    for m, (quick_reps, full_reps) in reps_by_m.items():
        dom = domain(m)
        interned = e1c_interned_pass(collection, dom)
        boxed = e1c_boxed_pass(collection, dom)
        if interned != boxed:
            raise AssertionError(f"E1c m={m}: arms disagree on confidences")
        reps = quick_reps if quick else full_reps
        t_interned = best_of(lambda: e1c_interned_pass(collection, dom), reps)
        t_boxed = best_of(lambda: e1c_boxed_pass(collection, dom), reps)
        speedup = t_boxed / t_interned
        rows.append(
            ["E1c block counting", f"m={m}",
             f"{t_interned * 1000:.3f} ms", f"{t_boxed * 1000:.3f} ms",
             f"{speedup:.2f}x"]
        )
        records.append(
            {"m": m, "interned_ms": round(t_interned * 1000, 3),
             "boxed_ms": round(t_boxed * 1000, 3),
             "speedup": round(speedup, 2)}
        )
    return rows, records


# -- E4c: consistency ----------------------------------------------------------

def general_collection(n_ext: int, sat: bool) -> SourceCollection:
    """Join-view collections sized by extension count; unsat via exact bounds.

    The satisfiable family is decided by the canonical freeze; the
    unsatisfiable family (completeness = soundness = 1 plus an empty source
    demanding P = ∅) forces the search to exhaust every combination and
    quotient, the worst case the interned representation targets.
    """
    x, y = Variable("x"), Variable("y")
    v1 = ConjunctiveQuery(Atom("V1", (x,)), [Atom("R", (x, y))])
    v2 = ConjunctiveQuery(Atom("V2", (x, y)), [Atom("R", (x, y)), Atom("P", (y,))])
    bounds = ("1/2", "1/2") if sat else (Fraction(1), Fraction(1))
    sources = [
        SourceDescriptor(
            v1, [fact("V1", f"a{i}") for i in range(n_ext)],
            *bounds, name="S1",
        ),
        SourceDescriptor(
            v2, [fact("V2", f"a{i}", f"b{i}") for i in range(n_ext)],
            *bounds, name="S2",
        ),
    ]
    if not sat:
        sources.append(
            SourceDescriptor(
                ConjunctiveQuery(Atom("V3", (x,)), [Atom("P", (x,))]),
                [], Fraction(1), Fraction(1), name="S3",
            )
        )
    return SourceCollection(sources)


def run_e4c(quick: bool):
    cases = [
        ("sat n=3", general_collection(3, sat=True), {}, 20 if quick else 50),
        ("unsat n=2", general_collection(2, sat=False),
         {"max_quotients": 20000}, 5 if quick else 10),
    ]
    if not quick:
        cases.append(
            ("unsat n=3", general_collection(3, sat=False),
             {"max_quotients": 20000}, 3)
        )
    rows, records = [], []
    for label, collection, caps, reps in cases:
        interned = check_consistency(collection, **caps)
        boxed = check_consistency_boxed(collection, **caps)
        agree = (
            interned.consistent == boxed.consistent
            and interned.method == boxed.method
            and interned.combinations_tried == boxed.combinations_tried
            and (not interned.consistent or interned.witness == boxed.witness)
        )
        if not agree:
            raise AssertionError(f"E4c {label}: arms disagree on the verdict")
        t_interned = best_of(lambda: check_consistency(collection, **caps), reps)
        t_boxed = best_of(
            lambda: check_consistency_boxed(collection, **caps), reps
        )
        speedup = t_boxed / t_interned
        rows.append(
            [f"E4c consistency", f"{label} ({interned.method})",
             f"{t_interned * 1000:.3f} ms", f"{t_boxed * 1000:.3f} ms",
             f"{speedup:.2f}x"]
        )
        records.append(
            {"case": label, "method": interned.method,
             "interned_ms": round(t_interned * 1000, 3),
             "boxed_ms": round(t_boxed * 1000, 3),
             "speedup": round(speedup, 2)}
        )
    return rows, records


# -- wire shipping -------------------------------------------------------------

def run_wire(quick: bool):
    instance = IdentityInstance(example51_collection(), domain(200))
    problem = kernel.reduce_spec(kernel.spec_of(instance))
    wire = kernel.to_wire(problem)
    if kernel.from_wire(wire) != problem:
        raise AssertionError("wire roundtrip is not the identity")
    reps = 2000 if quick else 10000

    def roundtrip_wire():
        pickle.loads(pickle.dumps(kernel.to_wire(problem)))

    def roundtrip_boxed():
        pickle.loads(pickle.dumps(problem))

    t_wire = best_of(lambda: [roundtrip_wire() for _ in range(50)], reps // 50)
    t_boxed = best_of(lambda: [roundtrip_boxed() for _ in range(50)], reps // 50)
    speedup = t_boxed / t_wire
    wire_bytes = len(pickle.dumps(wire))
    boxed_bytes = len(pickle.dumps(problem))
    row = [
        "wire shipping",
        f"50 pickle roundtrips ({wire_bytes} vs {boxed_bytes} bytes)",
        f"{t_wire * 1000:.3f} ms", f"{t_boxed * 1000:.3f} ms",
        f"{speedup:.2f}x",
    ]
    record = {
        "wire_bytes": wire_bytes, "boxed_bytes": boxed_bytes,
        "interned_ms": round(t_wire * 1000, 3),
        "boxed_ms": round(t_boxed * 1000, 3),
        "speedup": round(speedup, 2),
    }
    return [row], record


# -- driver --------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer reps and the small unsat case only (CI smoke mode)",
    )
    parser.add_argument(
        "--json", type=Path, default=REPO_ROOT / "BENCH_core.json",
        help="where to write the JSON trajectory entry",
    )
    args = parser.parse_args(argv)
    floor = SPEEDUP_FLOOR_QUICK if args.quick else SPEEDUP_FLOOR_FULL
    mode = "quick" if args.quick else "full"

    e1c_rows, e1c_records = run_e1c(args.quick)
    e4c_rows, e4c_records = run_e4c(args.quick)
    wire_rows, wire_record = run_wire(args.quick)

    # Headlines: the largest E1c domain and the hardest unsat search run.
    e1c_headline = e1c_records[-1]["speedup"]
    e4c_headline = max(
        r["speedup"] for r in e4c_records if r["case"].startswith("unsat")
    )
    passed = e1c_headline >= floor and e4c_headline >= floor

    notes = [
        f"mode={mode}; acceptance floor {floor:.1f}x on the largest E1c row "
        f"and the largest unsat E4c row",
        f"headlines: E1c {e1c_headline:.2f}x, E4c {e4c_headline:.2f}x -> "
        f"{'PASS' if passed else 'FAIL'}",
        "E4c sat rows are freeze-decided (few candidates) and expected near "
        "parity; the search-bound unsat rows carry the acceptance check",
        "both arms share the kernel DP; deltas are the representation layer",
    ]
    table = write_table(
        "e17_core",
        "E17: interned core vs boxed representation",
        ["workload", "case", "interned", "boxed", "speedup"],
        e1c_rows + e4c_rows + wire_rows,
        notes=notes,
    )
    print(table)

    payload = {
        "bench": "e17_core",
        "date": datetime.date.today().isoformat(),
        "mode": mode,
        "workloads": {
            "e1c_block_counting": e1c_records,
            "e4c_consistency": e4c_records,
            "wire_shipping": wire_record,
        },
        "acceptance": {
            "floor": floor,
            "e1c_headline_speedup": e1c_headline,
            "e4c_headline_speedup": e4c_headline,
            "passed": passed,
        },
    }
    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}")

    if not passed:
        print(
            f"FAIL: headline speedups below the {floor:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
