"""repro — Querying Partially Sound and Complete Data Sources.

A complete implementation of Mendelzon & Mihaila (PODS 2001):

* :mod:`repro.model` — relational substrate (terms, atoms, databases);
* :mod:`repro.queries` — conjunctive queries, views, evaluation, parsing;
* :mod:`repro.algebra` — relational algebra with CQ translation;
* :mod:`repro.sources` — source descriptors ⟨φ, v, c, s⟩ and measures;
* :mod:`repro.consistency` — the CONSISTENCY decision procedure (§3);
* :mod:`repro.reductions` — HS / HS* and the Theorem 3.2 reductions;
* :mod:`repro.tableaux` — database templates and Theorem 4.1 (§4);
* :mod:`repro.confidence` — possible worlds, exact tuple confidence,
  certain/possible answers, the Definition 5.1 calculus (§5);
* :mod:`repro.integration` — the mediator facade and source planner;
* :mod:`repro.service` — the mediator as a long-running concurrent service
  (versioned registry, request scheduling, fault injection, observability);
* :mod:`repro.workloads` — synthetic climatology / cache / random sources;
* :mod:`repro.baselines` — Grahne–Mendelzon 0/1 case, Motro checks.

Quickstart::

    from repro import Mediator, SourceDescriptor, identity_view, fact

    mediator = Mediator()
    mediator.register(SourceDescriptor(
        identity_view("V1", "R", 1),
        [fact("V1", "a"), fact("V1", "b")], 0.5, 0.5, name="S1"))
    mediator.register(SourceDescriptor(
        identity_view("V2", "R", 1),
        [fact("V2", "b"), fact("V2", "c")], 0.5, 0.5, name="S2"))
    print(mediator.check_consistency().consistent)          # True
    print(mediator.base_confidences(["a", "b", "c", "d"]))  # R(b) ranks first
"""

from repro.exceptions import (
    BoundError,
    DomainTooLargeError,
    InconsistentCollectionError,
    ModelError,
    ParseError,
    QueryError,
    ReductionError,
    ReproError,
    SourceError,
    UnsafeQueryError,
)
from repro.model import (
    Atom,
    Constant,
    GlobalDatabase,
    GlobalSchema,
    Variable,
    atom,
    fact,
)
from repro.queries import (
    ConjunctiveQuery,
    answer_query as make_answer_query,
    identity_view,
    parse_fact,
    parse_rule,
)
from repro.sources import SourceCollection, SourceDescriptor
from repro.consistency import ConsistencyResult, check_consistency, is_consistent
from repro.confidence import (
    BlockCounter,
    GammaSystem,
    IdentityInstance,
    WorldSampler,
    answer_query,
    certain_answer,
    covered_fact_confidences,
    fact_confidence,
    possible_answer,
    possible_worlds,
)
from repro.consensus import (
    consensus_trust_scores,
    minimal_repairs,
    trust_scores,
    uniform_relaxation,
)
from repro.integration import Mediator
from repro.service import MediatorService
from repro.tableaux import DatabaseTemplate, Tableau, theorem41_holds

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "ModelError",
    "QueryError",
    "UnsafeQueryError",
    "ParseError",
    "SourceError",
    "BoundError",
    "InconsistentCollectionError",
    "DomainTooLargeError",
    "ReductionError",
    # model
    "Atom",
    "Constant",
    "Variable",
    "GlobalDatabase",
    "GlobalSchema",
    "atom",
    "fact",
    # queries
    "ConjunctiveQuery",
    "identity_view",
    "parse_rule",
    "parse_fact",
    "make_answer_query",
    # sources
    "SourceDescriptor",
    "SourceCollection",
    # consistency
    "ConsistencyResult",
    "check_consistency",
    "is_consistent",
    # confidence
    "IdentityInstance",
    "BlockCounter",
    "GammaSystem",
    "WorldSampler",
    "possible_worlds",
    "fact_confidence",
    "covered_fact_confidences",
    "answer_query",
    "certain_answer",
    "possible_answer",
    # tableaux
    "Tableau",
    "DatabaseTemplate",
    "theorem41_holds",
    # consensus
    "trust_scores",
    "consensus_trust_scores",
    "minimal_repairs",
    "uniform_relaxation",
    # integration
    "Mediator",
    "MediatorService",
]
