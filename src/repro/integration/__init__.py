"""High-level integration facade: mediator and source-ordering planner."""

from repro.integration.mediator import Mediator
from repro.integration.planner import (
    coverage_estimate,
    order_sources,
    plan_prefix,
    query_relations,
    relevant_sources,
)

__all__ = [
    "Mediator",
    "order_sources",
    "relevant_sources",
    "plan_prefix",
    "coverage_estimate",
    "query_relations",
]
