"""The mediator: a high-level facade over the whole library.

A :class:`Mediator` plays the role of the paper's integration system: data
providers register source descriptors; users check collection consistency,
ask for base-fact confidences, and pose queries answered under the
possible-worlds semantics with per-tuple confidence annotations.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Union

from repro.exceptions import InconsistentCollectionError, SourceError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.terms import Constant
from repro.queries.conjunctive import ConjunctiveQuery
from repro.algebra.ast import AlgebraQuery
from repro.algebra.translate import cq_to_algebra
from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor
from repro.consistency.checker import check_consistency
from repro.consistency.result import ConsistencyResult
from repro.confidence.answers import QueryAnswer, answer_query
from repro.confidence.base_facts import covered_fact_confidences
from repro.confidence.blocks import BlockCounter, IdentityInstance
from repro.confidence.montecarlo import WorldSampler
from repro.confidence.query_conf import propagate_facts

Query = Union[ConjunctiveQuery, AlgebraQuery]


class Mediator:
    """Uniform access to a collection of partially sound/complete sources.

    >>> from repro.queries import identity_view
    >>> from repro.model import fact
    >>> m = Mediator()
    >>> _ = m.register(SourceDescriptor(identity_view("V1", "R", 1),
    ...                [fact("V1", "a")], 0.5, 1.0, name="S1"))
    >>> m.check_consistency().consistent
    True
    """

    def __init__(self, sources: Iterable[SourceDescriptor] = ()):
        self._sources: List[SourceDescriptor] = list(sources)

    # -- registration -----------------------------------------------------------

    def register(self, source: SourceDescriptor) -> "Mediator":
        """Add a source (chainable). Names must stay unique."""
        if any(s.name == source.name for s in self._sources):
            raise SourceError(f"source {source.name!r} already registered")
        self._sources.append(source)
        return self

    def deregister(self, name: str) -> "Mediator":
        """Remove a source by name."""
        remaining = [s for s in self._sources if s.name != name]
        if len(remaining) == len(self._sources):
            raise SourceError(f"no source named {name!r}")
        self._sources = remaining
        return self

    @property
    def collection(self) -> SourceCollection:
        """The current sources as an immutable collection."""
        return SourceCollection(self._sources)

    def __len__(self) -> int:
        return len(self._sources)

    # -- consistency --------------------------------------------------------------

    def check_consistency(self, **limits) -> ConsistencyResult:
        """Decide whether some global database honours every declared bound."""
        return check_consistency(self.collection, **limits)

    def audit(self, database: GlobalDatabase) -> Dict[str, Dict[str, Fraction]]:
        """Measured completeness/soundness of every source against a
        reference database, alongside the declared bounds."""
        report: Dict[str, Dict[str, Fraction]] = {}
        for source in self._sources:
            report[source.name] = {
                "completeness": source.completeness(database),
                "declared_completeness": source.completeness_bound,
                "soundness": source.soundness(database),
                "declared_soundness": source.soundness_bound,
            }
        return report

    # -- confidence ----------------------------------------------------------------

    def base_confidences(self, domain: Iterable) -> Dict[Atom, Fraction]:
        """Exact confidences of all source-claimed facts (identity views)."""
        return covered_fact_confidences(self.collection, domain)

    def world_sampler(
        self, domain: Iterable, rng: Optional[random.Random] = None
    ) -> WorldSampler:
        """An exact uniform sampler over poss(S) (identity views)."""
        return WorldSampler(IdentityInstance(self.collection, domain), rng)

    # -- querying ------------------------------------------------------------------

    def query(
        self,
        query: Query,
        domain: Iterable,
        method: str = "enumerate",
        samples: int = 1000,
        rng: Optional[random.Random] = None,
    ) -> QueryAnswer:
        """Answer a query with certain/possible sets and tuple confidences.

        Methods:

        * ``"enumerate"`` — exact, enumerates poss(S) (small fact spaces);
        * ``"sample"`` — exact uniform world sampling (identity views),
          confidences are Monte-Carlo frequencies over *samples* worlds.
        """
        collection = self.collection
        if method == "enumerate":
            return answer_query(query, collection, domain)
        if method == "sample":
            sampler = self.world_sampler(domain, rng)
            worlds = [sampler.sample() for _ in range(samples)]
            return answer_query(query, collection, domain, worlds=worlds)
        raise SourceError(f"unknown query method: {method!r}")

    def propagated_confidences(
        self,
        query: Query,
        domain: Iterable,
        answer_relation: str = "ans",
    ) -> Dict[Atom, Fraction]:
        """Definition 5.1 calculus: propagate base confidences up the tree.

        Conjunctive queries are translated to algebra first. Fast (no world
        enumeration) but exact only under the calculus's independence
        assumptions — see Theorem 5.1 and experiment E6.
        """
        tree = cq_to_algebra(query) if isinstance(query, ConjunctiveQuery) else query
        base = self.base_confidences(domain)
        return propagate_facts(tree, base, answer_relation=answer_relation)

    # -- statistics -----------------------------------------------------------------

    def expected_database_size(self, domain: Iterable) -> Fraction:
        """``E[|D|]`` over a uniformly random possible world (identity views)."""
        from repro.confidence.statistics import expected_base_size

        return expected_base_size(self.collection, domain)

    def size_distribution(self, domain: Iterable) -> Dict[int, Fraction]:
        """``Pr(|D| = k)`` (identity views, exact)."""
        from repro.confidence.statistics import world_size_distribution

        return world_size_distribution(self.collection, domain)

    def expected_answer_count(self, query: Query, domain: Iterable) -> Fraction:
        """``E[|Q(D)|]`` by linearity of expectation (exact, no independence
        assumption needed)."""
        from repro.confidence.statistics import expected_answer_cardinality

        return expected_answer_cardinality(query, self.collection, domain)

    # -- consensus ---------------------------------------------------------------------

    def consensus_report(self) -> Dict[str, object]:
        """Conflict analysis in one call: conflicts, trust/blame, repair,
        and the uniform relaxation discount.

        For a consistent collection the report is trivial (no conflicts,
        full trust, empty repair, zero discount).
        """
        from repro.consensus import (
            blame_scores,
            consensus_trust_scores,
            minimal_inconsistent_subcollections,
            repair_via_hitting_set,
            trust_scores,
            uniform_relaxation,
        )

        collection = self.collection
        conflicts = minimal_inconsistent_subcollections(collection)
        repair, _ = repair_via_hitting_set(collection)
        discount, _ = uniform_relaxation(collection)
        return {
            "consistent": not conflicts,
            "conflicts": conflicts,
            "trust": trust_scores(collection),
            "consensus_trust": consensus_trust_scores(collection),
            "blame": blame_scores(collection),
            "repair": repair,
            "relaxation_discount": discount,
        }

    # -- rewriting ------------------------------------------------------------------------

    def rewrite(self, query: ConjunctiveQuery):
        """Verified sound rewritings of *query* over the registered views."""
        from repro.rewriting import find_rewritings

        return find_rewritings(query, [s.view for s in self._sources])

    def answer_from_sources(self, query: ConjunctiveQuery):
        """Best-effort answers assembled directly from source extensions.

        Finds all sound rewritings and unions their annotated answers
        (provenance + support score). Fast — no possible-world reasoning —
        but the answers inherit the sources' noise; use :meth:`query` for
        the exact probabilistic semantics.
        """
        from repro.rewriting import execute_all

        return execute_all(self.rewrite(query), self.collection)

    # -- certain answers ------------------------------------------------------------------

    def certain_answers(
        self, query: ConjunctiveQuery, domain: Optional[Iterable] = None,
        method: str = "enumerate",
    ):
        """Certain answers by the requested route.

        * ``"enumerate"`` — exact, needs *domain* (finite fact space);
        * ``"templates"`` — Theorem 4.1 route (sound under-approximation,
          no domain needed);
        * ``"im"`` — Information-Manifold sound-view route (fast sound
          under-approximation, no domain needed);
        * ``"base-facts"`` — evaluate over the confidence-1 base facts
          (identity views; sees completeness-forced facts, needs *domain*).
        """
        if method == "enumerate":
            if domain is None:
                raise SourceError("method 'enumerate' requires a domain")
            from repro.confidence.answers import certain_answer

            return certain_answer(query, self.collection, domain)
        if method == "base-facts":
            if domain is None:
                raise SourceError("method 'base-facts' requires a domain")
            from repro.confidence.answers import certain_answer_lower_bound

            return certain_answer_lower_bound(query, self.collection, domain)
        if method == "templates":
            from repro.tableaux.query_answers import certain_answer_from_templates

            return certain_answer_from_templates(query, self.collection)
        if method == "im":
            from repro.baselines.information_manifold import certain_answer_im

            return certain_answer_im(query, self.collection)
        raise SourceError(f"unknown certain-answer method: {method!r}")
