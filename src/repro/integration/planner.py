"""Completeness-driven source ordering (Florescu/Koller/Levy-style baseline).

The related-work section cites Florescu et al.: use probabilistic coverage
information to order source accesses so answers arrive early. We implement
that heuristic for our descriptors: sources relevant to a query are ranked
by declared completeness (coverage), tie-broken by soundness, and a greedy
plan prefix is cut once the estimated combined coverage reaches a target —
under the independence model, combined coverage is ``⊕ c_i = 1 − ∏(1−c_i)``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence, Set, Tuple, Union

from repro.queries.conjunctive import ConjunctiveQuery
from repro.algebra.ast import AlgebraQuery
from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor
from repro.confidence.query_conf import oplus

Query = Union[ConjunctiveQuery, AlgebraQuery]


def query_relations(query: Query) -> Set[str]:
    """Global relation names a query reads."""
    if isinstance(query, ConjunctiveQuery):
        return {a.relation for a in query.relational_body()}
    return query.relations()


def relevant_sources(
    collection: SourceCollection, query: Query
) -> List[SourceDescriptor]:
    """Sources whose view bodies mention a relation the query reads."""
    needed = query_relations(query)
    return [
        s
        for s in collection
        if needed & {a.relation for a in s.view.relational_body()}
    ]


def order_sources(
    collection: SourceCollection, query: Query
) -> List[SourceDescriptor]:
    """Relevant sources ordered by (completeness, soundness, size) descending."""
    return sorted(
        relevant_sources(collection, query),
        key=lambda s: (
            -s.completeness_bound,
            -s.soundness_bound,
            -s.size(),
            s.name,
        ),
    )


def coverage_estimate(sources: Sequence[SourceDescriptor]) -> Fraction:
    """Estimated combined coverage ``1 − ∏(1 − c_i)`` (independence model)."""
    return oplus([s.completeness_bound for s in sources])


def plan_prefix(
    collection: SourceCollection,
    query: Query,
    target_coverage: Union[float, str, Fraction] = Fraction(9, 10),
) -> Tuple[List[SourceDescriptor], Fraction]:
    """The shortest high-coverage prefix of the completeness ordering.

    Returns (sources to access, estimated coverage). All relevant sources
    are returned when the target is unreachable.
    """
    from repro.sources.descriptor import as_bound

    target_coverage = as_bound(target_coverage)
    ordered = order_sources(collection, query)
    chosen: List[SourceDescriptor] = []
    for source in ordered:
        chosen.append(source)
        if coverage_estimate(chosen) >= target_coverage:
            break
    return chosen, coverage_estimate(chosen)
