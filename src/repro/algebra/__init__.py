"""Relational algebra: AST, conditions, evaluation, CQ translation."""

from repro.algebra.ast import (
    AlgebraQuery,
    Product,
    Projection,
    RelationScan,
    Row,
    Selection,
    UnionNode,
    join,
    rows_to_facts,
)
from repro.algebra.conditions import (
    ALWAYS,
    And,
    Col,
    Comparison,
    Condition,
    Not,
    Or,
    TrueCondition,
)
from repro.algebra.translate import cq_to_algebra, view_output_relation

__all__ = [
    "AlgebraQuery",
    "RelationScan",
    "Selection",
    "Projection",
    "Product",
    "UnionNode",
    "join",
    "rows_to_facts",
    "Row",
    "Condition",
    "Comparison",
    "Col",
    "And",
    "Or",
    "Not",
    "TrueCondition",
    "ALWAYS",
    "cq_to_algebra",
    "view_output_relation",
]
