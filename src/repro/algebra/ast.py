"""Relational-algebra abstract syntax (Definition 5.1's query language).

The confidence calculus of Section 5.2 is defined by structural induction on
relational queries built from relation names with projection π, selection σ,
and cross product ×. We add union and rename as standard conveniences (union
distributes through the calculus via ⊕ as well; see
:mod:`repro.confidence.query_conf`).

Rows are positional tuples of :class:`~repro.model.terms.Constant`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence, Set, Tuple

from repro.exceptions import QueryError
from repro.model.database import GlobalDatabase
from repro.model.terms import Constant, as_term
from repro.algebra.conditions import ALWAYS, Condition

Row = Tuple[Constant, ...]


class AlgebraQuery:
    """Base class for algebra nodes. Subclasses implement ``evaluate_boxed``."""

    def evaluate(self, database: GlobalDatabase) -> FrozenSet[Row]:
        """The set of rows the query produces over *database*.

        Compiles the tree through :mod:`repro.plan` (cached per canonical
        form, executed over interned scans and hash-join indexes). Trees
        outside the compiled vocabulary — e.g. subclasses this module does
        not know about — raise :class:`~repro.plan.ir.PlanError` at compile
        time and fall back to the structural interpreter, which remains the
        differential oracle as :meth:`evaluate_boxed`.
        """
        from repro.plan.executor import evaluate_rows
        from repro.plan.ir import PlanError

        try:
            return evaluate_rows(self, database)
        except PlanError:
            if type(self).evaluate_boxed is AlgebraQuery.evaluate_boxed:
                raise NotImplementedError(
                    f"{type(self).__name__} defines neither evaluate_boxed "
                    "nor a compilable shape"
                )
            return self.evaluate_boxed(database)

    def evaluate_boxed(self, database: GlobalDatabase) -> FrozenSet[Row]:
        """Structural (uncompiled) evaluation over boxed rows.

        Unknown subclasses that predate the plan pipeline may override
        ``evaluate`` directly; delegate to it in that case.
        """
        if type(self).evaluate is AlgebraQuery.evaluate:
            raise NotImplementedError
        return self.evaluate(database)

    def width(self) -> int:
        """Number of columns the query produces (-1 when data-dependent)."""
        raise NotImplementedError

    def relations(self) -> Set[str]:
        """Global relation names read by the query."""
        raise NotImplementedError

    # -- fluent construction helpers -----------------------------------------

    def select(self, condition: Condition) -> "Selection":
        return Selection(condition, self)

    def project(self, columns: Sequence[int]) -> "Projection":
        return Projection(columns, self)

    def product(self, other: "AlgebraQuery") -> "Product":
        return Product(self, other)

    def union(self, other: "AlgebraQuery") -> "UnionNode":
        return UnionNode(self, other)

    def __mul__(self, other: "AlgebraQuery") -> "Product":
        return Product(self, other)

    def __or__(self, other: "AlgebraQuery") -> "UnionNode":
        return UnionNode(self, other)


class RelationScan(AlgebraQuery):
    """Leaf: read a global relation's extension as rows.

    The paper's base case ``Q = R``.
    """

    __slots__ = ("relation", "arity")

    def __init__(self, relation: str, arity: int):
        if arity < 0:
            raise QueryError(f"arity must be non-negative: {arity}")
        self.relation = relation
        self.arity = arity

    def evaluate_boxed(self, database: GlobalDatabase) -> FrozenSet[Row]:
        return frozenset(
            f.args for f in database.extension(self.relation) if f.arity == self.arity
        )

    def width(self) -> int:
        return self.arity

    def relations(self) -> Set[str]:
        return {self.relation}

    def __repr__(self) -> str:
        return f"RelationScan({self.relation!r}, {self.arity})"


class Selection(AlgebraQuery):
    """``σ_φ Q'``: keep rows satisfying the condition."""

    __slots__ = ("condition", "child")

    def __init__(self, condition: Condition, child: AlgebraQuery):
        self.condition = condition if condition is not None else ALWAYS
        self.child = child

    def evaluate_boxed(self, database: GlobalDatabase) -> FrozenSet[Row]:
        return frozenset(
            row for row in self.child.evaluate_boxed(database) if self.condition(row)
        )

    def width(self) -> int:
        return self.child.width()

    def relations(self) -> Set[str]:
        return self.child.relations()

    def __repr__(self) -> str:
        return f"Selection({self.condition!r}, {self.child!r})"


class Projection(AlgebraQuery):
    """``π_Att Q'``: reorder/drop columns by position (duplicates allowed).

    A column spec may also be a :class:`~repro.model.terms.Constant` (or any
    plain value, coerced to one), which emits that literal in every output
    row — needed to translate views with constants in the head, such as the
    motivating example's ``V3(438432, y, m, v)``.
    """

    __slots__ = ("columns", "child")

    def __init__(self, columns: Sequence, child: AlgebraQuery):
        specs = []
        child_width = child.width()
        for c in columns:
            if isinstance(c, int) and not isinstance(c, bool):
                if child_width >= 0 and not 0 <= c < child_width:
                    raise QueryError(
                        f"projection column {c} out of range for width {child_width}"
                    )
                specs.append(c)
            else:
                specs.append(as_term(c))
        self.columns = tuple(specs)
        self.child = child

    def evaluate_boxed(self, database: GlobalDatabase) -> FrozenSet[Row]:
        return frozenset(
            tuple(row[c] if isinstance(c, int) else c for c in self.columns)
            for row in self.child.evaluate_boxed(database)
        )

    def width(self) -> int:
        return len(self.columns)

    def relations(self) -> Set[str]:
        return self.child.relations()

    def __repr__(self) -> str:
        return f"Projection({list(self.columns)!r}, {self.child!r})"


class Product(AlgebraQuery):
    """``Q' × Q''``: cross product; rows concatenate positionally."""

    __slots__ = ("left", "right")

    def __init__(self, left: AlgebraQuery, right: AlgebraQuery):
        self.left = left
        self.right = right

    def evaluate_boxed(self, database: GlobalDatabase) -> FrozenSet[Row]:
        left_rows = self.left.evaluate_boxed(database)
        right_rows = self.right.evaluate_boxed(database)
        return frozenset(l + r for l in left_rows for r in right_rows)

    def width(self) -> int:
        lw, rw = self.left.width(), self.right.width()
        return lw + rw if lw >= 0 and rw >= 0 else -1

    def relations(self) -> Set[str]:
        return self.left.relations() | self.right.relations()

    def __repr__(self) -> str:
        return f"Product({self.left!r}, {self.right!r})"


class UnionNode(AlgebraQuery):
    """``Q' ∪ Q''``: set union of two queries of equal width."""

    __slots__ = ("left", "right")

    def __init__(self, left: AlgebraQuery, right: AlgebraQuery):
        lw, rw = left.width(), right.width()
        if lw >= 0 and rw >= 0 and lw != rw:
            raise QueryError(f"union of incompatible widths {lw} and {rw}")
        self.left = left
        self.right = right

    def evaluate_boxed(self, database: GlobalDatabase) -> FrozenSet[Row]:
        return self.left.evaluate_boxed(database) | self.right.evaluate_boxed(database)

    def width(self) -> int:
        lw = self.left.width()
        return lw if lw >= 0 else self.right.width()

    def relations(self) -> Set[str]:
        return self.left.relations() | self.right.relations()

    def __repr__(self) -> str:
        return f"UnionNode({self.left!r}, {self.right!r})"


def join(left: AlgebraQuery, right: AlgebraQuery, pairs: Iterable[Tuple[int, int]]) -> AlgebraQuery:
    """Equi-join derived from product + selection: ``σ_{l=r+|L|}(L × R)``.

    *pairs* are ``(left_column, right_column)`` equalities. The result keeps
    all columns of both operands (no projection), matching the classical
    derivation of ⋈ from primitive operators.
    """
    from repro.algebra.conditions import And, Col, Comparison

    lw = left.width()
    if lw < 0:
        raise QueryError("join requires a left operand of known width")
    conds = [Comparison(Col(l), "=", Col(lw + r)) for l, r in pairs]
    if not conds:
        return Product(left, right)
    condition = conds[0] if len(conds) == 1 else And(*conds)
    return Selection(condition, Product(left, right))


def rows_to_facts(rows: Iterable[Row], relation: str):
    """View algebra output rows as facts over *relation* (e.g. ``ans``)."""
    from repro.model.atoms import Atom

    return frozenset(Atom(relation, row) for row in rows)
