"""Selection conditions for relational algebra (σ_φ of Definition 5.1).

Conditions are predicates over positional tuples of constants. They form a
small boolean algebra: comparisons between columns and/or literals, plus
conjunction, disjunction, and negation.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Tuple, Union

from repro.exceptions import QueryError
from repro.model.terms import Constant

_OPS: dict = {  # adhoc-cache-ok: static operator table, not a cache
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Condition:
    """Base class; subclasses implement ``evaluate(row) -> bool``."""

    def evaluate(self, row: Tuple[Constant, ...]) -> bool:
        raise NotImplementedError

    def __call__(self, row: Tuple[Constant, ...]) -> bool:
        return self.evaluate(row)

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


class Col:
    """A column reference by position, used on either side of a comparison."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        if index < 0:
            raise QueryError(f"column index must be non-negative: {index}")
        self.index = index

    def resolve(self, row: Tuple[Constant, ...]) -> Any:
        try:
            return row[self.index].value
        except IndexError:
            raise QueryError(
                f"column {self.index} out of range for row of width {len(row)}"
            ) from None

    def __repr__(self) -> str:
        return f"Col({self.index})"


Operand = Union[Col, Any]


def _resolve(operand: Operand, row: Tuple[Constant, ...]) -> Any:
    if isinstance(operand, Col):
        return operand.resolve(row)
    if isinstance(operand, Constant):
        return operand.value
    return operand


class Comparison(Condition):
    """``lhs op rhs`` where operands are columns or literal values.

    >>> cond = Comparison(Col(0), ">", 1900)
    >>> cond((Constant(1950),))
    True
    """

    __slots__ = ("lhs", "op", "rhs", "_fn")

    def __init__(self, lhs: Operand, op: str, rhs: Operand):
        if op not in _OPS:
            raise QueryError(f"unknown comparison operator: {op!r}")
        self.lhs = lhs
        self.op = op
        self.rhs = rhs
        self._fn: Callable[[Any, Any], bool] = _OPS[op]

    def evaluate(self, row: Tuple[Constant, ...]) -> bool:
        try:
            return bool(self._fn(_resolve(self.lhs, row), _resolve(self.rhs, row)))
        except TypeError:
            return False  # heterogeneous comparison fails the predicate

    def __repr__(self) -> str:
        return f"Comparison({self.lhs!r}, {self.op!r}, {self.rhs!r})"


class And(Condition):
    """Conjunction of conditions."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Condition):
        self.parts = parts

    def evaluate(self, row: Tuple[Constant, ...]) -> bool:
        return all(p.evaluate(row) for p in self.parts)

    def __repr__(self) -> str:
        return f"And{self.parts!r}"


class Or(Condition):
    """Disjunction of conditions."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Condition):
        self.parts = parts

    def evaluate(self, row: Tuple[Constant, ...]) -> bool:
        return any(p.evaluate(row) for p in self.parts)

    def __repr__(self) -> str:
        return f"Or{self.parts!r}"


class Not(Condition):
    """Negation of a condition."""

    __slots__ = ("part",)

    def __init__(self, part: Condition):
        self.part = part

    def evaluate(self, row: Tuple[Constant, ...]) -> bool:
        return not self.part.evaluate(row)

    def __repr__(self) -> str:
        return f"Not({self.part!r})"


class TrueCondition(Condition):
    """Always true; the neutral selection."""

    def evaluate(self, row: Tuple[Constant, ...]) -> bool:
        return True

    def __repr__(self) -> str:
        return "TrueCondition()"


ALWAYS = TrueCondition()
