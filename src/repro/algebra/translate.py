"""Translating conjunctive queries into relational algebra.

A safe conjunctive query becomes a select-project-product tree:
scans for relational body atoms, selections for constants / repeated
variables / comparison built-ins, and a final projection onto the head. This
is how parsed views and queries reach the Definition 5.1 confidence calculus,
and it doubles as a differential-testing oracle against the CQ evaluator.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import QueryError
from repro.model.terms import Constant, Variable
from repro.queries.conjunctive import ConjunctiveQuery
from repro.algebra.ast import AlgebraQuery, Product, Projection, RelationScan, Selection
from repro.algebra.conditions import And, Col, Comparison, Condition

# Comparison built-ins translatable into σ conditions (name -> operator).
_BUILTIN_OPS = {  # adhoc-cache-ok: static operator table, not a cache
    "After": ">",
    "Before": "<",
    "Lt": "<",
    "Le": "<=",
    "Gt": ">",
    "Ge": ">=",
    "Eq": "=",
    "Neq": "!=",
}


def cq_to_algebra(query: ConjunctiveQuery) -> AlgebraQuery:
    """Translate a safe conjunctive query into an algebra tree.

    Raises :class:`QueryError` when the query uses a built-in that has no
    comparison translation (user-registered arbitrary predicates).
    """
    relational = query.relational_body()
    if not relational:
        raise QueryError("cannot translate a query with no relational body atoms")

    # 1. Product of scans, tracking the first position of each variable.
    tree: AlgebraQuery = None
    var_position: Dict[Variable, int] = {}
    conditions: List[Condition] = []
    offset = 0
    for atom in relational:
        scan = RelationScan(atom.relation, atom.arity)
        tree = scan if tree is None else Product(tree, scan)
        for i, term in enumerate(atom.args):
            position = offset + i
            if isinstance(term, Constant):
                conditions.append(Comparison(Col(position), "=", term.value))
            else:
                seen = var_position.get(term)
                if seen is None:
                    var_position[term] = position
                else:
                    conditions.append(Comparison(Col(position), "=", Col(seen)))
        offset += atom.arity

    # 2. Built-in comparisons become selection conditions.
    for atom in query.builtin_body():
        op = _BUILTIN_OPS.get(atom.relation)
        if op is None:
            raise QueryError(
                f"builtin {atom.relation} has no relational-algebra translation"
            )
        if atom.arity != 2:
            raise QueryError(f"comparison builtin must be binary: {atom}")
        operands = []
        for term in atom.args:
            if isinstance(term, Constant):
                operands.append(term.value)
            else:
                position = var_position.get(term)
                if position is None:
                    raise QueryError(
                        f"builtin {atom} uses variable {term} not bound relationally"
                    )
                operands.append(Col(position))
        conditions.append(Comparison(operands[0], op, operands[1]))

    if conditions:
        condition = conditions[0] if len(conditions) == 1 else And(*conditions)
        tree = Selection(condition, tree)

    # 3. Project onto the head (constants in the head become literal columns).
    head_columns = []
    for term in query.head.args:
        if isinstance(term, Constant):
            head_columns.append(term)
        else:
            head_columns.append(var_position[term])
    return Projection(head_columns, tree)


def view_output_relation(query: ConjunctiveQuery) -> Tuple[str, int]:
    """The (relation name, arity) the translated tree's rows correspond to."""
    return query.head.relation, query.head.arity
