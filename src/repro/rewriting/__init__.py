"""Answering queries using views (the §1.2 context, made executable).

Plans over view relations, expansion to the global schema, bucket-style
candidate generation verified by containment, and execution over actual
source extensions with provenance annotations.
"""

from repro.rewriting.executor import (
    AnnotatedAnswer,
    execute_all,
    execute_annotated,
    execute_plan,
    source_database,
)
from repro.rewriting.expansion import (
    expand_atom,
    expand_plan,
    is_equivalent_rewriting,
    is_sound_rewriting,
    view_map,
)
from repro.rewriting.planner import (
    RewritePlan,
    best_rewriting,
    bucket_candidates,
    candidate_plans,
    find_rewritings,
)

__all__ = [
    "view_map",
    "expand_atom",
    "expand_plan",
    "is_sound_rewriting",
    "is_equivalent_rewriting",
    "bucket_candidates",
    "candidate_plans",
    "find_rewritings",
    "best_rewriting",
    "RewritePlan",
    "source_database",
    "execute_plan",
    "execute_annotated",
    "execute_all",
    "AnnotatedAnswer",
]
