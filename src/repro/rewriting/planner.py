"""A MiniCon-style planner: generate candidate plans, verify by containment.

For each view, *coverage descriptions* map **sets** of query atoms into the
view body under one simultaneous unifier (so a join view can supply several
subgoals at once, keeping their shared variables connected). Plans are
covers of the query's atom set by such descriptions, and every candidate is
**verified** by expansion + containment — only sound rewritings are
returned; generate-and-test keeps the implementation honest. Equivalence is
additionally checked to flag lossless plans.

Restrictions (the classical CQ fragment): no built-ins in queries or views
(containment with arithmetic is a harder problem the paper does not need).
"""

from __future__ import annotations

from itertools import product
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.exceptions import QueryError, UnsafeQueryError
from repro.model.atoms import Atom
from repro.model.terms import FreshVariableFactory, Variable
from repro.model.valuation import Substitution, unify_atoms
from repro.queries.conjunctive import ConjunctiveQuery
from repro.rewriting.expansion import (
    expand_plan,
    is_equivalent_rewriting,
    is_sound_rewriting,
    view_map,
)


class RewritePlan(NamedTuple):
    """A verified rewriting: the plan, its expansion, and lossiness."""

    plan: ConjunctiveQuery
    expansion: ConjunctiveQuery
    equivalent: bool


def _check_fragment(query: ConjunctiveQuery, views: Iterable[ConjunctiveQuery]):
    if query.builtin_body():
        raise QueryError("the planner handles the builtin-free CQ fragment")
    for view in views:
        if view.builtin_body():
            raise QueryError(
                f"view {view.head_relation()} uses builtins; the planner "
                "handles the builtin-free CQ fragment"
            )


class Coverage(NamedTuple):
    """One way a view can supply a set of query atoms simultaneously."""

    covered: FrozenSet[int]   # indices into the query's relational body
    plan_atom: Atom           # the view head under the combined unifier


def _unify_under(
    theta: Substitution, left: Atom, right: Atom
) -> Optional[Substitution]:
    """Extend *theta* to also unify left and right, or ``None``."""
    mgu = unify_atoms(left.substitute(theta), right.substitute(theta))
    if mgu is None:
        return None
    return theta.compose(mgu)


def bucket_candidates(query_atom: Atom, view: ConjunctiveQuery) -> List[Atom]:
    """Plan atoms over *view* that could supply the single *query_atom*.

    Kept as the simple single-atom interface; the planner itself uses
    :func:`coverage_candidates`, which also finds multi-atom coverages.
    """
    isolated = view.standardized_apart(query_atom.variables())
    candidates: List[Atom] = []
    for body_atom in isolated.relational_body():
        unifier = unify_atoms(body_atom, query_atom)
        if unifier is None:
            continue
        candidates.append(isolated.head.substitute(unifier))
    return candidates


def coverage_candidates(
    query: ConjunctiveQuery, view: ConjunctiveQuery
) -> List[Coverage]:
    """All maximal-information coverages of query-atom sets by *view*.

    Depth-first extension: starting from each query atom, greedily try to
    also map further query atoms into the same view occurrence under the
    accumulated unifier. Every consistent partial mapping is emitted (the
    containment check later discards unsound ones); subsets covered by an
    identical plan atom are deduplicated.
    """
    query_atoms = list(query.relational_body())
    taken = query.variables()
    isolated = view.standardized_apart(taken)
    body_atoms = list(isolated.relational_body())
    coverages: Dict[Tuple[FrozenSet[int], Atom], None] = {}

    def extend(index: int, covered: FrozenSet[int], theta: Substitution):
        if covered:
            plan_atom = isolated.head.substitute(theta)
            coverages[(covered, plan_atom)] = None
        if index == len(query_atoms):
            return
        # skip query_atoms[index]
        extend(index + 1, covered, theta)
        # or map it to some view body atom
        for body_atom in body_atoms:
            extended = _unify_under(theta, body_atom, query_atoms[index])
            if extended is not None:
                extend(index + 1, covered | {index}, extended)

    extend(0, frozenset(), Substitution())
    return [Coverage(covered, atom) for covered, atom in coverages]


def candidate_plans(
    query: ConjunctiveQuery,
    views: Iterable[ConjunctiveQuery],
    max_candidates: int = 10_000,
) -> Iterator[ConjunctiveQuery]:
    """All coverage-combination plans (unverified)."""
    view_list = list(views)
    _check_fragment(query, view_list)
    n_atoms = len(query.relational_body())
    all_coverages: List[Coverage] = []
    for view in view_list:
        all_coverages.extend(coverage_candidates(query, view))
    # index coverages by the smallest atom they cover (cover-search order)
    produced = 0
    emitted: set = set()

    def search(
        uncovered: FrozenSet[int], chosen: Tuple[Atom, ...]
    ) -> Iterator[ConjunctiveQuery]:
        nonlocal produced
        if not uncovered:
            body = frozenset(chosen)
            if body in emitted:
                return
            emitted.add(body)
            produced += 1
            if produced > max_candidates:
                raise QueryError(
                    f"candidate space exceeds {max_candidates}; refine the "
                    "query or the view set"
                )
            try:
                yield ConjunctiveQuery(query.head, sorted(body), query.builtins)
            except UnsafeQueryError:
                pass  # head variable lost by this combination
            return
        target = min(uncovered)
        for coverage in all_coverages:
            if target not in coverage.covered:
                continue
            yield from search(
                uncovered - coverage.covered, chosen + (coverage.plan_atom,)
            )

    yield from search(frozenset(range(n_atoms)), ())


def find_rewritings(
    query: ConjunctiveQuery,
    views: Iterable[ConjunctiveQuery],
    max_candidates: int = 10_000,
) -> List[RewritePlan]:
    """All verified sound rewritings, equivalent plans first.

    Duplicate plans (same body as a set) are collapsed.
    """
    view_index = view_map(views)
    seen: set = set()
    out: List[RewritePlan] = []
    for plan in candidate_plans(query, view_index.values(), max_candidates):
        key = (plan.head, frozenset(plan.body))
        if key in seen:
            continue
        seen.add(key)
        try:
            expansion = expand_plan(plan, view_index)
        except (QueryError, UnsafeQueryError):
            continue
        from repro.queries.containment import is_contained_in, is_equivalent

        if not is_contained_in(expansion, query):
            continue
        out.append(
            RewritePlan(
                plan=plan,
                expansion=expansion,
                equivalent=is_equivalent(expansion, query),
            )
        )
    out.sort(key=lambda r: (not r.equivalent, str(r.plan)))
    return out


def best_rewriting(
    query: ConjunctiveQuery,
    views: Iterable[ConjunctiveQuery],
) -> Optional[RewritePlan]:
    """An equivalent rewriting when one exists, else a maximal sound one,
    else ``None``."""
    rewritings = find_rewritings(query, views)
    return rewritings[0] if rewritings else None
