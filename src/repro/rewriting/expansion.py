"""Expanding plans over views back to the global schema.

A *plan* is a conjunctive query whose body atoms are over **local** (view)
relations. Its *expansion* replaces every view atom by the view's body,
with the view head unified against the atom's arguments and existential
variables standardized apart per occurrence — the classical definition from
the answering-queries-using-views literature the paper builds on (§1.2).

A plan is a **sound rewriting** of a query Q when its expansion is
contained in Q; then, over any global database, executing the plan on the
views' *exact* contents returns only Q-answers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.exceptions import QueryError
from repro.model.atoms import Atom
from repro.model.terms import FreshVariableFactory
from repro.model.valuation import Substitution, unify_atoms
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.containment import is_contained_in, is_equivalent


def view_map(views: Iterable[ConjunctiveQuery]) -> Dict[str, ConjunctiveQuery]:
    """Index views by head relation name; duplicate names are rejected."""
    out: Dict[str, ConjunctiveQuery] = {}
    for view in views:
        name = view.head_relation()
        if name in out:
            raise QueryError(f"duplicate view relation {name!r}")
        out[name] = view
    return out


def expand_atom(
    atom: Atom,
    view: ConjunctiveQuery,
    fresh: FreshVariableFactory,
) -> List[Atom]:
    """The body of *view* with its head unified against *atom*.

    Existential view variables are renamed freshly for this occurrence.
    Raises when unification fails (the plan atom cannot come from the view).
    """
    renamed = view.standardized_apart([])
    # standardize with the provided factory to stay apart from everything
    renaming = Substitution(
        {v: fresh.fresh() for v in renamed.variables()}
    )
    isolated = renamed.substitute(renaming)
    unifier = unify_atoms(isolated.head, atom)
    if unifier is None:
        raise QueryError(
            f"plan atom {atom} does not unify with view head {view.head}"
        )
    return [b.substitute(unifier) for b in isolated.body]


def expand_plan(
    plan: ConjunctiveQuery,
    views: Mapping[str, ConjunctiveQuery],
) -> ConjunctiveQuery:
    """The expansion of *plan*: a conjunctive query over global relations."""
    fresh = FreshVariableFactory(taken=plan.variables(), prefix="_e")
    body: List[Atom] = []
    registry = None
    for atom in plan.body:
        view = views.get(atom.relation)
        if view is None:
            raise QueryError(f"plan atom {atom} is not over a known view")
        if registry is None:
            registry = view.builtins
        body.extend(expand_atom(atom, view, fresh))
    if registry is None:
        registry = plan.builtins
    return ConjunctiveQuery(plan.head, body, registry)


def is_sound_rewriting(
    plan: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: Mapping[str, ConjunctiveQuery],
) -> bool:
    """Expansion ⊑ query (containment; builtin-free fragment)."""
    expansion = expand_plan(plan, views)
    return is_contained_in(expansion, query)


def is_equivalent_rewriting(
    plan: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: Mapping[str, ConjunctiveQuery],
) -> bool:
    """Expansion ≡ query: the plan loses nothing."""
    expansion = expand_plan(plan, views)
    return is_equivalent(expansion, query)
