"""Executing rewritings over actual source extensions.

A plan's body atoms are over view relations, and the sources' extensions
*are* databases over those relations — so executing a plan against the
union of extensions needs nothing but the ordinary CQ evaluator. The
answer's relationship to the truth is then governed by the sources'
quality:

* with **exact** sources a sound rewriting returns only true Q-answers and
  an equivalent rewriting returns exactly Q(D);
* with partially sound/complete sources the answer inherits the noise —
  each tuple is annotated with a heuristic *support score*,
  ``∏ soundness_bound`` over the contributing sources (the chance that all
  the extension facts used are correct, under an independence reading).
  This is a heuristic ranking aid, **not** the exact possible-worlds
  confidence (use :mod:`repro.confidence` for that) — experiment E15
  compares the two.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, List, Mapping, NamedTuple, Tuple

from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.evaluation import valuations
from repro.sources.collection import SourceCollection


class AnnotatedAnswer(NamedTuple):
    """One answer tuple with provenance and a heuristic support score."""

    fact: Atom
    sources: FrozenSet[str]
    support: Fraction


def source_database(collection: SourceCollection) -> GlobalDatabase:
    """The union of all view extensions, as one database over local names."""
    facts: List[Atom] = []
    for source in collection:
        facts.extend(source.extension)
    return GlobalDatabase(facts)


def execute_plan(
    plan: ConjunctiveQuery, collection: SourceCollection
) -> FrozenSet[Atom]:
    """The plan's answers over the sources' actual contents."""
    return plan.apply(source_database(collection))


def execute_annotated(
    plan: ConjunctiveQuery, collection: SourceCollection
) -> List[AnnotatedAnswer]:
    """Answers with contributing-source provenance and support scores.

    When several derivations produce one answer, the best (highest-support)
    derivation is kept.
    """
    by_view: Dict[str, object] = {s.view.head_relation(): s for s in collection}
    database = source_database(collection)
    best: Dict[Atom, AnnotatedAnswer] = {}
    for substitution in valuations(plan, database):
        head = substitution.apply(plan.head)
        if not head.is_ground():
            continue
        names = frozenset(
            by_view[a.relation].name for a in plan.body if a.relation in by_view
        )
        support = Fraction(1)
        for a in plan.body:
            source = by_view.get(a.relation)
            if source is not None:
                support *= source.soundness_bound
        candidate = AnnotatedAnswer(head, names, support)
        existing = best.get(head)
        if existing is None or candidate.support > existing.support:
            best[head] = candidate
    return sorted(
        best.values(), key=lambda a: (-a.support, str(a.fact))
    )


def execute_all(
    plans: List, collection: SourceCollection
) -> List[AnnotatedAnswer]:
    """Union the annotated answers of several plans (best support kept)."""
    best: Dict[Atom, AnnotatedAnswer] = {}
    for rewriting in plans:
        plan = rewriting.plan if hasattr(rewriting, "plan") else rewriting
        for answer in execute_annotated(plan, collection):
            existing = best.get(answer.fact)
            if existing is None or answer.support > existing.support:
                best[answer.fact] = answer
    return sorted(best.values(), key=lambda a: (-a.support, str(a.fact)))
