"""Executing rewritings over actual source extensions.

A plan's body atoms are over view relations, and the sources' extensions
*are* databases over those relations — so executing a plan against the
union of extensions needs nothing but the ordinary CQ evaluator. The
answer's relationship to the truth is then governed by the sources'
quality:

* with **exact** sources a sound rewriting returns only true Q-answers and
  an equivalent rewriting returns exactly Q(D);
* with partially sound/complete sources the answer inherits the noise —
  each tuple is annotated with a heuristic *support score*,
  ``∏ soundness_bound`` over the contributing sources (the chance that all
  the extension facts used are correct, under an independence reading).
  This is a heuristic ranking aid, **not** the exact possible-worlds
  confidence (use :mod:`repro.confidence` for that) — experiment E15
  compares the two.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, List, Mapping, NamedTuple, Tuple

from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.evaluation import valuations  # boxed-ok: oracle needs witnesses
from repro.sources.collection import SourceCollection


class AnnotatedAnswer(NamedTuple):
    """One answer tuple with provenance and a heuristic support score."""

    fact: Atom
    sources: FrozenSet[str]
    support: Fraction


def source_database(collection: SourceCollection) -> GlobalDatabase:
    """The union of all view extensions, as one database over local names."""
    facts: List[Atom] = []
    for source in collection:
        facts.extend(source.extension)
    return GlobalDatabase(facts)


def execute_plan(
    plan: ConjunctiveQuery, collection: SourceCollection
) -> FrozenSet[Atom]:
    """The plan's answers over the sources' actual contents."""
    return plan.apply(source_database(collection))


#: Support-score computations performed so far (regression counter: the
#: deduped executor computes one score per plan, the per-valuation oracle
#: one per derivation).
_SCORE_COMPUTATIONS = 0


def score_computations() -> int:
    """How many times a plan's support score has been computed."""
    return _SCORE_COMPUTATIONS


def _plan_annotation(
    plan: ConjunctiveQuery, by_view: Mapping[str, object]
) -> Tuple[FrozenSet[str], Fraction]:
    """Contributing source names and support score of *plan*.

    Both depend only on the plan's body atoms — never on the valuation that
    produced an answer — so they are computed once per plan.
    """
    global _SCORE_COMPUTATIONS
    _SCORE_COMPUTATIONS += 1
    names = frozenset(
        by_view[a.relation].name for a in plan.body if a.relation in by_view
    )
    support = Fraction(1)
    for a in plan.body:
        source = by_view.get(a.relation)
        if source is not None:
            support *= source.soundness_bound
    return names, support


def execute_annotated(
    plan: ConjunctiveQuery,
    collection: SourceCollection,
    database: GlobalDatabase = None,
) -> List[AnnotatedAnswer]:
    """Answers with contributing-source provenance and support scores.

    The annotation is a function of the plan alone, so it is computed once
    and attached to every answer — and the answers themselves come from the
    compiled-plan evaluator rather than a per-valuation walk. Pass
    *database* to share one source database across plans (``execute_all``
    does). :func:`execute_annotated_by_valuation` keeps the original
    per-derivation loop as the differential oracle.
    """
    by_view: Dict[str, object] = {s.view.head_relation(): s for s in collection}
    if database is None:
        database = source_database(collection)
    names, support = _plan_annotation(plan, by_view)
    return sorted(
        (AnnotatedAnswer(fact, names, support) for fact in plan.apply(database)),
        key=lambda a: (-a.support, str(a.fact)),
    )


def execute_annotated_by_valuation(
    plan: ConjunctiveQuery, collection: SourceCollection
) -> List[AnnotatedAnswer]:
    """The pre-dedup annotated executor: recomputes the score per valuation.

    Kept as the differential oracle for :func:`execute_annotated`; the
    regression test asserts identical answers with strictly fewer score
    computations on multi-derivation workloads.
    """
    by_view: Dict[str, object] = {s.view.head_relation(): s for s in collection}
    database = source_database(collection)
    best: Dict[Atom, AnnotatedAnswer] = {}
    for substitution in valuations(plan, database):
        head = substitution.apply(plan.head)
        if not head.is_ground():
            continue
        names, support = _plan_annotation(plan, by_view)
        candidate = AnnotatedAnswer(head, names, support)
        existing = best.get(head)
        if existing is None or candidate.support > existing.support:
            best[head] = candidate
    return sorted(
        best.values(), key=lambda a: (-a.support, str(a.fact))
    )


def execute_all(
    plans: List, collection: SourceCollection
) -> List[AnnotatedAnswer]:
    """Union the annotated answers of several plans (best support kept)."""
    best: Dict[Atom, AnnotatedAnswer] = {}
    database = source_database(collection)
    for rewriting in plans:
        plan = rewriting.plan if hasattr(rewriting, "plan") else rewriting
        for answer in execute_annotated(plan, collection, database=database):
            existing = best.get(answer.fact)
            if existing is None or answer.support > existing.support:
                best[answer.fact] = answer
    return sorted(best.values(), key=lambda a: (-a.support, str(a.fact)))
