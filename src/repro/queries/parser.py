"""A small Datalog-style parser for queries, views, and facts.

Grammar (whitespace-insensitive)::

    rule    := atom ("<-" | ":-") atom ("," atom)*
    atom    := NAME "(" term ("," term)* ")" | NAME "(" ")"
    term    := NAME | NUMBER | STRING

Conventions, matching the paper's notation:

* identifiers beginning with a **lowercase** letter (or ``_``) are variables;
* identifiers beginning with an **uppercase** letter are relation names;
* numbers (``1900``, ``-3.5``) and single/double-quoted strings are constants.

>>> q = parse_rule('V1(s,y,m,v) <- Temperature(s,y,m,v), After(y,1900)')
>>> str(q)
"V1(s, y, m, v) <- Temperature(s, y, m, v), After(y, 1900)"
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Tuple

from repro.exceptions import NotGroundError, ParseError
from repro.model.atoms import Atom
from repro.model.terms import Constant, Term, Variable
from repro.queries.builtins import BuiltinRegistry, default_registry
from repro.queries.conjunctive import ConjunctiveQuery

_TOKEN_SPEC = [
    ("ARROW", r"<-|:-"),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("NUMBER", r"-?\d+\.\d+|-?\d+"),
    ("STRING", r'"[^"]*"|\'[^\']*\''),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("SKIP", r"[ \t\r\n]+"),
    ("BAD", r"."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pat})" for name, pat in _TOKEN_SPEC))


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> List[_Token]:
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        if kind == "SKIP":
            continue
        if kind == "BAD":
            raise ParseError(f"unexpected character {match.group()!r} at {match.start()}")
        tokens.append(_Token(kind, match.group(), match.start()))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> _Token:
        if self.index >= len(self.tokens):
            raise ParseError(f"unexpected end of input: {self.text!r}")
        return self.tokens[self.index]

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    def take(self, kind: str) -> _Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} at position {token.pos}, got {token.kind} "
                f"({token.text!r}) in {self.text!r}"
            )
        self.index += 1
        return token

    def term(self) -> Term:
        token = self.peek()
        if token.kind == "NAME":
            self.index += 1
            if token.text[0].islower() or token.text[0] == "_":
                return Variable(token.text)
            return Constant(token.text)
        if token.kind == "NUMBER":
            self.index += 1
            value = float(token.text) if "." in token.text else int(token.text)
            return Constant(value)
        if token.kind == "STRING":
            self.index += 1
            return Constant(token.text[1:-1])
        raise ParseError(
            f"expected a term at position {token.pos}, got {token.text!r}"
        )

    def atom(self) -> Atom:
        name = self.take("NAME").text
        self.take("LPAREN")
        args: List[Term] = []
        if self.peek().kind != "RPAREN":
            args.append(self.term())
            while self.peek().kind == "COMMA":
                self.take("COMMA")
                args.append(self.term())
        self.take("RPAREN")
        return Atom(name, args)

    def rule(self) -> Tuple[Atom, List[Atom]]:
        head = self.atom()
        self.take("ARROW")
        body = [self.atom()]
        while not self.at_end() and self.peek().kind == "COMMA":
            self.take("COMMA")
            body.append(self.atom())
        if not self.at_end():
            token = self.peek()
            raise ParseError(f"trailing input at position {token.pos}: {token.text!r}")
        return head, body


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"R(x, 'Canada')"``."""
    parser = _Parser(text)
    atom = parser.atom()
    if not parser.at_end():
        token = parser.peek()
        raise ParseError(f"trailing input at position {token.pos}: {token.text!r}")
    return atom


def parse_fact(text: str) -> Atom:
    """Parse a ground atom; raises if the text contains variables."""
    atom = parse_atom(text)
    if not atom.is_ground():
        raise NotGroundError(f"expected a fact but found variables: {atom}")
    return atom


def parse_rule(
    text: str, builtins: BuiltinRegistry = None
) -> ConjunctiveQuery:
    """Parse ``head <- body`` into a :class:`ConjunctiveQuery`.

    The default builtin registry (``After``, ``Before``, comparisons) is used
    unless one is supplied.
    """
    registry = builtins if builtins is not None else default_registry()
    head, body = _Parser(text).rule()
    return ConjunctiveQuery(head, body, registry)


def parse_program(text: str, builtins: BuiltinRegistry = None) -> List[ConjunctiveQuery]:
    """Parse one rule per non-empty, non-comment (``%`` or ``#``) line."""
    rules = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("%") or stripped.startswith("#"):
            continue
        rules.append(parse_rule(stripped, builtins))
    return rules
