"""Conjunctive queries and view definitions (Sections 2.1, 5).

A conjunctive query is ``head(Q) ← body(Q)`` where the head is an atom over a
local relation name (or the reserved ``ans``) and the body is a sequence of
atoms over global relation names and built-ins. All queries are *safe*: every
head variable occurs in some non-builtin body atom.

A *view definition* φ is a conjunctive query describing the intended content
of a data source; ``φ(D)`` applies it to a global database.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set, Tuple

from repro.exceptions import UnsafeQueryError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.schema import GlobalSchema, schema_of_atoms
from repro.model.terms import Constant, FreshVariableFactory, Variable
from repro.model.valuation import Substitution
from repro.queries.builtins import EMPTY_REGISTRY, BuiltinRegistry

ANSWER_RELATION = "ans"


class ConjunctiveQuery:
    """An immutable conjunctive query ``head ← b_1, ..., b_n``.

    >>> from repro.model import atom, Variable
    >>> x = Variable("x")
    >>> q = ConjunctiveQuery(atom("V", x), [atom("R", x)])
    >>> str(q)
    'V(x) <- R(x)'
    """

    __slots__ = ("head", "body", "builtins", "_hash")

    def __init__(
        self,
        head: Atom,
        body: Iterable[Atom],
        builtins: BuiltinRegistry = EMPTY_REGISTRY,
    ):
        self.head = head
        self.body: Tuple[Atom, ...] = tuple(body)
        self.builtins = builtins
        self._check_safety()
        self._hash = hash((self.head, self.body))

    def _check_safety(self) -> None:
        bound = set()
        for b in self.relational_body():
            bound |= b.variables()
        unsafe = self.head.variables() - bound
        if unsafe:
            names = ", ".join(sorted(v.name for v in unsafe))
            raise UnsafeQueryError(
                f"head variables not bound by a relational body atom: {names}"
            )
        for b in self.builtin_body():
            dangling = b.variables() - bound
            if dangling:
                names = ", ".join(sorted(v.name for v in dangling))
                raise UnsafeQueryError(
                    f"builtin atom {b} uses variables never bound: {names}"
                )

    # -- structure ------------------------------------------------------------

    def relational_body(self) -> Tuple[Atom, ...]:
        """Body atoms over stored (non-builtin) relations."""
        return tuple(b for b in self.body if not self.builtins.is_builtin(b.relation))

    def builtin_body(self) -> Tuple[Atom, ...]:
        """Body atoms over built-in relations."""
        return tuple(b for b in self.body if self.builtins.is_builtin(b.relation))

    def variables(self) -> Set[Variable]:
        """All variables of the query."""
        out = set(self.head.variables())
        for b in self.body:
            out |= b.variables()
        return out

    def constants(self) -> Set[Constant]:
        """All constants of the query."""
        out = set(self.head.constants())
        for b in self.body:
            out |= b.constants()
        return out

    def head_relation(self) -> str:
        """The local relation name of the head."""
        return self.head.relation

    def body_size(self) -> int:
        """``|body(φ)|``: number of body atoms (Lemma 3.1's bound uses it)."""
        return len(self.body)

    def body_schema(self) -> GlobalSchema:
        """Schema of the relational body atoms."""
        return schema_of_atoms(self.relational_body())

    def is_identity(self) -> bool:
        """True for identity views ``V(x̄) ← R(x̄)`` (Corollary 3.4 / §5.1).

        The single body atom must carry exactly the head's variable tuple,
        with pairwise-distinct variables.
        """
        if len(self.body) != 1:
            return False
        body_atom = self.body[0]
        if self.builtins.is_builtin(body_atom.relation):
            return False
        if body_atom.args != self.head.args:
            return False
        args = self.head.args
        return (
            all(isinstance(a, Variable) for a in args)
            and len(set(args)) == len(args)
        )

    # -- application -----------------------------------------------------------

    def substitute(self, substitution: Substitution) -> "ConjunctiveQuery":
        """Apply a substitution to head and body (head may become partial)."""
        return ConjunctiveQuery(
            substitution.apply(self.head),
            substitution.apply_all(self.body),
            self.builtins,
        )

    def standardized_apart(self, taken: Iterable[Variable]) -> "ConjunctiveQuery":
        """Rename the query's variables away from *taken*."""
        factory = FreshVariableFactory(taken=set(taken) | self.variables())
        renaming = Substitution({v: factory.fresh() for v in self.variables()})
        return self.substitute(renaming)

    def apply(self, database: GlobalDatabase) -> FrozenSet[Atom]:
        """``φ(D)``: the set of head facts derived from *database*."""
        from repro.queries.evaluation import evaluate

        return evaluate(self, database)

    __call__ = apply

    # -- identity/equality -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and self.head == other.head
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        body = ", ".join(str(b) for b in self.body)
        return f"{self.head} <- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self.head!r}, {list(self.body)!r})"


def identity_view(
    view_name: str, relation: str, arity: int, builtins: BuiltinRegistry = EMPTY_REGISTRY
) -> ConjunctiveQuery:
    """The identity view ``V(x_1..x_k) ← R(x_1..x_k)`` (paper's ``Id_R``)."""
    args = tuple(Variable(f"x{i}") for i in range(1, arity + 1))
    return ConjunctiveQuery(Atom(view_name, args), [Atom(relation, args)], builtins)


def answer_query(
    body: Iterable[Atom],
    head_args: Iterable = (),
    builtins: BuiltinRegistry = EMPTY_REGISTRY,
) -> ConjunctiveQuery:
    """A query whose head uses the reserved ``ans`` relation (Section 5)."""
    return ConjunctiveQuery(Atom(ANSWER_RELATION, tuple(head_args)), body, builtins)
