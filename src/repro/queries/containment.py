"""Homomorphisms, query containment, and minimization.

Classical tableau machinery (Chandra–Merlin): Q1 ⊆ Q2 iff there is a
homomorphism from Q2's canonical (frozen) database to Q1's that maps head to
head. Used by tests as an independent oracle and by the mediator when pruning
redundant sources. Built-in atoms are not supported here (containment with
arithmetic built-ins is a harder problem the paper does not need).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.exceptions import QueryError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.terms import Constant, FreshConstantFactory, Variable
from repro.model.valuation import Substitution, match_atom
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.evaluation import valuations


def freeze(query: ConjunctiveQuery) -> Tuple[GlobalDatabase, Atom, Substitution]:
    """The canonical database of *query*: each variable becomes a fresh constant.

    Returns ``(frozen_body_db, frozen_head, freezing_substitution)``.
    """
    if query.builtin_body():
        raise QueryError("containment machinery does not support builtins")
    factory = FreshConstantFactory(taken=query.constants(), prefix="_frz")
    freezing = Substitution({v: factory.fresh() for v in query.variables()})
    frozen_body = [freezing.apply(b) for b in query.body]
    frozen_head = freezing.apply(query.head)
    return GlobalDatabase(frozen_body), frozen_head, freezing


def homomorphisms(
    source: ConjunctiveQuery, target_db: GlobalDatabase
) -> Iterator[Substitution]:
    """All homomorphisms from *source*'s body into *target_db*."""
    yield from valuations(source, target_db)


def is_contained_in(sub: ConjunctiveQuery, sup: ConjunctiveQuery) -> bool:
    """Chandra–Merlin test: ``sub ⊆ sup`` as queries over every database.

    There must be a homomorphism from *sup* into the frozen body of *sub*
    mapping ``head(sup)`` to the frozen ``head(sub)``.
    """
    if sub.head.arity != sup.head.arity:
        return False
    frozen_db, frozen_head, _ = freeze(sub)
    sup_renamed = sup.standardized_apart(sub.variables())
    seed = match_atom(sup_renamed.head, frozen_head)
    if seed is None:
        return False
    seeded = sup_renamed.substitute(seed)
    for _ in valuations(seeded, frozen_db):
        return True
    return False


def is_equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Mutual containment."""
    return is_contained_in(left, right) and is_contained_in(right, left)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of *query*: drop body atoms while preserving equivalence.

    Greedy: repeatedly try to remove one atom and check equivalence with the
    original; classical results guarantee the result is a minimal equivalent
    query (the core, unique up to renaming).
    """
    if query.builtin_body():
        raise QueryError("minimization does not support builtins")
    body = list(query.body)
    changed = True
    while changed:
        changed = False
        for i in range(len(body)):
            if len(body) == 1:
                break
            candidate_body = body[:i] + body[i + 1:]
            try:
                candidate = ConjunctiveQuery(query.head, candidate_body, query.builtins)
            except QueryError:
                continue  # removal broke safety
            if is_equivalent(candidate, query):
                body = candidate_body
                changed = True
                break
    return ConjunctiveQuery(query.head, body, query.builtins)
