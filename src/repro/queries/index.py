"""Hash indexes for conjunctive-query evaluation.

The plain evaluator scans a relation's whole extension for every body atom.
For large databases and repeated queries (the mediator's world-enumeration
and view-application inner loops) hash indexes on bound argument positions
turn each scan into a dictionary lookup.

:class:`DatabaseIndex` wraps a :class:`~repro.model.database.GlobalDatabase`
and builds per-(relation, positions) indexes lazily, memoizing them — the
database is immutable, so indexes never go stale.
:func:`evaluate_indexed` is a drop-in replacement for
:func:`repro.queries.evaluation.evaluate` (differentially tested to agree).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import BuiltinError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.terms import Constant
from repro.model.valuation import Substitution, match_atom
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.evaluation import order_body

Positions = Tuple[int, ...]
Key = Tuple[Constant, ...]


class DatabaseIndex:
    """Lazy hash indexes over an immutable database.

    >>> from repro.model import GlobalDatabase, fact
    >>> index = DatabaseIndex(GlobalDatabase([fact("R", 1, "x")]))
    >>> len(list(index.lookup("R", (0,), (Constant(1),))))
    1
    """

    __slots__ = ("database", "_indexes")

    def __init__(self, database: GlobalDatabase):
        self.database = database
        self._indexes: Dict[Tuple[str, Positions], Dict[Key, List[Atom]]] = {}

    def _build(self, relation: str, positions: Positions) -> Dict[Key, List[Atom]]:
        index: Dict[Key, List[Atom]] = {}
        for f in self.database.extension(relation):
            key = tuple(f.args[p] for p in positions)
            index.setdefault(key, []).append(f)
        return index

    def lookup(
        self, relation: str, positions: Positions, values: Key
    ) -> Sequence[Atom]:
        """Facts of *relation* whose arguments at *positions* equal *values*.

        An empty *positions* tuple returns the whole extension.
        """
        if not positions:
            return tuple(self.database.extension(relation))
        cache_key = (relation, positions)
        index = self._indexes.get(cache_key)
        if index is None:
            index = self._build(relation, positions)
            self._indexes[cache_key] = index
        return index.get(values, ())

    def candidates(
        self, pattern: Atom, substitution: Substitution
    ) -> Sequence[Atom]:
        """Facts that can possibly match *pattern* under *substitution*.

        Uses every argument position whose term is already ground (constant
        in the pattern, or a variable bound by the substitution) as the
        index key; remaining positions are checked by the caller's
        ``match_atom``.
        """
        positions: List[int] = []
        values: List[Constant] = []
        for i, term in enumerate(pattern.args):
            if isinstance(term, Constant):
                positions.append(i)
                values.append(term)
            else:
                bound = substitution.get(term)
                if isinstance(bound, Constant):
                    positions.append(i)
                    values.append(bound)
        return self.lookup(pattern.relation, tuple(positions), tuple(values))

    def index_count(self) -> int:
        """Number of materialized (relation, positions) indexes."""
        return len(self._indexes)


def _order_body(query: ConjunctiveQuery) -> List[Atom]:
    """Greedy most-bound-first join order (shared with the plain evaluator)."""
    return order_body(query.relational_body())


def indexed_valuations(
    query: ConjunctiveQuery, index: DatabaseIndex
) -> Iterator[Substitution]:
    """All body-embedding substitutions, using hash-index candidate lookup."""
    ordered = _order_body(query)
    registry = query.builtins

    def check_builtins(
        subst: Substitution, pending: List[Atom]
    ) -> Optional[List[Atom]]:
        still: List[Atom] = []
        for b in pending:
            grounded = subst.apply(b)
            if grounded.is_ground():
                if not registry.check_atom(grounded):
                    return None
            else:
                still.append(b)
        return still

    def extend(
        position: int, subst: Substitution, pending: List[Atom]
    ) -> Iterator[Substitution]:
        if position == len(ordered):
            if pending:
                raise BuiltinError(
                    f"builtin atoms left unbound after full join: {pending}"
                )
            yield subst
            return
        pattern = ordered[position]
        for candidate in index.candidates(pattern, subst):
            extended = match_atom(pattern, candidate, subst)
            if extended is None:
                continue
            still = check_builtins(extended, pending)
            if still is None:
                continue
            yield from extend(position + 1, extended, still)

    initial = check_builtins(Substitution(), list(query.builtin_body()))
    if initial is None:
        return
    yield from extend(0, Substitution(), initial)


def evaluate_indexed(
    query: ConjunctiveQuery,
    database_or_index,
) -> FrozenSet[Atom]:
    """``Q(D)`` via hash-indexed join; pass a :class:`DatabaseIndex` to reuse
    indexes across queries over the same database."""
    index = (
        database_or_index
        if isinstance(database_or_index, DatabaseIndex)
        else DatabaseIndex(database_or_index)
    )
    out: Set[Atom] = set()
    for subst in indexed_valuations(query, index):
        head = subst.apply(query.head)
        if head.is_ground():
            out.add(head)
    return frozenset(out)
