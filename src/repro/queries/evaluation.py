"""Conjunctive-query evaluation over global databases.

The evaluator is a backtracking join: it orders body atoms greedily (ground
and highly-bound atoms first, builtins as soon as their variables are bound)
and extends substitutions atom by atom. A naive cross-product evaluator is
kept as an oracle for differential testing.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import BuiltinError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.terms import Constant, Variable
from repro.model.valuation import Substitution, match_atom
from repro.queries.conjunctive import ConjunctiveQuery


def _bound_score(atom: Atom, bound: Set[Variable]) -> Tuple[int, int]:
    """Ordering key: prefer atoms with fewer unbound variables, then smaller."""
    unbound = sum(1 for v in atom.variables() if v not in bound)
    return (unbound, atom.arity)


def _order_body(query: ConjunctiveQuery) -> List[Atom]:
    """Greedy join order over relational atoms (builtins handled separately)."""
    remaining = list(query.relational_body())
    bound: Set[Variable] = set()
    ordered: List[Atom] = []
    while remaining:
        best = min(remaining, key=lambda a: _bound_score(a, bound))
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return ordered


def valuations(
    query: ConjunctiveQuery, database: GlobalDatabase
) -> Iterator[Substitution]:
    """All substitutions over the body variables that embed the body in *database*.

    Built-in atoms are checked as soon as every one of their variables is
    bound; safety guarantees this happens before the end.
    """
    ordered = _order_body(query)
    builtins_pending = list(query.builtin_body())
    registry = query.builtins

    def check_ready_builtins(subst: Substitution, pending: List[Atom]) -> Optional[List[Atom]]:
        """Evaluate builtins whose variables are now all bound.

        Returns the still-pending list, or ``None`` if a builtin failed.
        """
        still = []
        for b in pending:
            grounded = subst.apply(b)
            if grounded.is_ground():
                if not registry.check_atom(grounded):
                    return None
            else:
                still.append(b)
        return still

    def extend(index: int, subst: Substitution, pending: List[Atom]) -> Iterator[Substitution]:
        if index == len(ordered):
            if pending:
                # Safety should prevent this; guard anyway.
                raise BuiltinError(
                    f"builtin atoms left unbound after full join: {pending}"
                )
            yield subst
            return
        atom = ordered[index]
        for candidate in database.extension(atom.relation):
            extended = match_atom(atom, candidate, subst)
            if extended is None:
                continue
            still = check_ready_builtins(extended, pending)
            if still is None:
                continue
            yield from extend(index + 1, extended, still)

    initial_pending = check_ready_builtins(Substitution(), builtins_pending)
    if initial_pending is None:
        return
    yield from extend(0, Substitution(), initial_pending)


def evaluate(query: ConjunctiveQuery, database: GlobalDatabase) -> FrozenSet[Atom]:
    """``Q(D)``: the set of ground head facts produced by the query."""
    out: Set[Atom] = set()
    for subst in valuations(query, database):
        head = subst.apply(query.head)
        if head.is_ground():
            out.add(head)
    return frozenset(out)


def evaluate_naive(query: ConjunctiveQuery, database: GlobalDatabase) -> FrozenSet[Atom]:
    """Cross-product evaluation; the differential-testing oracle.

    Enumerates every assignment of body atoms to database facts, checks
    consistency and builtins at the end. Exponential, only for tests.
    """
    relational = query.relational_body()
    registry = query.builtins
    out: Set[Atom] = set()
    candidate_lists: List[Sequence[Atom]] = [
        sorted(database.extension(b.relation)) for b in relational
    ]
    for combo in product(*candidate_lists):
        subst: Optional[Substitution] = Substitution()
        for pattern, ground in zip(relational, combo):
            subst = match_atom(pattern, ground, subst)
            if subst is None:
                break
        if subst is None:
            continue
        ok = True
        for b in query.builtin_body():
            grounded = subst.apply(b)
            if not grounded.is_ground() or not registry.check_atom(grounded):
                ok = False
                break
        if not ok:
            continue
        head = subst.apply(query.head)
        if head.is_ground():
            out.add(head)
    return frozenset(out)


def supporting_valuation(
    query: ConjunctiveQuery, database: GlobalDatabase, head_fact: Atom
) -> Optional[Substitution]:
    """A valuation θ with ``head(φ)θ == head_fact`` and ``body(φ)θ ⊆ D``.

    This is the witness-choosing step of Lemma 3.1's proof. Returns ``None``
    when *head_fact* is not derivable.
    """
    seed = match_atom(query.head, head_fact)
    if seed is None:
        return None
    grounded = query.substitute(seed)
    for body_subst in valuations(grounded, database):
        return seed.compose(body_subst)
    return None


def derives(query: ConjunctiveQuery, database: GlobalDatabase, head_fact: Atom) -> bool:
    """True when ``head_fact ∈ φ(D)``, without materializing all of φ(D)."""
    return supporting_valuation(query, database, head_fact) is not None
