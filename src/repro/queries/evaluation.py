"""Conjunctive-query evaluation over global databases.

:func:`evaluate` routes through the compiled plan pipeline
(:mod:`repro.plan`): queries compile once per alpha-equivalence class into
interned scans and hash joins, and per-database indexes are shared across
calls. The original backtracking join survives unchanged as
:func:`evaluate_backtracking` — the differential oracle (same pattern as
``repro.core.baseline``) and still the engine behind
:func:`supporting_valuation`, which needs witness substitutions rather than
answer sets. A naive cross-product evaluator is kept as a second oracle.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import BuiltinError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.terms import Constant, Variable, term_sort_key
from repro.model.valuation import Substitution, match_atom
from repro.queries.conjunctive import ConjunctiveQuery


def _bound_score(atom: Atom, bound: Set[Variable]) -> Tuple[int, int]:
    """Ordering key: prefer atoms with fewer unbound variables, then smaller."""
    unbound = sum(1 for v in atom.variables() if v not in bound)
    return (unbound, atom.arity)


def order_body(atoms: Sequence[Atom]) -> List[Atom]:
    """Greedy most-bound-first join order with a *stable total* tie-break.

    The greedy score (unbound variable count, then arity) routinely ties —
    and a tie broken by set iteration order made plans, visit counters, and
    cache contents vary across runs. Ties now fall through to the atom's
    relation name, its argument terms (:func:`term_sort_key` gives a total
    order over mixed constants/variables), and finally the original body
    position, so the chosen order is a pure function of the atom multiset.
    Shared by the backtracking evaluator, the hash-index evaluator, and the
    plan compiler, which keeps all three executors join-order-aligned.
    """
    items = list(enumerate(atoms))
    bound: Set[Variable] = set()
    ordered: List[Atom] = []

    def key(item: Tuple[int, Atom]):
        index, atom = item
        unbound, arity = _bound_score(atom, bound)
        return (
            unbound,
            arity,
            atom.relation,
            tuple(term_sort_key(a) for a in atom.args),
            index,
        )

    while items:
        best = min(items, key=key)
        items.remove(best)
        ordered.append(best[1])
        bound |= best[1].variables()
    return ordered


def _order_body(query: ConjunctiveQuery) -> List[Atom]:
    """Greedy join order over relational atoms (builtins handled separately)."""
    return order_body(query.relational_body())


def valuations(
    query: ConjunctiveQuery, database: GlobalDatabase
) -> Iterator[Substitution]:
    """All substitutions over the body variables that embed the body in *database*.

    Built-in atoms are checked as soon as every one of their variables is
    bound; safety guarantees this happens before the end.
    """
    ordered = _order_body(query)
    builtins_pending = list(query.builtin_body())
    registry = query.builtins

    def check_ready_builtins(subst: Substitution, pending: List[Atom]) -> Optional[List[Atom]]:
        """Evaluate builtins whose variables are now all bound.

        Returns the still-pending list, or ``None`` if a builtin failed.
        """
        still = []
        for b in pending:
            grounded = subst.apply(b)
            if grounded.is_ground():
                if not registry.check_atom(grounded):
                    return None
            else:
                still.append(b)
        return still

    def extend(index: int, subst: Substitution, pending: List[Atom]) -> Iterator[Substitution]:
        if index == len(ordered):
            if pending:
                # Safety should prevent this; guard anyway.
                raise BuiltinError(
                    f"builtin atoms left unbound after full join: {pending}"
                )
            yield subst
            return
        atom = ordered[index]
        for candidate in database.extension(atom.relation):
            extended = match_atom(atom, candidate, subst)
            if extended is None:
                continue
            still = check_ready_builtins(extended, pending)
            if still is None:
                continue
            yield from extend(index + 1, extended, still)

    initial_pending = check_ready_builtins(Substitution(), builtins_pending)
    if initial_pending is None:
        return
    yield from extend(0, Substitution(), initial_pending)


def evaluate_backtracking(
    query: ConjunctiveQuery, database: GlobalDatabase
) -> FrozenSet[Atom]:
    """``Q(D)`` by backtracking join — the differential oracle for the plans."""
    out: Set[Atom] = set()
    for subst in valuations(query, database):
        head = subst.apply(query.head)
        if head.is_ground():
            out.add(head)
    return frozenset(out)


def evaluate(query: ConjunctiveQuery, database: GlobalDatabase) -> FrozenSet[Atom]:
    """``Q(D)``: the set of ground head facts produced by the query.

    Routes through :mod:`repro.plan` — compiled once per alpha-equivalence
    class, executed over cached interned scans and hash-join indexes.
    Answer-identical to :func:`evaluate_backtracking` (property-tested in
    ``tests/property/test_plan_equivalence.py``).
    """
    from repro.plan import evaluate as _plan_evaluate

    return _plan_evaluate(query, database)


def evaluate_naive(query: ConjunctiveQuery, database: GlobalDatabase) -> FrozenSet[Atom]:
    """Cross-product evaluation; the differential-testing oracle.

    Enumerates every assignment of body atoms to database facts, checks
    consistency and builtins at the end. Exponential, only for tests.
    """
    relational = query.relational_body()
    registry = query.builtins
    out: Set[Atom] = set()
    candidate_lists: List[Sequence[Atom]] = [
        sorted(database.extension(b.relation)) for b in relational
    ]
    for combo in product(*candidate_lists):
        subst: Optional[Substitution] = Substitution()
        for pattern, ground in zip(relational, combo):
            subst = match_atom(pattern, ground, subst)
            if subst is None:
                break
        if subst is None:
            continue
        ok = True
        for b in query.builtin_body():
            grounded = subst.apply(b)
            if not grounded.is_ground() or not registry.check_atom(grounded):
                ok = False
                break
        if not ok:
            continue
        head = subst.apply(query.head)
        if head.is_ground():
            out.add(head)
    return frozenset(out)


def supporting_valuation(
    query: ConjunctiveQuery, database: GlobalDatabase, head_fact: Atom
) -> Optional[Substitution]:
    """A valuation θ with ``head(φ)θ == head_fact`` and ``body(φ)θ ⊆ D``.

    This is the witness-choosing step of Lemma 3.1's proof. Returns ``None``
    when *head_fact* is not derivable.
    """
    seed = match_atom(query.head, head_fact)
    if seed is None:
        return None
    grounded = query.substitute(seed)
    for body_subst in valuations(grounded, database):
        return seed.compose(body_subst)
    return None


def derives(query: ConjunctiveQuery, database: GlobalDatabase, head_fact: Atom) -> bool:
    """True when ``head_fact ∈ φ(D)``, without materializing all of φ(D)."""
    return supporting_valuation(query, database, head_fact) is not None
