"""Conjunctive queries: representation, evaluation, parsing, containment."""

from repro.queries.builtins import (
    EMPTY_REGISTRY,
    Builtin,
    BuiltinRegistry,
    default_registry,
)
from repro.queries.conjunctive import (
    ANSWER_RELATION,
    ConjunctiveQuery,
    answer_query,
    identity_view,
)
from repro.queries.containment import (
    freeze,
    homomorphisms,
    is_contained_in,
    is_equivalent,
    minimize,
)
from repro.queries.index import (
    DatabaseIndex,
    evaluate_indexed,
    indexed_valuations,
)
from repro.queries.evaluation import (
    derives,
    evaluate,
    evaluate_backtracking,
    evaluate_naive,
    order_body,
    supporting_valuation,
    valuations,
)
from repro.queries.parser import (
    parse_atom,
    parse_fact,
    parse_program,
    parse_rule,
)

__all__ = [
    "Builtin",
    "BuiltinRegistry",
    "default_registry",
    "EMPTY_REGISTRY",
    "ConjunctiveQuery",
    "identity_view",
    "answer_query",
    "ANSWER_RELATION",
    "evaluate",
    "evaluate_backtracking",
    "evaluate_naive",
    "evaluate_indexed",
    "order_body",
    "DatabaseIndex",
    "indexed_valuations",
    "valuations",
    "derives",
    "supporting_valuation",
    "parse_atom",
    "parse_fact",
    "parse_rule",
    "parse_program",
    "freeze",
    "homomorphisms",
    "is_contained_in",
    "is_equivalent",
    "minimize",
]
