"""Built-in global relations (Section 1.1 uses ``After(y, 1900)``).

Built-ins are infinite, computable relations: they cannot be stored in a
:class:`~repro.model.database.GlobalDatabase`, so the evaluator checks them
once all their arguments are bound to constants. A registry maps relation
names to predicate functions over Python values.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from repro.exceptions import BuiltinError
from repro.model.atoms import Atom
from repro.model.terms import Constant


class Builtin:
    """A named computable predicate of fixed arity."""

    __slots__ = ("name", "arity", "predicate")

    def __init__(self, name: str, arity: int, predicate: Callable[..., bool]):
        if arity < 1:
            raise BuiltinError(f"builtin {name} must have positive arity")
        self.name = name
        self.arity = arity
        self.predicate = predicate

    def check(self, values: Iterable[Any]) -> bool:
        """Evaluate the predicate on ground argument values."""
        args = tuple(values)
        if len(args) != self.arity:
            raise BuiltinError(
                f"builtin {self.name} called with {len(args)} args, arity {self.arity}"
            )
        try:
            return bool(self.predicate(*args))
        except TypeError:
            # Heterogeneous comparisons (e.g. `1990 > "x"`) simply fail the
            # predicate rather than aborting evaluation.
            return False

    def __repr__(self) -> str:
        return f"Builtin({self.name!r}, {self.arity})"


class BuiltinRegistry:
    """A set of built-ins visible to one evaluation context.

    The default registry carries the comparison predicates the motivating
    example needs (``After``, ``Before``) plus the standard ones.

    >>> registry = default_registry()
    >>> registry.is_builtin("After")
    True
    """

    __slots__ = ("_builtins",)

    def __init__(self, builtins: Iterable[Builtin] = ()):
        self._builtins: Dict[str, Builtin] = {}
        for b in builtins:
            self.register(b)

    def register(self, builtin: Builtin) -> None:
        """Add or replace a builtin."""
        self._builtins[builtin.name] = builtin

    def is_builtin(self, name: str) -> bool:
        return name in self._builtins

    def get(self, name: str) -> Optional[Builtin]:
        return self._builtins.get(name)

    def names(self) -> frozenset:
        return frozenset(self._builtins)

    def check_atom(self, atom: Atom) -> bool:
        """Evaluate a ground builtin atom.

        Raises :class:`BuiltinError` if the atom is not ground — callers
        (the evaluator) must defer builtins until their variables are bound.
        """
        builtin = self._builtins.get(atom.relation)
        if builtin is None:
            raise BuiltinError(f"unknown builtin: {atom.relation}")
        if not atom.is_ground():
            raise BuiltinError(f"builtin atom not ground at check time: {atom}")
        values = [arg.value for arg in atom.args if isinstance(arg, Constant)]
        return builtin.check(values)


def default_registry() -> BuiltinRegistry:
    """The standard registry: After/Before plus six comparison predicates."""
    return BuiltinRegistry(
        [
            Builtin("After", 2, lambda x, y: x > y),
            Builtin("Before", 2, lambda x, y: x < y),
            Builtin("Lt", 2, lambda x, y: x < y),
            Builtin("Le", 2, lambda x, y: x <= y),
            Builtin("Gt", 2, lambda x, y: x > y),
            Builtin("Ge", 2, lambda x, y: x >= y),
            Builtin("Eq", 2, lambda x, y: x == y),
            Builtin("Neq", 2, lambda x, y: x != y),
        ]
    )


EMPTY_REGISTRY = BuiltinRegistry()
