"""Deterministic merging of per-shard answer sets.

Scatter-gather execution produces one answer set per fragment, in whatever
order the fragments finished; rendering them to a caller needs one
*canonical* total order so equal answer sets always serialize identically.
``sorted(answers, key=str)`` — the service's historical rendering — is not
total: constants wrap arbitrary hashable values, and two unequal values of
different types can share a ``str`` rendering (any user-defined value
whose ``__str__`` collides with another's), leaving their relative order
to the set's salted iteration order. :func:`canonical_answer_key` breaks
those ties by value *type* before repr, the same discrimination
:func:`repro.model.terms.term_sort_key` uses, so the order is reproducible
across runs, processes, and shard layouts.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.model.atoms import Atom
from repro.model.terms import term_sort_key


def canonical_answer_key(atom: Atom) -> Tuple:
    """A total sort key over answer atoms: relation, arity, then args.

    Arguments order by ``term_sort_key`` — ``(type name, repr)`` for
    constants — so values whose ``str`` renderings coincide still compare
    deterministically. Total for every value with a faithful ``repr``
    (everything the serialization format can carry).
    """
    return (
        atom.relation,
        len(atom.args),
        tuple(term_sort_key(argument) for argument in atom.args),
    )


def canonical_order(answers: Iterable[Atom]) -> Tuple[Atom, ...]:
    """Deduplicate and sort *answers* into the canonical total order.

    >>> from repro.model import fact
    >>> [str(a) for a in canonical_order([fact("R", 2), fact("R", 1)])]
    ['R(1)', 'R(2)']
    """
    return tuple(sorted(set(answers), key=canonical_answer_key))


def merge_answer_sets(
    parts: Iterable[Iterable[Atom]],
) -> FrozenSet[Atom]:
    """The union of per-fragment answer sets (set semantics).

    Fragments overlap freely — broadcast replicates small relations,
    repartitioning may double-place self-join facts — so the merge is a
    plain union; conjunctive queries are monotone, which is what makes every
    fragment's answers sound (each fragment store is a subset of the full
    store).
    """
    merged = set()
    for part in parts:
        merged.update(part)
    return frozenset(merged)


def merge_ordered(parts: Iterable[Iterable[Atom]]) -> Tuple[Atom, ...]:
    """Union of per-fragment answers in the canonical total order."""
    return canonical_order(merge_answer_sets(parts))
