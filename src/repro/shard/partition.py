"""Deterministic hash partitioning of interned fact sets.

A :class:`PartitionSpec` names, per relation, which argument position is the
*partition key*; :func:`partition_facts` splits an
:class:`~repro.core.factset.IFactSet` into ``num_shards`` disjoint fact sets
by hashing the key position's constant **value**.

The bucket hash is :func:`stable_bucket`, built on ``blake2b`` over the
value's ``(type name, repr)`` pair — the same vocabulary as
:func:`repro.model.terms.term_sort_key`. Python's builtin ``hash`` is
deliberately avoided: it is salted per process (``PYTHONHASHSEED``), and a
shard assignment must agree between the coordinator, its worker processes,
and any future run that reads a persisted layout. Interned IDs are avoided
for the same reason — they are process-local
(:mod:`repro.core.symbols`), while values survive the trip.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.cache import cache_registry
from repro.cache.runtime import LRUMemo
from repro.core.factset import IFactSet
from repro.exceptions import ModelError

#: Separator between the type name and the repr inside the hash payload;
#: chosen outside the printable range a repr normally produces.
_SEP = b"\x1f"


def stable_bucket(value: Any, num_shards: int) -> int:
    """The shard index of a constant *value* — stable across processes.

    >>> stable_bucket("a", 4) == stable_bucket("a", 4)
    True
    >>> 0 <= stable_bucket(17, 8) < 8
    True

    Values of different types never collide through type coercion the way
    ``hash(1) == hash(1.0)`` does: the payload starts with the type name,
    mirroring the total order of ``repro.model.terms``.
    """
    if num_shards < 1:
        raise ModelError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards == 1:
        return 0
    payload = (
        type(value).__name__.encode("utf-8", "backslashreplace")
        + _SEP
        + repr(value).encode("utf-8", "backslashreplace")
    )
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


class PartitionSpec:
    """How a database is split: shard count plus per-relation key positions.

    ``keys`` maps relation names to the argument position used as the
    partition key; relations not named fall back to ``default_key``. A key
    position past a relation's arity clamps to the last argument, and
    zero-arity relations have no key at all — their facts land in shard 0.

    Specs are immutable values: equal specs hash alike, so caches keyed by
    ``(facts, spec)`` behave.
    """

    __slots__ = ("num_shards", "default_key", "_keys", "_hash")

    def __init__(
        self,
        num_shards: int,
        keys: Optional[Mapping[str, int]] = None,
        default_key: int = 0,
    ):
        if num_shards < 1:
            raise ModelError(f"num_shards must be >= 1, got {num_shards}")
        if default_key < 0:
            raise ModelError(f"default_key must be >= 0, got {default_key}")
        items = tuple(sorted((keys or {}).items()))
        for relation, position in items:
            if position < 0:
                raise ModelError(
                    f"partition key of {relation!r} must be >= 0, got {position}"
                )
        self.num_shards = num_shards
        self.default_key = default_key
        self._keys: Tuple[Tuple[str, int], ...] = items
        self._hash = hash((num_shards, default_key, items))

    def keys(self) -> Dict[str, int]:
        """The explicit per-relation key positions, as a fresh dict."""
        return dict(self._keys)

    def key_position(self, relation: str, arity: int) -> Optional[int]:
        """The partition-key argument position for *relation* at *arity*.

        ``None`` for zero-arity relations (nothing to hash).
        """
        if arity <= 0:
            return None
        position = dict(self._keys).get(relation, self.default_key)
        return min(position, arity - 1)

    def shard_of_args(self, relation: str, values: Tuple[Any, ...]) -> int:
        """The shard a fact ``relation(values...)`` belongs to."""
        position = self.key_position(relation, len(values))
        if position is None:
            return 0
        return stable_bucket(values[position], self.num_shards)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PartitionSpec)
            and self.num_shards == other.num_shards
            and self.default_key == other.default_key
            and self._keys == other._keys
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        keys = f", keys={dict(self._keys)!r}" if self._keys else ""
        default = (
            f", default_key={self.default_key}" if self.default_key else ""
        )
        return f"PartitionSpec({self.num_shards}{keys}{default})"


#: Bound on cached partitions; per-world loops cycle through far fewer
#: live worlds than this (mirrors the plan layer's data-source LRU).
MAX_PARTITIONS = 64


def _partition_sizeof(key: Tuple, shards: Tuple[IFactSet, ...]) -> int:
    """Price a layout: one frozenset of fact IDs per shard."""
    return 200 + 64 * len(shards) + 96 * sum(len(s) for s in shards)


_PARTITIONS = cache_registry().enroll(
    LRUMemo(
        maxsize=MAX_PARTITIONS,
        name="shard.partitions",
        sizeof=_partition_sizeof,
    )
)


def partition_facts(
    facts: IFactSet, spec: PartitionSpec
) -> Tuple[IFactSet, ...]:
    """Split *facts* into ``spec.num_shards`` disjoint fact sets.

    Every fact lands in exactly one shard — the one its partition-key
    value hashes to — so the shards' union is *facts* and pairwise
    intersections are empty (property-tested). The assignment only reads
    decoded values, never raw IDs, so two processes interning the same
    database in different orders agree on the layout.

    Results are LRU-cached by ``(facts, spec)`` *value*: re-enumerated
    equal worlds reuse their shard layout the way they reuse scan rows.
    Entries are tagged with the partitioned fact set, so the invalidation
    bus retires every spec's layout of a retired world in one call.
    """
    if spec.num_shards == 1:
        return (facts,)
    cache_key = (facts, spec)
    hit, cached = _PARTITIONS.lookup(cache_key)
    if hit:
        return cached
    table = facts.table
    fact_tuple = table.fact_tuple
    constant_value = table.constant_value
    relation_name = table.relation_name
    key_by_rid: Dict[Tuple[int, int], Optional[int]] = {}
    buckets: Tuple[set, ...] = tuple(set() for _ in range(spec.num_shards))
    for fid in facts.ids():
        t = fact_tuple(fid)
        arity = len(t) - 1
        position = key_by_rid.get((t[0], arity))
        if position is None and (t[0], arity) not in key_by_rid:
            position = spec.key_position(relation_name(t[0]), arity)
            key_by_rid[(t[0], arity)] = position
        if position is None:
            buckets[0].add(fid)
        else:
            buckets[
                stable_bucket(constant_value(t[1 + position]), spec.num_shards)
            ].add(fid)
    shards = tuple(
        IFactSet(table, frozenset(bucket)) for bucket in buckets  # boxed-ok: ints
    )
    _PARTITIONS.store(cache_key, shards, tags=(facts,))
    return shards


def clear_partitions() -> None:
    """Drop the partition cache (tests and benchmarks reset with it)."""
    _PARTITIONS.clear()


def bucket_of_fact(facts: IFactSet, spec: PartitionSpec, fid: int) -> int:
    """The shard index one interned fact would be assigned to."""
    table = facts.table
    t = table.fact_tuple(fid)
    position = spec.key_position(table.relation_name(t[0]), len(t) - 1)
    if position is None:
        return 0
    return stable_bucket(table.constant_value(t[1 + position]), spec.num_shards)
