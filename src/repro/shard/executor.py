"""Scatter-gather execution of compiled plans over shard fragments.

The :class:`ShardExecutor` takes a :class:`~repro.shard.store.ShardedDatabase`,
asks the planner (:func:`repro.shard.planner.plan_shards`) which fragments a
query must touch, runs the compiled plan against each fragment, and merges
the per-fragment answers through :mod:`repro.shard.merge`.

Two execution paths:

* **serial** (the default, ``workers <= 1``): each fragment is evaluated
  in-process through the plan pipeline. Fragments are plain
  :class:`~repro.core.factset.IFactSet` values, so scan rows, join indexes,
  and statistics are cached per fragment by the existing plan-layer LRUs —
  the pruning win (touch ``1/N`` of the store) needs no parallelism at all.
* **process pool** (``workers >= 2``): fragments are shipped to PR 1's
  :class:`~repro.confidence.engine.executors.ProcessExecutor`. Interned IDs
  are process-local (:mod:`repro.core.symbols`), so fragments cross the
  boundary as *value-level payloads* — ``(relation name, argument values)``
  tuples — and queries as their parsed-back text. Workers cache each
  fragment under a coordinator-issued token; a worker seeing an unknown
  token without a payload answers a *miss* and the coordinator re-sends
  with the payload, so steady state ships only tokens. Queries that do not
  round-trip through the parser (builtin registries are closures) fall back
  to the serial path; pool-creation failure degrades the same way the
  engine's executors do.

Process-wide counters (queries, fragments, pruned shards, strategy mix,
misses) feed the service's ``stats()`` surface via :func:`shard_stats`.
"""

from __future__ import annotations

import threading
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.cache import cache_registry
from repro.cache.runtime import LRUMemo
from repro.model.atoms import Atom
from repro.model.terms import Constant
from repro.queries.conjunctive import ConjunctiveQuery
from repro.shard.merge import canonical_order, merge_answer_sets
from repro.shard.planner import ShardPlan, explain_shards, plan_shards
from repro.shard.store import ShardedDatabase

#: One shipped fragment: ``(relation name, argument values)`` per fact.
FragmentPayload = Tuple[Tuple[str, Tuple[Any, ...]], ...]

#: One shipped answer: ``(relation name, argument values)``.
EncodedAnswer = Tuple[str, Tuple[Any, ...]]

#: What a dying worker pool surfaces as: ``BrokenProcessPool`` from
#: ``concurrent.futures``-style pools, ``OSError``/``EOFError`` from a
#: ``multiprocessing.Pool`` whose pipe to a killed worker collapsed.
BROKEN_POOL_ERRORS = (BrokenProcessPool, OSError, EOFError)


# -- process-wide counters -----------------------------------------------------

_COUNTERS_LOCK = threading.Lock()
_COUNTERS: Dict[str, int] = {}  # adhoc-cache-ok: monotone counters, not a cache


def _bump(name: str, delta: int = 1) -> None:
    with _COUNTERS_LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + delta


def shard_stats() -> Dict[str, int]:
    """Process-wide shard-execution counters (service ``stats()`` surface)."""
    with _COUNTERS_LOCK:
        return dict(_COUNTERS)


def reset_shard_stats() -> None:
    """Zero the counters (tests and benchmarks reset with it)."""
    with _COUNTERS_LOCK:
        _COUNTERS.clear()


# -- fragment tokens and payloads ----------------------------------------------

#: Bound on remembered fragment tokens. Evicting one merely forgets the
#: token; the counter never reuses a name, so a worker's stale cache entry
#: for an evicted token can never be addressed again (no aliasing).
MAX_FRAGMENT_TOKENS = 512

_TOKEN_SEQUENCE = iter(range(1, 1 << 62))


def _token_sizeof(facts, entry) -> int:
    """Price a token entry by its fragment: the payload (filled lazily
    after store) decodes one value tuple per fact."""
    return 160 + 120 * len(facts)


_FRAGMENT_TOKENS = cache_registry().enroll(
    LRUMemo(
        maxsize=MAX_FRAGMENT_TOKENS,
        name="shard.fragment_tokens",
        sizeof=_token_sizeof,
    )
)


def _token_entry(facts) -> List:
    """``[token, payload-or-None]`` for a fragment, LRU-cached by value.

    Minted atomically (the runtime's get-or-create runs the factory under
    the cache lock), so one fragment never gets two tokens — the invariant
    the worker-side payload cache depends on. Keyed by the fragment, so
    the invalidation bus retires tokens of retired worlds by key match.
    """
    return _FRAGMENT_TOKENS.get_or_create(
        facts, lambda: [f"fragment-{next(_TOKEN_SEQUENCE)}", None]
    )


def _encode_fragment(facts) -> FragmentPayload:
    """Decode a fragment to value-level facts (the wire representation)."""
    table = facts.table
    fact_tuple = table.fact_tuple
    relation_name = table.relation_name
    constant_value = table.constant_value
    out = []
    for fid in facts.sorted_ids():
        t = fact_tuple(fid)
        out.append(
            (relation_name(t[0]), tuple(constant_value(c) for c in t[1:]))
        )
    return tuple(out)


def _payload_for(facts) -> FragmentPayload:
    entry = _token_entry(facts)
    if entry[1] is None:
        entry[1] = _encode_fragment(facts)
    return entry[1]


# -- the worker side -----------------------------------------------------------

#: Per-worker fragment stores, keyed by coordinator token. Lives in the
#: worker process (each process enrolls its own instance in its own
#: registry); in degraded (serial-fallback) mode it lives in the
#: coordinator, which is harmless duplication. Evicting a store is always
#: safe: the worker answers the next use of its token with a miss and the
#: coordinator re-sends the payload. Token keys are value-level strings,
#: so the cache survives symbol-table rollbacks untouched.
_WORKER_STORES = cache_registry().enroll(
    LRUMemo(
        maxsize=MAX_FRAGMENT_TOKENS,
        name="shard.worker_stores",
        sizeof=lambda token, db: 300 + 200 * len(db),
    ),
    id_sensitive=False,
)


def _worker_answer(
    task: Tuple[str, Optional[FragmentPayload], str]
) -> Optional[Tuple[EncodedAnswer, ...]]:
    """Evaluate one query text against one cached fragment store.

    ``None`` signals a cache miss (unknown token, no payload shipped); the
    coordinator re-sends the task with the payload attached. Must stay
    module-level and value-only: it crosses the pickle boundary.
    """
    token, payload, query_text = task
    hit, database = _WORKER_STORES.lookup(token)
    if not hit:
        if payload is None:
            return None
        from repro.model.database import GlobalDatabase

        database = GlobalDatabase(
            Atom(relation, tuple(Constant(v) for v in values))
            for relation, values in payload
        )
        _WORKER_STORES.store(token, database)
    from repro.plan import evaluate as plan_evaluate
    from repro.queries.parser import parse_rule

    answers = plan_evaluate(parse_rule(query_text), database)
    return tuple(
        (a.relation, tuple(c.value for c in a.args)) for a in answers
    )


def worker_store_count() -> int:
    """How many fragment stores this process caches (tests/diagnostics)."""
    return len(_WORKER_STORES)


def clear_worker_stores() -> None:
    """Drop the worker-side fragment cache (tests reset with it)."""
    _WORKER_STORES.clear()


# -- serial fragment evaluation ------------------------------------------------

def evaluate_fragment(query, facts) -> FrozenSet[Atom]:
    """One fragment's answers through the compiled-plan pipeline.

    The in-process mirror of :func:`repro.plan.evaluate` minus the boxed
    database wrapper: fragments are already interned fact sets.
    """
    from repro.plan.compiler import plan_for
    from repro.plan.executor import data_source_for, execute_plan

    plan = plan_for(query, facts=facts)
    source = data_source_for(facts)
    rows = execute_plan(plan, source)
    constant_value = plan.table.constant_value
    head_relation = plan.head_relation
    return frozenset(
        Atom(head_relation, tuple(Constant(constant_value(c)) for c in row))
        for row in rows
    )


# -- query portability ---------------------------------------------------------

#: Bound on remembered portability verdicts (queries are tiny; the bound
#: caps pathological query-generation loops).
MAX_PORTABLE_VERDICTS = 256

_PORTABLE_CACHE = cache_registry().enroll(
    LRUMemo(maxsize=MAX_PORTABLE_VERDICTS, name="shard.portable"),
    id_sensitive=False,
)


def _portable_query(query) -> bool:
    """Can *query* cross the process boundary as its own text?

    Builtin registries hold closures (unpicklable, and a worker's freshly
    parsed default registry would not be *this* registry), so only
    builtin-free queries whose text parses back to an identical head and
    body qualify. Everything else runs on the serial path — same answers,
    no pool. Verdicts are world-independent (boxed query keys, boolean
    values), so entries carry no tags and survive registry churn and
    symbol rollbacks alike.
    """
    if not isinstance(query, ConjunctiveQuery) or query.builtin_body():
        return False
    hit, cached = _PORTABLE_CACHE.lookup(query)
    if hit:
        return cached
    from repro.queries.parser import parse_rule

    try:
        reparsed = parse_rule(str(query))
        portable = (
            reparsed.head == query.head and reparsed.body == query.body
        )
    except Exception:
        portable = False
    _PORTABLE_CACHE.store(query, portable)
    return portable


# -- the executor --------------------------------------------------------------

class ShardExecutor:
    """Scatter-gather query answering over one sharded database.

    *pool* lets many executors share one worker pool (per-world loops build
    an executor per world; the pool and its workers' fragment caches must
    outlive them all). A shared pool is never closed by the executor, and
    the sent-token bookkeeping rides on the pool object itself, so a warm
    worker is never re-sent a payload it already caches.
    """

    def __init__(
        self, sharded: ShardedDatabase, workers: int = 0, pool=None
    ):
        self.sharded = sharded
        self.workers = workers
        self._pool = pool
        self._owns_pool = pool is None
        self.counters: Dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool if this executor owns it (idempotent)."""
        if self._pool is not None and self._owns_pool:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self):
        if self._pool is None:
            from repro.confidence.engine.executors import make_executor

            self._pool = make_executor(self.workers, mode="process")
        return self._pool

    # -- answering ---------------------------------------------------------------

    def answer(self, query) -> FrozenSet[Atom]:
        """``Q(D)`` via scatter-gather: identical to the single-store path."""
        plan = plan_shards(query, self.sharded)
        self._count_plan(plan)
        parts = self._execute(query, plan)
        return merge_answer_sets(parts)

    def answer_ordered(self, query) -> Tuple[Atom, ...]:
        """:meth:`answer` in the canonical total order (service rendering)."""
        return canonical_order(self.answer(query))

    def explain(self, query) -> str:
        """The shard section of EXPLAIN for *query* over this store."""
        return explain_shards(query, self.sharded)

    def _execute(self, query, plan: ShardPlan) -> List[Iterable[Atom]]:
        if (
            self.workers >= 2
            and len(plan.fragments) > 1
            and _portable_query(query)
        ):
            return self._execute_process(query, plan)
        return [
            evaluate_fragment(query, facts) for _index, facts in plan.fragments
        ]

    def _respawn_pool(self, pool):
        """Replace or reset a broken pool; returns the pool to use next.

        A pool that can respawn itself (:class:`ProcessExecutor`) keeps
        its identity — important for shared pools, whose other executors
        hold the same reference. Anything else is torn down and rebuilt,
        and this executor takes ownership of the replacement. Either way
        the sent-token set resets: the new workers' fragment caches are
        empty, so every payload must ship again.
        """
        self._count("pool_respawns")
        respawn = getattr(pool, "respawn", None)
        if respawn is not None:
            respawn()
        else:
            try:
                pool.close()
            except Exception:
                pass  # broken pools may refuse even teardown
            from repro.confidence.engine.executors import make_executor

            pool = make_executor(self.workers, mode="process")
            self._pool = pool
            self._owns_pool = True
        pool.shard_sent_tokens = set()
        return pool

    def _execute_process(self, query, plan: ShardPlan) -> List[Iterable[Atom]]:
        pool = self._ensure_pool()
        if getattr(pool, "degraded", False):
            self._count("process_degraded")
        sent = getattr(pool, "shard_sent_tokens", None)
        if sent is None:
            sent = pool.shard_sent_tokens = set()
        query_text = str(query)
        tasks = []
        for _index, facts in plan.fragments:
            token = _token_entry(facts)[0]
            if token in sent:
                tasks.append((token, None, query_text))
            else:
                tasks.append((token, _payload_for(facts), query_text))
        try:
            results = pool.map(_worker_answer, tasks)
        except BROKEN_POOL_ERRORS:
            # Workers died mid-batch. Respawn the pool and replay the
            # whole batch with full payloads out of the fragment-token
            # store — the fresh workers cache nothing yet. Only if the
            # replacement pool *also* breaks does this query fall back
            # to serial; the pool stays eligible for the next one.
            pool = self._respawn_pool(pool)
            sent = pool.shard_sent_tokens
            tasks = [
                (task[0], _payload_for(plan.fragments[i][1]), query_text)
                for i, task in enumerate(tasks)
            ]
            try:
                results = pool.map(_worker_answer, tasks)
            except BROKEN_POOL_ERRORS:
                self._count("pool_serial_fallbacks")
                return [
                    evaluate_fragment(query, facts)
                    for _index, facts in plan.fragments
                ]
        missed = [i for i, result in enumerate(results) if result is None]
        if missed:
            self._count("worker_misses", len(missed))
            retries = [
                (tasks[i][0], _payload_for(plan.fragments[i][1]), query_text)
                for i in missed
            ]
            for i, result in zip(missed, pool.map(_worker_answer, retries)):
                results[i] = result
        sent.update(token for token, _payload, _text in tasks)
        self._count("process_queries")
        return [
            [
                Atom(relation, tuple(Constant(v) for v in values))
                for relation, values in part
            ]
            for part in results
        ]

    # -- accounting --------------------------------------------------------------

    def _count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta
        _bump(name, delta)

    def _count_plan(self, plan: ShardPlan) -> None:
        self._count("queries")
        self._count("fragments_executed", plan.shards_executed)
        if plan.shards_pruned:
            self._count("shards_pruned", plan.shards_pruned)
        self._count(f"strategy_{plan.strategy}")

    def stats(self) -> Dict[str, object]:
        """This executor's counters plus the store's layout counters."""
        out: Dict[str, object] = dict(self.counters)
        out["layout"] = self.sharded.layout_counters()
        out["workers"] = self.workers
        return out


def evaluate_sharded(
    query, database, spec, workers: int = 0, pool=None
) -> FrozenSet[Atom]:
    """One-shot sharded evaluation of *query* over a boxed database.

    Convenience for per-world loops: the partition itself is cached by
    ``(facts, spec)`` value, so re-enumerated equal worlds reuse their
    shard layout the same way they reuse scan rows. Pass a shared *pool*
    (from :func:`repro.confidence.engine.executors.make_executor`) when
    calling in a loop with ``workers >= 2`` — otherwise each call would
    spawn and tear down its own process pool.
    """
    store = ShardedDatabase(database, spec)
    with ShardExecutor(store, workers=workers, pool=pool) as ex:
        return ex.answer(query)
