"""Partition-aware planning: which fragments must a query touch?

Given a conjunctive query and a :class:`~repro.shard.store.ShardedDatabase`,
:func:`plan_shards` picks one of six strategies:

* ``single`` — one shard configured; the union store, zero overhead;
* ``pruned`` — a single-atom query with a constant at the partition-key
  position touches exactly one shard; the other ``N−1`` are pruned without
  reading a fact;
* ``scatter`` — a single-atom query over all base shards (every fact lives
  in exactly one, so the per-shard unions cover the store);
* ``copartitioned`` — a join whose common variable sits at *every* atom's
  partition-key position: matching facts already co-locate, shard-local
  joins over the base partition are complete;
* ``broadcast`` — one big relation stays shard-local, everything else is
  replicated to each fragment (valid when the big relation appears in
  exactly one atom);
* ``repartition`` — facts re-bucketed on a variable common to all atoms;

with ``global`` (evaluate the union store in one piece) as the fallback for
shapes distribution cannot help — algebra trees, zero-ary atoms, joins with
no common variable and no once-mentioned relation.

The broadcast-vs-repartition choice is cost-based, driven by the same
:func:`repro.plan.statistics.statistics_for` cardinalities the optimizer
uses: broadcast replicates the small relations ``N`` times, repartitioning
moves every queried fact roughly once, and the cheaper estimated volume
wins. Soundness never depends on the choice — every fragment is a subset of
the store and conjunctive queries are monotone — only completeness does,
and both layouts guarantee it (see :mod:`repro.shard.store`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.factset import IFactSet
from repro.model.terms import Constant, Variable
from repro.queries.conjunctive import ConjunctiveQuery
from repro.shard.partition import stable_bucket
from repro.shard.store import ShardedDatabase


@dataclass(frozen=True)
class ShardPlan:
    """The fragments one query execution must scatter over."""

    strategy: str
    #: ``(fragment index, fact set)`` pairs, in execution order
    fragments: Tuple[Tuple[int, IFactSet], ...]
    shards_total: int
    shards_pruned: int = 0
    detail: str = ""
    #: estimated materialized volume per candidate layout (explain surface)
    cost_estimates: Dict[str, float] = field(default_factory=dict)

    @property
    def shards_executed(self) -> int:
        """How many fragments the scatter phase actually runs."""
        return len(self.fragments)


def _variable_at_key(query: ConjunctiveQuery, spec) -> Optional[Variable]:
    """The single variable occupying every atom's key position, if any."""
    shared: Optional[Variable] = None
    for atom in query.relational_body():
        position = spec.key_position(atom.relation, len(atom.args))
        if position is None:
            return None
        term = atom.args[position]
        if not isinstance(term, Variable):
            return None
        if shared is None:
            shared = term
        elif term != shared:
            return None
    return shared


def _common_variables(query: ConjunctiveQuery) -> Tuple[Variable, ...]:
    """Variables occurring in every relational body atom, name-sorted."""
    atoms = query.relational_body()
    common = set(atoms[0].variables())
    for atom in atoms[1:]:
        common &= atom.variables()
    return tuple(sorted(common, key=lambda v: v.name))


def _relation_cardinalities(
    sharded: ShardedDatabase, relations: Tuple[str, ...]
) -> Dict[str, int]:
    """Cardinality of each queried relation, via the statistics catalog."""
    from repro.plan.statistics import statistics_for

    union = sharded.union_core()
    table = union.table
    stats = statistics_for(union)
    out: Dict[str, int] = {}
    for name in relations:
        rid = table.find_relation(name)
        relation_stats = None if rid is None else stats.relations.get(rid)
        out[name] = 0 if relation_stats is None else relation_stats.cardinality
    return out


def plan_shards(
    query,
    sharded: ShardedDatabase,
    use_statistics: bool = True,
) -> ShardPlan:
    """Choose a strategy and materialize its fragments for *query*."""
    spec = sharded.spec
    union = sharded.union_core()
    total = spec.num_shards
    if total == 1:
        return ShardPlan("single", ((0, union),), 1, detail="one shard configured")
    if not isinstance(query, ConjunctiveQuery):
        return ShardPlan(
            "global", ((0, union),), total,
            detail=f"{type(query).__name__} is outside the shardable vocabulary",
        )
    atoms = query.relational_body()
    if not atoms:
        return ShardPlan(
            "global", ((0, union),), total, detail="no relational body atoms"
        )
    if len(atoms) == 1:
        return _plan_single_atom(query, sharded)
    return _plan_join(query, sharded, use_statistics)


def _plan_single_atom(query: ConjunctiveQuery, sharded: ShardedDatabase) -> ShardPlan:
    spec = sharded.spec
    atom = query.relational_body()[0]
    position = spec.key_position(atom.relation, len(atom.args))
    if position is None:
        return ShardPlan(
            "global", ((0, sharded.union_core()),), spec.num_shards,
            detail=f"{atom.relation} has no partition key (zero arity)",
        )
    term = atom.args[position]
    if isinstance(term, Constant):
        bucket = stable_bucket(term.value, spec.num_shards)
        return ShardPlan(
            "pruned",
            ((bucket, sharded.shards()[bucket]),),
            spec.num_shards,
            shards_pruned=spec.num_shards - 1,
            detail=(
                f"{atom.relation}[{position}] = {term} fixes shard {bucket}"
            ),
        )
    return ShardPlan(
        "scatter",
        tuple(enumerate(sharded.shards())),
        spec.num_shards,
        detail=f"shard-local scan of {atom.relation} on every shard",
    )


def _plan_join(
    query: ConjunctiveQuery, sharded: ShardedDatabase, use_statistics: bool
) -> ShardPlan:
    spec = sharded.spec
    atoms = query.relational_body()
    shared = _variable_at_key(query, spec)
    if shared is not None:
        return ShardPlan(
            "copartitioned",
            tuple(enumerate(sharded.shards())),
            spec.num_shards,
            detail=(
                f"join variable {shared.name} sits at every partition key: "
                "base shards are join-complete"
            ),
        )
    common = _common_variables(query)
    counts: Dict[str, int] = {}
    once = sorted(
        {a.relation for a in atoms}
        - {a.relation for a in atoms if sum(b.relation == a.relation for b in atoms) > 1}
    )
    relations = tuple(sorted({a.relation for a in atoms}))
    if use_statistics:
        counts = _relation_cardinalities(sharded, relations)
    estimates: Dict[str, float] = {}
    if once and counts:
        big = max(once, key=lambda name: counts.get(name, 0))
        small_volume = sum(counts[r] for r in relations if r != big)
        estimates["broadcast"] = counts.get(big, 0) + spec.num_shards * small_volume
    elif once:
        big = once[-1]
    else:
        big = None
    if common and counts:
        estimates["repartition"] = float(sum(counts[r] for r in relations))
    choice = _choose_join_strategy(common, big, estimates)
    if choice == "broadcast":
        table = sharded.union_core().table
        rid = table.relation(big)
        return ShardPlan(
            "broadcast",
            tuple(enumerate(sharded.broadcast_fragments(rid))),
            spec.num_shards,
            detail=(
                f"{big} stays shard-local; "
                f"{', '.join(r for r in relations if r != big) or 'nothing'} "
                "replicated to every fragment"
            ),
            cost_estimates=estimates,
        )
    if choice == "repartition":
        variable = common[0]
        table = sharded.union_core().table
        positions: Dict[int, List[int]] = {}
        for atom in atoms:
            rid = table.relation(atom.relation)
            for index, term in enumerate(atom.args):
                if term == variable:
                    positions.setdefault(rid, []).append(index)
        layout = {rid: tuple(sorted(set(p))) for rid, p in positions.items()}
        return ShardPlan(
            "repartition",
            tuple(enumerate(sharded.repartition_fragments(layout))),
            spec.num_shards,
            detail=(
                f"facts re-bucketed on join variable {variable.name} "
                f"across {len(layout)} relation(s)"
            ),
            cost_estimates=estimates,
        )
    return ShardPlan(
        "global",
        ((0, sharded.union_core()),),
        spec.num_shards,
        detail="no common join variable and no once-mentioned relation",
        cost_estimates=estimates,
    )


def _choose_join_strategy(
    common: Tuple[Variable, ...],
    big: Optional[str],
    estimates: Dict[str, float],
) -> str:
    """Pick among repartition/broadcast/global from what is available."""
    can_repartition = bool(common)
    can_broadcast = big is not None
    if can_repartition and can_broadcast:
        if "broadcast" in estimates and "repartition" in estimates:
            # Ties go to repartitioning: it never replicates a fact more
            # than its position count, broadcast replicates N-fold.
            return (
                "broadcast"
                if estimates["broadcast"] < estimates["repartition"]
                else "repartition"
            )
        return "repartition"
    if can_repartition:
        return "repartition"
    if can_broadcast:
        return "broadcast"
    return "global"


def explain_shards(query, sharded: ShardedDatabase) -> str:
    """The EXPLAIN rendering of a query's shard plan.

    The ``pruned=`` figure is the acceptance surface: a pruned point lookup
    reports how many shards were skipped without reading a fact.
    """
    plan = plan_shards(query, sharded)
    lines = [
        (
            f"shard plan: strategy={plan.strategy}"
            f"  shards={plan.shards_total}"
            f"  executed={plan.shards_executed}"
            f"  pruned={plan.shards_pruned}"
        )
    ]
    if plan.detail:
        lines.append(f"  {plan.detail}")
    for name, volume in sorted(plan.cost_estimates.items()):
        lines.append(f"  est volume {name}: {volume:.0f} facts")
    sizes = [len(facts) for _index, facts in plan.fragments]
    if sizes:
        lines.append(
            f"  fragment sizes: min={min(sizes)} max={max(sizes)} "
            f"total={sum(sizes)}"
        )
    return "\n".join(lines)
