"""The :class:`ShardedDatabase` facade: one database, many fact-set shards.

A sharded database wraps a boxed :class:`~repro.model.database.GlobalDatabase`
plus a :class:`~repro.shard.partition.PartitionSpec` and materializes, lazily
and at most once each:

* the **base shards** — the disjoint hash partition of the interned core;
* **broadcast fragments** — per big-relation: that relation's shard plus a
  full replica of everything else (the distributed hash-join layout for one
  large relation joined against small ones);
* **repartition fragments** — facts re-bucketed by the value at a *join
  variable's* positions, so co-grouped facts meet in one fragment even when
  the base partition key disagrees with the join key.

Every fragment is a plain :class:`~repro.core.factset.IFactSet`, so the plan
executor's per-fact-set caches (scan rows, join indexes, statistics) apply
to fragments exactly as they do to whole databases — a fragment reused
across queries pays its build cost once. :meth:`built_fragments` exposes
everything materialized so the service's ``RegistryDiff`` invalidation path
can retire a superseded snapshot's fragments from those caches.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.factset import IFactSet
from repro.exceptions import ModelError
from repro.model.database import GlobalDatabase
from repro.shard.partition import PartitionSpec, partition_facts, stable_bucket

#: Canonical cache key of one repartitioning request: per relation ID, the
#: sorted argument positions that must co-locate.
RepartitionKey = Tuple[Tuple[int, Tuple[int, ...]], ...]


class ShardedDatabase:
    """A partition-aware view over one immutable database."""

    def __init__(self, database: GlobalDatabase, spec: PartitionSpec):
        if not isinstance(spec, PartitionSpec):
            raise ModelError(
                f"spec must be a PartitionSpec, got {type(spec).__name__}"
            )
        self.database = database
        self.spec = spec
        self._lock = threading.Lock()
        self._shards: Optional[Tuple[IFactSet, ...]] = None
        self._broadcast: Dict[int, Tuple[IFactSet, ...]] = {}
        self._repartition: Dict[RepartitionKey, Tuple[IFactSet, ...]] = {}

    # -- basic shape -------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """How many shards the spec splits this database into."""
        return self.spec.num_shards

    def union_core(self) -> IFactSet:
        """The whole database as one interned fact set (the global store)."""
        return self.database.core()

    def shards(self) -> Tuple[IFactSet, ...]:
        """The base hash partition (built once, then cached)."""
        if self._shards is None:
            with self._lock:
                if self._shards is None:
                    self._shards = partition_facts(self.union_core(), self.spec)
        return self._shards

    def shard_sizes(self) -> Tuple[int, ...]:
        """Fact counts per base shard (forces the partition)."""
        return tuple(len(shard) for shard in self.shards())

    # -- join layouts ------------------------------------------------------------

    def broadcast_fragments(self, big_rid: int) -> Tuple[IFactSet, ...]:
        """Fragments for a broadcast join around relation *big_rid*.

        Fragment *b* holds the big relation's facts from base shard *b* plus
        **all** facts of every other relation. Correct whenever the query
        mentions the big relation in exactly one atom: each answer's
        derivation binds that atom to one big-relation fact, which lives in
        exactly one base shard, so the answer appears in exactly that
        fragment (and the union over fragments is complete; soundness is
        monotonicity — every fragment is a subset of the full store).
        """
        fragments = self._broadcast.get(big_rid)
        if fragments is not None:
            return fragments
        shards = self.shards()  # force outside the lock: it locks too
        with self._lock:
            fragments = self._broadcast.get(big_rid)
            if fragments is None:
                union = self.union_core()
                big = union.by_relation(big_rid)
                rest = union.ids() - big
                fragments = tuple(
                    IFactSet(
                        union.table,
                        (shard.ids() & big) | rest,
                    )
                    for shard in shards
                )
                self._broadcast[big_rid] = fragments
        return fragments

    def repartition_fragments(
        self, positions: Mapping[int, Tuple[int, ...]]
    ) -> Tuple[IFactSet, ...]:
        """Fragments re-bucketed on a join variable's value.

        *positions* maps relation IDs to the argument positions where the
        join variable occurs in the query's atoms over that relation. A fact
        of relation *r* is placed in the bucket of its value at **each**
        listed position (a self-join over two positions duplicates the fact
        into both buckets — the merge layer's union absorbs it). Facts of
        relations outside *positions* are dropped: the query never scans
        them, and shipping them would be pure replication cost.
        """
        key: RepartitionKey = tuple(
            sorted((rid, tuple(sorted(set(pos)))) for rid, pos in positions.items())
        )
        fragments = self._repartition.get(key)
        if fragments is not None:
            return fragments
        with self._lock:
            fragments = self._repartition.get(key)
            if fragments is None:
                fragments = self._build_repartition(dict(key))
                self._repartition[key] = fragments
        return fragments

    def _build_repartition(
        self, positions: Dict[int, Tuple[int, ...]]
    ) -> Tuple[IFactSet, ...]:
        union = self.union_core()
        table = union.table
        constant_value = table.constant_value
        num = self.spec.num_shards
        buckets: Tuple[set, ...] = tuple(set() for _ in range(num))
        for rid, place_at in positions.items():
            for fid in union.by_relation(rid):
                args = table.fact_args(fid)
                for position in place_at:
                    if position < len(args):
                        buckets[
                            stable_bucket(constant_value(args[position]), num)
                        ].add(fid)
        return tuple(
            IFactSet(table, frozenset(bucket)) for bucket in buckets  # boxed-ok: ints
        )

    # -- lifecycle ---------------------------------------------------------------

    def built_fragments(self) -> Tuple[IFactSet, ...]:
        """Every fact set this store has materialized so far.

        The invalidation hook: when a registry snapshot is retired, each of
        these may have plan-layer cache entries (data sources, statistics)
        worth discarding.
        """
        out: List[IFactSet] = []
        with self._lock:
            if self._shards is not None:
                out.extend(self._shards)
            for fragments in self._broadcast.values():
                out.extend(fragments)
            for fragments in self._repartition.values():
                out.extend(fragments)
        return tuple(out)

    def layout_counters(self) -> Dict[str, int]:
        """Materialization counters (for ``stats()`` surfaces)."""
        with self._lock:
            return {
                "shards": self.spec.num_shards,
                "base_built": 0 if self._shards is None else len(self._shards),
                "broadcast_layouts": len(self._broadcast),
                "repartition_layouts": len(self._repartition),
            }

    def __repr__(self) -> str:
        return (
            f"ShardedDatabase({len(self.database)} facts, "
            f"{self.spec.num_shards} shards)"
        )
