"""``repro.shard``: partitioned fact stores with scatter-gather execution.

The layer between the plan IR and the interned store (ROADMAP's sharding
axis). A database is hash-partitioned into per-relation shards keyed by a
chosen argument position (:mod:`repro.shard.partition`), wrapped in a
:class:`ShardedDatabase` facade (:mod:`repro.shard.store`); the partition
planner (:mod:`repro.shard.planner`) decides which fragments a query must
touch — pruning all but one shard when a pushed-down constant fixes the
partition key, choosing broadcast vs repartition for joins from the
statistics catalog's cardinalities — and the :class:`ShardExecutor`
(:mod:`repro.shard.executor`) scatters compiled-plan execution across the
fragments, serially or over PR 1's process pool, merging answers in one
canonical total order (:mod:`repro.shard.merge`).

The paper's per-source guarantee structure is what justifies the layer:
completeness and soundness metadata attach to *parts* of the data, so
reasoning about which partitions can affect an answer is semantically
grounded (cf. the mediated setting of Mendelzon & Mihaila §1.1).

Equivalence contract: for every conjunctive query and every partition spec,
sharded evaluation returns exactly the single-store plan answers (which in
turn equal the backtracking oracle) — property-tested over random queries,
partition keys, and shard counts including one.
"""

from repro.shard.executor import (
    ShardExecutor,
    clear_worker_stores,
    evaluate_fragment,
    evaluate_sharded,
    reset_shard_stats,
    shard_stats,
    worker_store_count,
)
from repro.shard.merge import (
    canonical_answer_key,
    canonical_order,
    merge_answer_sets,
    merge_ordered,
)
from repro.shard.partition import (
    MAX_PARTITIONS,
    PartitionSpec,
    bucket_of_fact,
    clear_partitions,
    partition_facts,
    stable_bucket,
)
from repro.shard.planner import ShardPlan, explain_shards, plan_shards
from repro.shard.store import ShardedDatabase

__all__ = [
    "MAX_PARTITIONS",
    "PartitionSpec",
    "ShardExecutor",
    "ShardPlan",
    "ShardedDatabase",
    "bucket_of_fact",
    "canonical_answer_key",
    "canonical_order",
    "clear_partitions",
    "clear_worker_stores",
    "evaluate_fragment",
    "evaluate_sharded",
    "explain_shards",
    "merge_answer_sets",
    "merge_ordered",
    "partition_facts",
    "plan_shards",
    "reset_shard_stats",
    "shard_stats",
    "stable_bucket",
    "worker_store_count",
]
