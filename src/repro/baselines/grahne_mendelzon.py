"""The Grahne–Mendelzon 0/1 special case, solved analytically.

Grahne & Mendelzon (1999) — which this paper generalizes — consider sources
that are fully *sound* (s = 1, c = 0), fully *complete* (c = 1, s = 0), or
*exact*. For identity views over one relation the possible worlds have a
closed-form characterization:

* every fact of a sound source is in every world (v ⊆ D);
* every world is contained in every complete source's extension (D ⊆ v);

hence, with L = ∪{v : sound} and U = ∩{v : complete} (U = the whole fact
space when no source is complete):

* consistent  ⇔  L ⊆ U;
* certain facts  = L;
* possible facts = U.

These analytical answers are the oracle for experiment E9: our general
machinery, run at bounds c, s ∈ {0, 1}, must coincide with them.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from repro.exceptions import SourceError
from repro.model.atoms import Atom
from repro.sources.collection import SourceCollection


def _classify(collection: SourceCollection) -> Tuple[list, list]:
    """(sound sources, complete sources); bounds must be 0/1."""
    relation = collection.identity_relation()
    if relation is None:
        raise SourceError("the 0/1 baseline requires identity views")
    sound, complete = [], []
    for source in collection:
        if source.soundness_bound not in (0, 1) or source.completeness_bound not in (0, 1):
            raise SourceError(
                f"source {source.name} has fractional bounds; the 0/1 "
                "baseline applies only to sound/complete/exact sources"
            )
        if source.soundness_bound == 1:
            sound.append(source)
        if source.completeness_bound == 1:
            complete.append(source)
    return sound, complete


def _global_extension(source, relation: str) -> FrozenSet[Atom]:
    return frozenset(Atom(relation, f.args) for f in source.extension)


def lower_bound_facts(collection: SourceCollection) -> FrozenSet[Atom]:
    """L = ∪ extensions of sound sources — facts forced into every world."""
    relation = collection.identity_relation()
    sound, _ = _classify(collection)
    out: FrozenSet[Atom] = frozenset()
    for source in sound:
        out |= _global_extension(source, relation)
    return out


def upper_bound_facts(
    collection: SourceCollection,
) -> Optional[FrozenSet[Atom]]:
    """U = ∩ extensions of complete sources; ``None`` when unconstrained."""
    relation = collection.identity_relation()
    _, complete = _classify(collection)
    if not complete:
        return None
    out = _global_extension(complete[0], relation)
    for source in complete[1:]:
        out &= _global_extension(source, relation)
    return out


def is_consistent_01(collection: SourceCollection) -> bool:
    """Closed-form consistency: L ⊆ U (vacuous without complete sources)."""
    lower = lower_bound_facts(collection)
    upper = upper_bound_facts(collection)
    return upper is None or lower <= upper


def certain_facts_01(collection: SourceCollection) -> FrozenSet[Atom]:
    """The certain base facts of the 0/1 collection (= L when consistent)."""
    if not is_consistent_01(collection):
        raise SourceError("inconsistent 0/1 collection has no semantics")
    return lower_bound_facts(collection)


def possible_facts_01(
    collection: SourceCollection, domain: Iterable
) -> FrozenSet[Atom]:
    """The possible base facts over a finite domain (= U, or the fact space)."""
    if not is_consistent_01(collection):
        raise SourceError("inconsistent 0/1 collection has no semantics")
    upper = upper_bound_facts(collection)
    if upper is not None:
        return upper
    relation = collection.identity_relation()
    from itertools import product
    from repro.model.terms import as_term

    constants = [as_term(c) for c in domain]
    arity = collection.sources[0].view.head.arity
    return frozenset(
        Atom(relation, combo) for combo in product(constants, repeat=arity)
    )
