"""Motro-style sound/complete answer validation.

Motro assumes a "real world" database exists and calls a multidatabase
answer *sound* when it is contained in the hypothetical real-world answer
and *complete* when it contains it. Our generators materialize the real
world, so these checks are executable — they ground experiment E9 and the
workload evaluations (is the certain answer always sound? is the possible
answer always complete?).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple, Union

from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.queries.conjunctive import ConjunctiveQuery
from repro.algebra.ast import AlgebraQuery

Query = Union[ConjunctiveQuery, AlgebraQuery]


def real_world_answer(query: Query, real_world: GlobalDatabase) -> FrozenSet:
    """The hypothetical answer computed over the real-world database."""
    if isinstance(query, ConjunctiveQuery):
        return query.apply(real_world)
    return query.evaluate(real_world)


def answer_is_sound(
    answer: Iterable, query: Query, real_world: GlobalDatabase
) -> bool:
    """Motro-soundness: the answer ⊆ the real-world answer."""
    return frozenset(answer) <= real_world_answer(query, real_world)


def answer_is_complete(
    answer: Iterable, query: Query, real_world: GlobalDatabase
) -> bool:
    """Motro-completeness: the answer ⊇ the real-world answer."""
    return frozenset(answer) >= real_world_answer(query, real_world)


def classify_answer(
    answer: Iterable, query: Query, real_world: GlobalDatabase
) -> Tuple[bool, bool]:
    """(sound?, complete?) of an assembled answer against the real world."""
    reference = real_world_answer(query, real_world)
    answer_set = frozenset(answer)
    return answer_set <= reference, answer_set >= reference
