"""Information-Manifold-style certain answers from sound views.

Related work (Kirk/Levy/Sagiv/Srivastava; Grahne & Mendelzon prove the
correspondence): for *sound* views, the Information Manifold algorithm
computes exactly the certain answer. The classical construction: every fact
of a sound source is a true view fact, so its view body holds in every
possible world under some witness — build a canonical database whose
existential positions carry labeled nulls, evaluate the query over it, and
keep the answers that mention no nulls.

In our partial-quality setting only sources declaring ``s = 1`` contribute
(a fact from a partially sound source is *individually* uncertain, so it can
never force an answer by itself). The result is therefore a sound
*lower bound* on the true certain answer Q_*(S): completeness constraints
can force additional certain facts that this view-based route cannot see —
tests and experiment E9 measure that gap.
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.terms import Constant, FreshConstantFactory
from repro.model.valuation import Substitution, match_atom
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.evaluation import evaluate
from repro.sources.collection import SourceCollection

NULL_PREFIX = "_null"


def canonical_database(collection: SourceCollection) -> GlobalDatabase:
    """Ground the bodies of all fully-sound sources, nulls for existentials.

    Each extension fact of each source with ``soundness_bound == 1`` is
    matched against its view head; unbound body variables become distinct
    labeled nulls (fresh constants with the ``_null`` prefix). View bodies
    with built-in atoms contribute only when the built-ins are fully ground
    after head matching and evaluate to true (otherwise the witness shape is
    unknown and the fact is skipped — keeping the construction sound).
    """
    taken = collection.all_constants()
    factory = FreshConstantFactory(taken=taken, prefix=NULL_PREFIX)
    facts: List[Atom] = []
    for source in collection:
        if source.soundness_bound != 1:
            continue
        view = source.view
        for view_fact in sorted(source.extension):
            theta = match_atom(view.head, view_fact)
            if theta is None:
                continue
            bound = theta.domain()
            nulls = {
                v: factory.fresh()
                for atom in view.body
                for v in atom.variables()
                if v not in bound
            }
            grounding = Substitution({**dict(theta.items()), **nulls})
            builtin_ok = True
            for builtin_atom in view.builtin_body():
                grounded = builtin_atom.substitute(theta)
                if not grounded.is_ground():
                    builtin_ok = False  # existential builtin: witness unknown
                    break
                if not view.builtins.check_atom(grounded):
                    builtin_ok = False  # provider's own claim is contradictory
                    break
            if not builtin_ok:
                continue
            facts.extend(
                atom.substitute(grounding) for atom in view.relational_body()
            )
    return GlobalDatabase(facts)


def _mentions_null(fact: Atom) -> bool:
    return any(
        isinstance(a, Constant)
        and isinstance(a.value, str)
        and a.value.startswith(NULL_PREFIX)
        for a in fact.args
    )


def certain_answer_im(
    query: ConjunctiveQuery, collection: SourceCollection
) -> FrozenSet[Atom]:
    """The Information-Manifold certain answer from sound views only."""
    canonical = canonical_database(collection)
    return frozenset(
        f for f in evaluate(query, canonical) if not _mentions_null(f)
    )
