"""Baselines this paper generalizes: Grahne–Mendelzon 0/1 case, Motro checks."""

from repro.baselines.grahne_mendelzon import (
    certain_facts_01,
    is_consistent_01,
    lower_bound_facts,
    possible_facts_01,
    upper_bound_facts,
)
from repro.baselines.information_manifold import (
    canonical_database,
    certain_answer_im,
)
from repro.baselines.motro import (
    answer_is_complete,
    answer_is_sound,
    classify_answer,
    real_world_answer,
)

__all__ = [
    "is_consistent_01",
    "certain_facts_01",
    "possible_facts_01",
    "lower_bound_facts",
    "upper_bound_facts",
    "canonical_database",
    "certain_answer_im",
    "answer_is_sound",
    "answer_is_complete",
    "classify_answer",
    "real_world_answer",
]
