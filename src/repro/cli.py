"""Command-line interface: ``python -m repro <command>``.

Commands operate on source-collection files in the :mod:`repro.io` format:

* ``check FILE [--workers N]`` — decide CONSISTENCY; print the verdict and
  a witness. ``--workers`` checks independent source groups in parallel.
* ``confidence FILE --domain a,b,c [--workers N] [--cache N] [--stats]`` —
  exact base-fact confidences (identity-view collections), ranked, computed
  by the parallel memoized engine.
* ``worlds FILE --domain a,b,c [--limit N]`` — enumerate possible worlds.
* ``audit FILE --world WORLDFILE`` — measured vs declared quality against a
  reference database.
* ``answer FILE --query 'ans(x) <- R(x)' --domain a,b,c [--explain]`` —
  certain and possible answers with per-tuple confidence; ``--explain``
  prints the compiled physical plan (``repro.plan``) first. ``--shards N``
  routes every world through scatter-gather execution (``repro.shard``)
  and adds the shard plan to ``--explain``. ``--cache-budget-mb MB`` caps
  the unified cache runtime's accounted bytes; ``--stats`` prints its
  per-cache tree.
* ``serve FILE --domain a,b,c [--requests N]`` — run the mediator *service*
  (``repro.service``) against an open-loop burst of confidence requests and
  report the observability snapshot; ``--json`` emits it machine-readable;
  ``--shards N`` answers query requests over a sharded certain database.
  ``--resilience`` (implied by ``--source-fault`` / ``--chaos``) enables the
  per-source availability layer (``repro.resilience``): circuit breakers,
  per-source timeouts, hedged probes, and semantically degraded answers;
  ``--chaos`` scripts deterministic per-source outages over the burst.

Exit status: 0 on success (and a consistent collection for ``check``),
1 for an inconsistent collection, 2 for usage/input errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.exceptions import ReproError
from repro.io.serialization import load_collection, load_database
from repro.queries.parser import parse_rule
from repro.confidence.answers import answer_query
from repro.confidence.engine import ConfidenceEngine
from repro.confidence.worlds import possible_worlds
from repro.consistency.checker import check_consistency
from repro.consistency.parallel import check_consistency_parallel


def _domain(value: str) -> List[str]:
    items = [v.strip() for v in value.split(",") if v.strip()]
    if not items:
        raise argparse.ArgumentTypeError("domain must be a comma-separated list")
    return items


def _add_engine_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the confidence engine (0/1 = serial)",
    )
    subparser.add_argument(
        "--cache",
        type=int,
        default=None,
        metavar="SIZE",
        help="memo capacity for block-counting results "
        "(default: shared process-wide cache; 0 disables caching)",
    )
    subparser.add_argument(
        "--stats",
        action="store_true",
        help="print engine instrumentation (stage times, cache hit rates), "
        "followed by the same data as one machine-readable JSON line",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query partially sound and complete data sources "
        "(Mendelzon & Mihaila, PODS 2001).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="decide CONSISTENCY")
    check.add_argument("file", help="source-collection file")
    check.add_argument(
        "--workers",
        type=int,
        default=0,
        help="check independent source groups in parallel (0/1 = serial)",
    )

    confidence = commands.add_parser(
        "confidence", help="exact base-fact confidences (identity views)"
    )
    confidence.add_argument("file")
    confidence.add_argument("--domain", type=_domain, required=True)
    _add_engine_flags(confidence)

    worlds = commands.add_parser("worlds", help="enumerate possible worlds")
    worlds.add_argument("file")
    worlds.add_argument("--domain", type=_domain, required=True)
    worlds.add_argument("--limit", type=int, default=20)

    audit = commands.add_parser(
        "audit", help="measured vs declared quality against a reference world"
    )
    audit.add_argument("file")
    audit.add_argument("--world", required=True, help="database file")

    answer = commands.add_parser(
        "answer", help="certain/possible answers with confidences"
    )
    answer.add_argument("file")
    answer.add_argument("--query", required=True, help="e.g. 'ans(x) <- R(x)'")
    answer.add_argument("--domain", type=_domain, required=True)
    answer.add_argument(
        "--explain", action="store_true",
        help="print the compiled physical plan before the answers",
    )
    answer.add_argument(
        "--explain-analyze", action="store_true",
        help="run the query measured over the possible worlds and print the "
        "annotated plan (cardinality estimates vs actuals) before the answers",
    )
    answer.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="hash-partition each world into N shards and answer via "
        "scatter-gather execution (repro.shard); with --explain the shard "
        "plan (strategy, pruned-shard count) is printed too (default 1)",
    )
    answer.add_argument(
        "--shard-workers", type=int, default=0,
        help="worker processes for shard fragments (0/1 = serial)",
    )
    answer.add_argument(
        "--cache-budget-mb", type=float, default=None, metavar="MB",
        help="global byte budget shared by every cache (memo, plans, data "
        "sources, statistics, shard stores); least-recently-used entries "
        "across all of them are evicted past it (default: unbounded)",
    )
    answer.add_argument(
        "--stats", action="store_true",
        help="print the unified cache-runtime stats tree (per-cache and "
        "global hits/misses/evictions/bytes) as one JSON line after the "
        "answers",
    )
    answer.add_argument(
        "--exclude-source", action="append", default=[], metavar="NAME",
        help="demote NAME's annotation to <c=0, s=0> before answering (the "
        "offline mirror of runtime degradation, repro.resilience.degrade); "
        "repeatable; answers certain only via the excluded source are "
        "reported as downgraded to possible",
    )

    consensus = commands.add_parser(
        "consensus", help="conflict analysis: trust, blame, repairs, relaxation"
    )
    consensus.add_argument("file")

    rewrite = commands.add_parser(
        "rewrite", help="answer a global-schema query using the views"
    )
    rewrite.add_argument("file")
    rewrite.add_argument("--query", required=True, help="e.g. 'ans(x) <- R(x, y)'")
    rewrite.add_argument(
        "--plans-only", action="store_true", help="print plans, skip execution"
    )
    rewrite.add_argument(
        "--explain", action="store_true",
        help="print each rewriting's compiled physical plan",
    )
    rewrite.add_argument(
        "--explain-analyze", action="store_true",
        help="execute each rewriting measured over the source extensions and "
        "print its annotated plan (cardinality estimates vs actuals)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the mediator service against an open-loop request burst",
    )
    serve.add_argument("file", help="source-collection file (identity views)")
    serve.add_argument("--domain", type=_domain, required=True)
    serve.add_argument(
        "--requests", type=int, default=100,
        help="number of confidence requests in the burst (default 100)",
    )
    serve.add_argument(
        "--batch", type=int, default=16,
        help="micro-batch size; 1 = per-request dispatch (default 16)",
    )
    serve.add_argument(
        "--queue", type=int, default=256,
        help="admission queue bound; overflow is rejected (default 256)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline in milliseconds (default: none)",
    )
    serve.add_argument(
        "--arrival-ms", type=float, default=0.0,
        help="open-loop inter-arrival gap in milliseconds (default 0)",
    )
    serve.add_argument(
        "--churn", type=int, default=0, metavar="N",
        help="update a source every N requests (exercises versioned "
        "snapshots and memo invalidation; default 0 = no churn)",
    )
    serve.add_argument(
        "--fault-latency-ms", type=float, default=0.0,
        help="injected source-read latency in milliseconds",
    )
    serve.add_argument(
        "--fault-error-rate", type=float, default=0.0,
        help="injected transient source-read failure probability",
    )
    serve.add_argument(
        "--fault-stale-rate", type=float, default=0.0,
        help="probability a source read serves a superseded snapshot",
    )
    serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="answer query requests over an N-shard partition of each "
        "snapshot's certain database (default 1 = single store)",
    )
    serve.add_argument(
        "--shard-workers", type=int, default=0,
        help="worker processes for shard fragments (0/1 = serial)",
    )
    serve.add_argument("--seed", type=int, default=0, help="fault RNG seed")
    serve.add_argument(
        "--resilience", action="store_true",
        help="enable the per-source availability layer (repro.resilience): "
        "circuit breakers, per-source timeouts, hedged probes, degraded "
        "answers; implied by --source-fault and --chaos",
    )
    serve.add_argument(
        "--source-fault", action="append", default=[], metavar="NAME:MODE",
        help="per-source fault active from the start, e.g. S1:crash, "
        "S2:error:0.8, S1:slow:20, S2:partition; repeatable, implies "
        "--resilience",
    )
    serve.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic outage schedule over the burst, e.g. "
        "'0:S1:crash, 400:S1:ok' (AT_MS:SOURCE:MODE[:ARG], comma-"
        "separated); implies --resilience",
    )
    serve.add_argument(
        "--source-timeout-ms", type=float, default=50.0,
        help="per-source probe timeout in milliseconds (default 50)",
    )
    serve.add_argument(
        "--hedge-ms", type=float, default=0.0,
        help="launch a hedged duplicate probe after this many milliseconds "
        "without an answer (0 disables hedging; default 0)",
    )
    serve.add_argument(
        "--breaker-threshold", type=float, default=0.5,
        help="EWMA error-rate at which a source's breaker opens (default 0.5)",
    )
    serve.add_argument(
        "--breaker-cooldown-ms", type=float, default=250.0,
        help="milliseconds an open breaker waits before half-opening "
        "(default 250)",
    )
    serve.add_argument(
        "--backoff-jitter", type=float, default=0.0,
        help="seeded jitter fraction on retry backoff delays (default 0)",
    )
    serve.add_argument(
        "--cache-budget-mb", type=float, default=None, metavar="MB",
        help="global byte budget shared by every cache the service uses; "
        "the stats snapshot's cache section reports accounted bytes "
        "against it (default: unbounded)",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="print only the JSON observability snapshot (for scrapers/CI)",
    )

    return parser


def cmd_check(args) -> int:
    collection = load_collection(args.file)
    if args.workers and args.workers > 1:
        result = check_consistency_parallel(collection, workers=args.workers)
    else:
        result = check_consistency(collection)
    status = "CONSISTENT" if result.consistent else (
        "INCONSISTENT" if result.decisive else "UNDECIDED (search truncated)"
    )
    print(f"{status}  (method: {result.method}, "
          f"combinations tried: {result.combinations_tried})")
    if result.witness is not None:
        print("witness possible world:")
        for f in sorted(result.witness):
            print(f"  {f}")
    return 0 if result.consistent else 1


def cmd_confidence(args) -> int:
    collection = load_collection(args.file)
    with ConfidenceEngine(
        collection,
        args.domain,
        workers=args.workers,
        cache_size=args.cache,
    ) as engine:
        confidences = engine.confidences()
        for f, conf in sorted(
            confidences.items(), key=lambda kv: (-kv[1], str(kv[0]))
        ):
            print(f"{float(conf):8.4f}  {conf!s:>10}  {f}")
        if args.stats:
            from repro.cache import cache_registry

            print()
            print(engine.stats.render())
            payload = engine.stats.to_dict()
            payload["cache_runtime"] = cache_registry().stats()
            print(json.dumps(payload, sort_keys=True))
    return 0


def cmd_worlds(args) -> int:
    collection = load_collection(args.file)
    count = 0
    for world in possible_worlds(collection, args.domain):
        count += 1
        if count <= args.limit:
            shown = ", ".join(str(f) for f in sorted(world))
            print(f"world {count}: {{{shown}}}")
    if count > args.limit:
        print(f"... and {count - args.limit} more")
    print(f"total possible worlds: {count}")
    return 0 if count else 1


def cmd_audit(args) -> int:
    collection = load_collection(args.file)
    world = load_database(args.world)
    ok = True
    for source in collection:
        measured_c = source.completeness(world)
        measured_s = source.soundness(world)
        c_ok = measured_c >= source.completeness_bound
        s_ok = measured_s >= source.soundness_bound
        ok = ok and c_ok and s_ok
        print(
            f"{source.name}: completeness {measured_c} "
            f"(declared >= {source.completeness_bound}) "
            f"[{'ok' if c_ok else 'VIOLATED'}], "
            f"soundness {measured_s} "
            f"(declared >= {source.soundness_bound}) "
            f"[{'ok' if s_ok else 'VIOLATED'}]"
        )
    print("world admitted" if ok else "world NOT admitted")
    return 0 if ok else 1


def cmd_answer(args) -> int:
    from repro.exceptions import SourceError

    collection = load_collection(args.file)
    query = parse_rule(args.query)
    if args.shards < 1:
        raise SourceError("--shards must be >= 1")
    excluded = tuple(sorted(set(args.exclude_source)))
    full_collection = collection
    if excluded:
        from repro.resilience import demote

        names = {source.name for source in collection}
        unknown = [name for name in excluded if name not in names]
        if unknown:
            raise SourceError(
                f"--exclude-source: unknown source(s) {', '.join(unknown)}"
            )
        collection = demote(collection, excluded)
    if args.cache_budget_mb is not None:
        from repro.cache import set_cache_budget_mb

        if args.cache_budget_mb < 0:
            raise SourceError("--cache-budget-mb must be >= 0")
        set_cache_budget_mb(args.cache_budget_mb)
    spec = None
    if args.shards > 1:
        from repro.shard import PartitionSpec

        spec = PartitionSpec(args.shards)
    if args.explain:
        from repro.plan import explain

        print(explain(query))
        if spec is not None:
            from repro.model.database import GlobalDatabase
            from repro.shard import ShardedDatabase, explain_shards

            sample = next(
                iter(possible_worlds(collection, args.domain)),
                GlobalDatabase(()),
            )
            print()
            print(explain_shards(query, ShardedDatabase(sample, spec)))
        print()
    if args.explain_analyze:
        from repro.plan import explain_analyze_worlds

        print(
            explain_analyze_worlds(
                query, possible_worlds(collection, args.domain)
            )
        )
        print()
    apply = None
    pool = None
    if spec is not None:
        from repro.confidence.engine.executors import make_executor
        from repro.shard import evaluate_sharded

        pool = make_executor(args.shard_workers, mode="process")

        def apply(q, world, _spec=spec, _pool=pool):
            return evaluate_sharded(
                q, world, _spec, workers=args.shard_workers, pool=_pool
            )

    try:
        result = answer_query(query, collection, args.domain, apply=apply)
        full_certain = (
            answer_query(query, full_collection, args.domain, apply=apply).certain
            if excluded else None
        )
    finally:
        if pool is not None:
            pool.close()
    if excluded:
        print(f"excluded sources (annotations demoted): {', '.join(excluded)}")
    print(f"possible worlds: {result.world_count}")
    print("certain answer:")
    for f in sorted(result.certain):
        print(f"  {f}")
    if full_certain is not None:
        from repro.resilience import downgraded

        print("downgraded to possible (certain only with excluded sources):")
        for f in downgraded(full_certain, result.certain):
            print(f"  {f}")
    print("possible answer (ranked by confidence):")
    for f, conf in result.ranked():
        print(f"  {float(conf):8.4f}  {f}")
    if args.stats:
        from repro.cache import cache_registry

        print(json.dumps({"cache": cache_registry().stats()}, sort_keys=True))
    return 0


def cmd_consensus(args) -> int:
    from repro.consensus import (
        blame_scores,
        consensus_trust_scores,
        minimal_inconsistent_subcollections,
        repair_via_hitting_set,
        trust_scores,
        uniform_relaxation,
    )

    collection = load_collection(args.file)
    conflicts = minimal_inconsistent_subcollections(collection)
    if not conflicts:
        print("collection is consistent: every source fully trusted")
        return 0
    print(f"minimal conflicts ({len(conflicts)}):")
    for conflict in conflicts:
        print(f"  {{{', '.join(sorted(conflict))}}}")
    trust = trust_scores(collection)
    consensus = consensus_trust_scores(collection)
    blame = blame_scores(collection)
    print("\nper-source scores (consensus trust / unweighted trust / blame):")
    for source in collection:
        name = source.name
        print(
            f"  {name}: {float(consensus[name]):.3f} / "
            f"{float(trust[name]):.3f} / {float(blame[name]):.3f}"
        )
    repair, _ = repair_via_hitting_set(collection)
    print(f"\nminimum repair (drop): {{{', '.join(sorted(repair))}}}")
    discount, _ = uniform_relaxation(collection)
    print(f"uniform bound discount restoring consistency: ~{float(discount):.3f}")
    return 1


def cmd_rewrite(args) -> int:
    from repro.rewriting import execute_all, find_rewritings

    collection = load_collection(args.file)
    query = parse_rule(args.query)
    views = [source.view for source in collection]
    plans = find_rewritings(query, views)
    if not plans:
        print("no sound rewriting exists over these views")
        return 1
    print(f"{len(plans)} verified sound plan(s):")
    for plan in plans:
        tag = "EQUIVALENT" if plan.equivalent else "sound"
        print(f"  [{tag}] {plan.plan}")
    if args.explain:
        from repro.plan import explain

        for plan in plans:
            print()
            print(explain(plan.plan))
    if args.explain_analyze:
        from repro.plan import explain_analyze
        from repro.rewriting.executor import source_database

        database = source_database(collection)
        for plan in plans:
            print()
            print(explain_analyze(plan.plan, database))
    if args.plans_only:
        return 0
    print("\nanswers from the sources (ranked by support):")
    for answer in execute_all(plans, collection):
        print(
            f"  {float(answer.support):6.3f}  {answer.fact}  "
            f"via {', '.join(sorted(answer.sources))}"
        )
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.exceptions import SourceError
    from repro.service import (
        FaultPolicy,
        MediatorService,
        RequestStatus,
        SchedulerConfig,
    )

    collection = load_collection(args.file)
    if collection.identity_relation() is None:
        raise SourceError(
            "serve requires an identity-view collection over one relation "
            "(the confidence engine's setting)"
        )
    if args.requests < 1:
        raise SourceError("--requests must be >= 1")
    policy = None
    if (
        args.fault_latency_ms > 0
        or args.fault_error_rate > 0
        or args.fault_stale_rate > 0
    ):
        policy = FaultPolicy(
            latency=args.fault_latency_ms / 1000.0,
            error_rate=args.fault_error_rate,
            stale_rate=args.fault_stale_rate,
            seed=args.seed,
        )
    if args.shards < 1:
        raise SourceError("--shards must be >= 1")
    if args.cache_budget_mb is not None:
        from repro.cache import set_cache_budget_mb

        if args.cache_budget_mb < 0:
            raise SourceError("--cache-budget-mb must be >= 0")
        set_cache_budget_mb(args.cache_budget_mb)
    resilient = bool(args.resilience or args.source_fault or args.chaos)
    gateway = None
    chaos_runner = None
    resilience_config = None
    if resilient:
        from repro.resilience import ChaosRunner, ChaosSchedule, ResilienceConfig
        from repro.service import PerSourceGateway

        if policy is not None:
            raise SourceError(
                "--fault-* flags drive the whole-read injector; with "
                "--resilience use per-source faults (--source-fault, --chaos)"
            )
        gateway = PerSourceGateway(seed=args.seed)
        # --source-fault entries are chaos events at t=0; one schedule
        # (and one deterministic runner) drives both.
        spec_parts = [f"0:{entry}" for entry in args.source_fault]
        if args.chaos:
            spec_parts.append(args.chaos)
        schedule = ChaosSchedule.parse(",".join(spec_parts), seed=args.seed)
        chaos_runner = ChaosRunner(gateway, schedule)
        chaos_runner.advance(0.0)
        resilience_config = ResilienceConfig(
            source_timeout=args.source_timeout_ms / 1000.0,
            hedge_delay=args.hedge_ms / 1000.0,
            error_threshold=args.breaker_threshold,
            cooldown=args.breaker_cooldown_ms / 1000.0,
        )
    config = SchedulerConfig(
        max_queue=args.queue,
        max_batch=args.batch,
        shards=args.shards,
        shard_workers=args.shard_workers,
        backoff_jitter=args.backoff_jitter,
        backoff_seed=args.seed,
        resilience=resilience_config,
    )
    service = MediatorService(
        collection, args.domain, config=config, fault_policy=policy,
        gateway=gateway,
    )
    timeout = None if args.deadline_ms is None else args.deadline_ms / 1000.0
    gap = args.arrival_ms / 1000.0
    # With sharding on, every fifth request also carries the identity query,
    # so the burst exercises the scatter-gather query path end to end.
    shard_query = None
    if args.shards > 1:
        relation = collection.identity_relation()
        arity = len(next(iter(collection)).view.body[0].args)
        variables = ", ".join(f"x{i}" for i in range(arity))
        shard_query = parse_rule(f"ans({variables}) <- {relation}({variables})")

    async def burst():
        facts = service.registry.snapshot().covered_facts()
        loop = asyncio.get_running_loop()
        start = loop.time()
        async with service:
            futures = []
            for i in range(args.requests):
                if chaos_runner is not None:
                    chaos_runner.advance(loop.time() - start)
                if args.churn and i and i % args.churn == 0:
                    source = service.registry.snapshot().collection[0]
                    service.update_source(source.with_bounds(
                        soundness_bound=source.soundness_bound
                    ))
                wanted = [facts[i % len(facts)], facts[(i + 1) % len(facts)]]
                query = shard_query if shard_query and i % 5 == 0 else None
                futures.append(
                    await service.submit(wanted, timeout=timeout, query=query)
                )
                if gap > 0:
                    await asyncio.sleep(gap)
            responses = [await f for f in futures]
        return responses

    responses = asyncio.run(burst())
    snapshot = service.stats()
    if args.json:
        print(json.dumps(snapshot, sort_keys=True))
        return 0
    by_status = {status: 0 for status in RequestStatus}
    for response in responses:
        by_status[response.status] += 1
    print(
        f"served {len(responses)} requests against "
        f"{len(collection)} sources (registry v"
        f"{snapshot['registry']['version']})"
    )
    for status, count in by_status.items():
        if count:
            print(f"  {status.value:>8}: {count}")
    degraded = sum(1 for response in responses if response.degraded)
    if degraded:
        excluded = sorted(
            {name for r in responses for name in r.excluded_sources}
        )
        print(f"  degraded: {degraded} (sources excluded: "
              f"{', '.join(excluded)})")
    histograms = snapshot["metrics"]["histograms"]
    latency = histograms.get("latency", {})
    if latency.get("count"):
        print(
            "latency ms: "
            f"p50 {1000 * (latency['p50'] or 0):.2f}  "
            f"p95 {1000 * (latency['p95'] or 0):.2f}  "
            f"p99 {1000 * (latency['p99'] or 0):.2f}"
        )
    batch = histograms.get("batch_size", {})
    if batch.get("count"):
        print(
            f"engine calls: {snapshot['metrics']['counters']['engine_calls']}"
            f"  mean batch {batch['mean']:.2f}  max batch {batch['max']:.0f}"
        )
    print(f"source reads: {snapshot['gateway']['reads']}")
    print(json.dumps(snapshot, sort_keys=True))
    return 0


_COMMANDS = {  # adhoc-cache-ok: static command dispatch table, not a cache
    "check": cmd_check,
    "confidence": cmd_confidence,
    "worlds": cmd_worlds,
    "audit": cmd_audit,
    "answer": cmd_answer,
    "consensus": cmd_consensus,
    "rewrite": cmd_rewrite,
    "serve": cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
