"""Boxed reference implementations kept for benchmarks and differential tests.

The interned fast paths replaced these object-level algorithms inside
:class:`~repro.confidence.blocks.IdentityInstance` and the consistency
search. The originals are preserved here verbatim-in-spirit so that

* the E17 benchmark (``benchmarks/bench_e17_core.py``) can measure the
  boxed representation against the interned one on identical workloads, and
* the test suite can assert, differentially, that the interned paths
  compute exactly the same decompositions and verdicts.

Nothing in the library proper calls this module.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Tuple

from repro.exceptions import SourceError
from repro.model.atoms import Atom
from repro.model.terms import as_term


class BoxedDecomposition(NamedTuple):
    """The signature-block decomposition, in boxed (object) form."""

    relation: str
    blocks: Tuple[Tuple[Tuple[int, ...], Tuple[Atom, ...]], ...]
    anonymous_size: int
    extensions: Tuple[FrozenSet[Atom], ...]


def boxed_signature_decomposition(collection, domain) -> BoxedDecomposition:
    """The pre-interning block decomposition of an identity collection.

    This is the original object-level algorithm: extensions are frozensets
    of renamed :class:`Atom` objects and membership signatures are computed
    by hashing each covered fact against each extension frozenset. The
    interned :class:`~repro.confidence.blocks.IdentityInstance` produces an
    identical decomposition (same block signatures, sizes and facts) via
    integer fact IDs and bitmask accumulation.
    """
    relation = collection.identity_relation()
    if relation is None:
        raise SourceError(
            "boxed_signature_decomposition requires identity views over one "
            "global relation"
        )
    arity = collection.sources[0].view.head.arity
    domain_terms = tuple(as_term(c) for c in dict.fromkeys(domain))
    domain_set = set(domain_terms)
    fact_space_size = len(domain_terms) ** arity

    extensions: List[FrozenSet[Atom]] = []
    for source in collection:
        global_ext = frozenset(
            Atom(relation, f.args) for f in source.extension
        )
        for f in global_ext:
            missing = [a for a in f.args if a not in domain_set]
            if missing:
                raise SourceError(
                    f"extension fact {f} uses constants outside the domain: "
                    f"{missing}"
                )
        extensions.append(global_ext)

    by_signature: Dict[FrozenSet[int], List[Atom]] = {}
    covered = frozenset().union(*extensions) if extensions else frozenset()
    for f in covered:
        signature = frozenset(
            i for i, ext in enumerate(extensions) if f in ext
        )
        by_signature.setdefault(signature, []).append(f)
    blocks = tuple(
        (tuple(sorted(sig)), tuple(sorted(facts)))
        for sig, facts in sorted(
            by_signature.items(), key=lambda kv: (sorted(kv[0]), len(kv[1]))
        )
    )
    covered_size = sum(len(facts) for _, facts in blocks)
    return BoxedDecomposition(
        relation=relation,
        blocks=blocks,
        anonymous_size=fact_space_size - covered_size,
        extensions=tuple(extensions),
    )
