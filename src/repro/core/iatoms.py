"""Interned atoms: ``(relation id, term ids...)`` with a cached hash.

An :class:`IAtom` is the ID-space mirror of :class:`repro.model.atoms.Atom`:
the relation is a relation ID and each argument is a term ID — negative for
variables, non-negative for constants (the sign convention of
:mod:`repro.core.symbols`). Instances are normally obtained hash-consed from
:meth:`~repro.core.symbols.SymbolTable.iatom`, so equal patterns are the
*same* object and equality short-circuits on identity.
"""

from __future__ import annotations

from typing import Iterator, Tuple


class IAtom:
    """An immutable ID-space atom with precomputed hash and ground flag."""

    __slots__ = ("relation", "args", "ground", "_hash")

    def __init__(self, relation: int, args: Tuple[int, ...]):
        self.relation = relation
        self.args = args
        ground = True
        for tid in args:
            if tid < 0:
                ground = False
                break
        self.ground = ground
        self._hash = hash((relation, args))

    @property
    def arity(self) -> int:
        """Number of argument terms."""
        return len(self.args)

    def variable_ids(self) -> Tuple[int, ...]:
        """The (negative) variable IDs occurring in the atom, in order."""
        return tuple(tid for tid in self.args if tid < 0)

    def constant_ids(self) -> Tuple[int, ...]:
        """The constant IDs occurring in the atom, in order."""
        return tuple(tid for tid in self.args if tid >= 0)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, IAtom)
            and self.relation == other.relation
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[int]:
        return iter(self.args)

    def __repr__(self) -> str:
        inner = ",".join(str(t) for t in self.args)
        return f"IAtom(r{self.relation}; {inner})"
