"""Immutable fact-ID sets: sorted integer backbone + hash index.

An :class:`IFactSet` is the ID-space mirror of
:class:`repro.model.database.GlobalDatabase`: a finite set of interned fact
IDs. Internally it keeps the IDs twice — a sorted integer array (compact,
deterministic iteration, cheap pickling of the *values* not the objects) and
a frozenset (O(1) membership, C-speed union/intersection/difference). The
per-relation index is built lazily from the owning
:class:`~repro.core.symbols.SymbolTable` on first relational access.
"""

from __future__ import annotations

import weakref
from array import array
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.core.symbols import SymbolTable


class Derivation:
    """How one fact set was derived from another: ``parent ± delta``.

    The statistics catalog (:mod:`repro.plan.statistics`) uses this hint to
    maintain per-relation statistics *incrementally*: when the parent's
    statistics are already cached and the delta is small relative to the
    derived set, the catalog applies per-fact count updates instead of
    rescanning the whole extension. The parent is held through a weak
    reference so the hint never extends any fact set's lifetime.
    """

    __slots__ = ("_parent", "added", "removed")

    def __init__(
        self,
        parent: "IFactSet",
        added: FrozenSet[int],
        removed: FrozenSet[int],
    ):
        self._parent = weakref.ref(parent)
        self.added = added
        self.removed = removed

    def parent(self) -> Optional["IFactSet"]:
        """The base fact set, or ``None`` once it has been collected."""
        return self._parent()

    def delta_size(self) -> int:
        """Total number of fact IDs the derivation touched."""
        return len(self.added) + len(self.removed)


class IFactSet:
    """An immutable set of fact IDs over one symbol table."""

    __slots__ = (
        "table", "_ids", "_sorted", "_by_relation", "_grouped", "_hash",
        "_derivation", "__weakref__",
    )

    def __init__(
        self,
        table: SymbolTable,
        ids: Iterable[int] = (),
        derivation: Optional[Derivation] = None,
    ):
        self.table = table
        self._ids: FrozenSet[int] = (
            ids if isinstance(ids, frozenset) else frozenset(ids)  # boxed-ok: ints
        )
        self._sorted: Optional[array] = None
        self._by_relation: Optional[Dict[int, FrozenSet[int]]] = None
        self._grouped: Optional[Dict[int, Tuple[Tuple[int, ...], ...]]] = None
        self._hash = hash(self._ids)
        self._derivation = derivation

    # -- set interface ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, fid: int) -> bool:
        return fid in self._ids

    def __iter__(self) -> Iterator[int]:
        return iter(self.sorted_ids())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IFactSet) and self._ids == other._ids

    def __hash__(self) -> int:
        return self._hash

    def __le__(self, other: "IFactSet") -> bool:
        return self._ids <= other._ids

    def __lt__(self, other: "IFactSet") -> bool:
        return self._ids < other._ids

    def ids(self) -> FrozenSet[int]:
        """The underlying frozenset of fact IDs."""
        return self._ids

    def sorted_ids(self) -> array:
        """The IDs as a sorted integer array (built once, then cached)."""
        if self._sorted is None:
            self._sorted = array("q", sorted(self._ids))
        return self._sorted

    # -- algebra ---------------------------------------------------------------

    def union(self, other: "IFactSet") -> "IFactSet":
        """The set union, hinted as ``self + (other - self)``."""
        merged = self._ids | other._ids
        hint = Derivation(self, merged - self._ids, frozenset())  # boxed-ok: ints
        return IFactSet(self.table, merged, derivation=hint)

    def intersection(self, other: "IFactSet") -> "IFactSet":
        """The set intersection, hinted as ``self - (self - other)``."""
        kept = self._ids & other._ids
        hint = Derivation(self, frozenset(), self._ids - kept)  # boxed-ok: ints
        return IFactSet(self.table, kept, derivation=hint)

    def difference(self, other: "IFactSet") -> "IFactSet":
        """The set difference, hinted as a removal from ``self``."""
        kept = self._ids - other._ids
        hint = Derivation(self, frozenset(), self._ids - kept)  # boxed-ok: ints
        return IFactSet(self.table, kept, derivation=hint)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def with_ids(self, extra: Iterable[int]) -> "IFactSet":
        """This set plus *extra* fact IDs (derivation-hinted)."""
        merged = self._ids | set(extra)
        hint = Derivation(self, merged - self._ids, frozenset())  # boxed-ok: ints
        return IFactSet(self.table, merged, derivation=hint)

    def without_ids(self, removed: Iterable[int]) -> "IFactSet":
        """This set minus *removed* fact IDs (derivation-hinted)."""
        kept = self._ids - set(removed)
        hint = Derivation(self, frozenset(), self._ids - kept)  # boxed-ok: ints
        return IFactSet(self.table, kept, derivation=hint)

    def derivation(self) -> Optional[Derivation]:
        """The derivation hint this set was built with, if any."""
        return self._derivation

    # -- relational access -----------------------------------------------------

    def by_relation(self, rid: int) -> FrozenSet[int]:
        """Fact IDs over relation *rid* (lazy per-relation index)."""
        if self._by_relation is None:
            index: Dict[int, set] = {}
            fact_relation = self.table.fact_relation
            for fid in self._ids:
                index.setdefault(fact_relation(fid), set()).add(fid)
            self._by_relation = {
                r: frozenset(fids) for r, fids in index.items()  # boxed-ok: ints
            }
        return self._by_relation.get(rid, frozenset())  # boxed-ok: ints

    def grouped(self) -> Dict[int, Tuple[Tuple[int, ...], ...]]:
        """Relation ID → tuple of argument-ID tuples (lazy, cached).

        The shape :meth:`repro.core.views.CoreView.apply_grouped` consumes;
        converting once per fact set lets every source's ``satisfied_by``
        share the same decoded view of the candidate.
        """
        if self._grouped is None:
            index: Dict[int, list] = {}
            fact_tuple = self.table.fact_tuple
            for fid in self._ids:
                t = fact_tuple(fid)
                index.setdefault(t[0], []).append(t[1:])
            self._grouped = {r: tuple(args) for r, args in index.items()}
        return self._grouped

    def relations(self) -> Tuple[int, ...]:
        """Relation IDs with a non-empty extension, sorted."""
        self.by_relation(-1)  # force the index
        return tuple(sorted(self._by_relation))

    def __repr__(self) -> str:
        return f"IFactSet({len(self._ids)} facts)"
