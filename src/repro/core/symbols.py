"""The symbol table: dense integer IDs for every symbol the hot paths touch.

Interning invariants (documented in ``docs/core.md`` and relied on by the
adapters and the fast paths):

* **Determinism within a process** — the ID of a symbol is fixed the moment
  it is first interned and never changes; re-interning returns the same ID.
* **Namespaces** — constants, relations, facts and atoms each get their own
  dense ``0, 1, 2, ...`` sequence. Variables share the *term* ID space with
  constants via the sign: variable IDs are negative (``-1, -2, ...``),
  constant IDs non-negative, so ``tid < 0`` discriminates in one comparison.
* **Equality mirrors the boxed model** — two constants intern to the same ID
  exactly when the boxed :class:`~repro.model.terms.Constant` objects are
  equal (Python ``==`` on the wrapped values), and likewise for variables
  (by name), relations (by name), and facts (by relation + argument IDs).
* **IDs are process-local** — they are *not* stable across processes. Data
  shipped to worker processes goes through value-level encodings (the
  kernel's wire format) or boxed objects, never raw IDs.
* **Rollback needs exclusivity** — :meth:`SymbolTable.rollback` truncates
  every namespace back to a :meth:`SymbolTable.snapshot`. That is only sound
  when no other thread interned in between, so transactional writers (the
  service registry) hold :meth:`SymbolTable.exclusive` around the whole
  mutate-or-rollback window; the interning lock is reentrant, so the
  writer's own interning proceeds normally.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.exceptions import ModelError
from repro.core.iatoms import IAtom


class SymbolSnapshot(NamedTuple):
    """A point-in-time size vector of a table's namespaces."""

    constants: int
    variables: int
    relations: int
    facts: int
    atoms: int


class SymbolTable:
    """Thread-safe interning of constants, variables, relations and facts.

    >>> table = SymbolTable()
    >>> table.constant("a") == table.constant("a")
    True
    >>> table.variable("x") < 0  # variables are negative term IDs
    True
    >>> rid = table.relation("R")
    >>> fid = table.fact(rid, (table.constant("a"),))
    >>> table.fact_args(fid) == (table.constant("a"),)
    True
    """

    __slots__ = (
        "_lock",
        "_constants",
        "_constant_values",
        "_variables",
        "_variable_names",
        "_relations",
        "_relation_names",
        "_facts",
        "_fact_tuples",
        "_atoms",
        "_atom_keys",
        "_rollback_listeners",
    )

    def __init__(self):
        self._lock = threading.RLock()
        self._rollback_listeners: List[Any] = []
        self._constants: Dict[Any, int] = {}
        self._constant_values: List[Any] = []
        self._variables: Dict[str, int] = {}
        self._variable_names: List[str] = []
        self._relations: Dict[str, int] = {}
        self._relation_names: List[str] = []
        self._facts: Dict[Tuple[int, ...], int] = {}
        self._fact_tuples: List[Tuple[int, ...]] = []
        self._atoms: Dict[Tuple, IAtom] = {}
        self._atom_keys: List[Tuple] = []

    # -- interning -------------------------------------------------------------

    def constant(self, value: Any) -> int:
        """Intern a constant value; returns its non-negative term ID."""
        try:
            cid = self._constants.get(value)
        except TypeError as exc:
            raise ModelError(
                f"constant value must be hashable: {value!r}"
            ) from exc
        if cid is not None:
            return cid
        with self._lock:
            cid = self._constants.get(value)
            if cid is None:
                cid = len(self._constant_values)
                self._constants[value] = cid
                self._constant_values.append(value)
            return cid

    def variable(self, name: str) -> int:
        """Intern a variable name; returns its negative term ID."""
        vid = self._variables.get(name)
        if vid is not None:
            return vid
        if not isinstance(name, str) or not name:
            raise ModelError(
                f"variable name must be a non-empty string: {name!r}"
            )
        with self._lock:
            vid = self._variables.get(name)
            if vid is None:
                vid = -(len(self._variable_names) + 1)
                self._variables[name] = vid
                self._variable_names.append(name)
            return vid

    def relation(self, name: str) -> int:
        """Intern a relation name; returns its relation ID."""
        rid = self._relations.get(name)
        if rid is not None:
            return rid
        if not isinstance(name, str) or not name:
            raise ModelError(
                f"relation name must be a non-empty string: {name!r}"
            )
        with self._lock:
            rid = self._relations.get(name)
            if rid is None:
                rid = len(self._relation_names)
                self._relations[name] = rid
                self._relation_names.append(name)
            return rid

    def fact(self, rid: int, arg_ids: Iterable[int]) -> int:
        """Intern a ground fact ``(rid, cid...)``; returns its fact ID."""
        key = (rid, *arg_ids)
        fid = self._facts.get(key)
        if fid is not None:
            return fid
        for tid in key[1:]:
            if tid < 0:
                raise ModelError(
                    "facts may only contain constant IDs (got a variable)"
                )
        with self._lock:
            fid = self._facts.get(key)
            if fid is None:
                fid = len(self._fact_tuples)
                self._facts[key] = fid
                self._fact_tuples.append(key)
            return fid

    def iatom(self, rid: int, arg_ids: Iterable[int]) -> IAtom:
        """Hash-cons an atom pattern; equal patterns share one object."""
        args = tuple(arg_ids)
        key = (rid, args)
        atom = self._atoms.get(key)
        if atom is not None:
            return atom
        with self._lock:
            atom = self._atoms.get(key)
            if atom is None:
                atom = IAtom(rid, args)
                self._atoms[key] = atom
                self._atom_keys.append(key)
            return atom

    # -- non-growing lookups ---------------------------------------------------

    def find_constant(self, value: Any) -> Optional[int]:
        """The ID of *value* if already interned; ``None`` otherwise."""
        try:
            return self._constants.get(value)
        except TypeError:
            return None

    def find_relation(self, name: str) -> Optional[int]:
        """The relation ID for *name*, or ``None`` if never interned."""
        return self._relations.get(name)

    def find_fact(self, rid: int, arg_ids: Iterable[int]) -> Optional[int]:
        """The fact ID for ``(rid, args...)``, or ``None`` if absent."""
        return self._facts.get((rid, *arg_ids))

    # -- reverse lookups -------------------------------------------------------

    def constant_value(self, cid: int) -> Any:
        """The boxed value behind a constant ID."""
        return self._constant_values[cid]

    def variable_name(self, vid: int) -> str:
        """The name behind a (negative) variable ID."""
        return self._variable_names[-vid - 1]

    def relation_name(self, rid: int) -> str:
        """The name behind a relation ID."""
        return self._relation_names[rid]

    def fact_tuple(self, fid: int) -> Tuple[int, ...]:
        """``(rid, cid...)`` behind a fact ID."""
        return self._fact_tuples[fid]

    def fact_relation(self, fid: int) -> int:
        """The relation ID of a fact ID."""
        return self._fact_tuples[fid][0]

    def fact_args(self, fid: int) -> Tuple[int, ...]:
        """The argument constant IDs of a fact ID."""
        return self._fact_tuples[fid][1:]

    # -- transactions ----------------------------------------------------------

    def exclusive(self):
        """The interning lock, as a context manager.

        Hold it around a mutate-or-rollback window: no other thread can
        intern while it is held, which is exactly the condition under which
        :meth:`rollback` is sound. Reentrant, so the holder's own interning
        works as usual.
        """
        return self._lock

    def snapshot(self) -> SymbolSnapshot:
        """The current size of every namespace (for :meth:`rollback`)."""
        with self._lock:
            return SymbolSnapshot(
                constants=len(self._constant_values),
                variables=len(self._variable_names),
                relations=len(self._relation_names),
                facts=len(self._fact_tuples),
                atoms=len(self._atom_keys),
            )

    def rollback(self, snap: SymbolSnapshot) -> int:
        """Forget every symbol interned after *snap*; returns how many.

        Only sound while :meth:`exclusive` has been held since the snapshot
        was taken (otherwise another thread's IDs would be destroyed). IDs
        handed out after the snapshot become invalid; the caller must drop
        every structure that captured them (the registry clears the caches
        of the snapshots involved in an aborted mutation).
        """
        with self._lock:
            removed = 0
            while len(self._constant_values) > snap.constants:
                del self._constants[self._constant_values.pop()]
                removed += 1
            while len(self._variable_names) > snap.variables:
                del self._variables[self._variable_names.pop()]
                removed += 1
            while len(self._relation_names) > snap.relations:
                del self._relations[self._relation_names.pop()]
                removed += 1
            while len(self._fact_tuples) > snap.facts:
                del self._facts[self._fact_tuples.pop()]
                removed += 1
            while len(self._atom_keys) > snap.atoms:
                del self._atoms[self._atom_keys.pop()]
                removed += 1
            listeners = tuple(self._rollback_listeners) if removed else ()
        for listener in listeners:
            listener(removed)
        return removed

    def on_rollback(self, listener) -> None:
        """Register ``listener(removed)`` to run after destructive rollbacks.

        Called only when a rollback actually truncated symbols (``removed``
        is positive), outside the interning lock's critical work but still
        inside the caller's :meth:`exclusive` window when one is held. The
        cache runtime uses this to flush ID-sensitive caches whose entries
        may capture since-invalidated IDs.
        """
        with self._lock:
            if listener not in self._rollback_listeners:
                self._rollback_listeners.append(listener)

    # -- introspection ---------------------------------------------------------

    def counts(self) -> SymbolSnapshot:
        """Alias of :meth:`snapshot` under an introspection-flavoured name."""
        return self.snapshot()

    def __repr__(self) -> str:
        c = self.counts()
        return (
            f"SymbolTable(constants={c.constants}, variables={c.variables}, "
            f"relations={c.relations}, facts={c.facts}, atoms={c.atoms})"
        )


_GLOBAL = SymbolTable()


def global_table() -> SymbolTable:
    """The process-wide symbol table shared by every fast path."""
    return _GLOBAL
