"""`repro.core` — the interned substrate under the hot paths.

Every layer that sits on a hot path (block decomposition, tableau
embedding, the CONSISTENCY search, engine memo keys) ultimately compares
and hashes the same handful of symbols — constants, variables, relation
names, ground facts — over and over. The boxed model objects
(:class:`~repro.model.terms.Constant`, :class:`~repro.model.atoms.Atom`,
frozensets of them) pay tuple hashing and object equality on every one of
those comparisons. This package interns each distinct symbol once into a
dense integer ID and lets the hot paths speak integers natively:

* :class:`SymbolTable` — process-wide interning of constants, variables,
  relation names, ground facts, and hash-consed :class:`IAtom` patterns,
  with explicit :meth:`~SymbolTable.snapshot` / :meth:`~SymbolTable.rollback`
  for transactional producers (the service registry).
* :class:`IAtom` — an atom as ``(relation id, term ids...)`` with a cached
  hash; negative term IDs are variables, non-negative IDs constants.
* :class:`IFactSet` — an immutable set of fact IDs backed by a sorted
  integer array plus a hash index: O(1) membership, C-speed set algebra.
* :mod:`repro.core.adapters` — the lossless boundary: ``to_core``/
  ``from_core`` for terms, atoms, databases, tableaux, views, sources and
  collections. The boxed API stays the public surface; the adapters are how
  it reaches the interned fast paths underneath.
* :mod:`repro.core.views` — ID-level conjunctive views and the
  soundness/completeness ``admits`` predicate over :class:`IFactSet`.
* :mod:`repro.core.baseline` — the boxed reference implementations kept
  for differential tests and the E17 boxed-vs-interned benchmark.

See ``docs/core.md`` for the representation, the interning invariants, and
the adapter boundary contract.
"""

from repro.core.symbols import (
    SymbolSnapshot,
    SymbolTable,
    global_table,
)
from repro.core.iatoms import IAtom
from repro.core.factset import Derivation, IFactSet
from repro.core.adapters import (
    atom_of_fact,
    fact_of_atom,
    from_core_atom,
    from_core_collection,
    from_core_database,
    from_core_source,
    from_core_term,
    from_core_view,
    to_core_atom,
    to_core_collection,
    to_core_database,
    to_core_source,
    to_core_term,
    to_core_view,
)
from repro.core.views import CoreCollection, CoreSource, CoreView

__all__ = [
    "SymbolSnapshot",
    "SymbolTable",
    "global_table",
    "Derivation",
    "IAtom",
    "IFactSet",
    "atom_of_fact",
    "fact_of_atom",
    "from_core_atom",
    "from_core_collection",
    "from_core_database",
    "from_core_source",
    "from_core_term",
    "from_core_view",
    "to_core_atom",
    "to_core_collection",
    "to_core_database",
    "to_core_source",
    "to_core_term",
    "to_core_view",
    "CoreCollection",
    "CoreSource",
    "CoreView",
]
