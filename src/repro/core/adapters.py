"""The lossless boundary between boxed model objects and interned IDs.

Every ``to_core_*`` / ``from_core_*`` pair round-trips exactly:
``from_core(to_core(x)) == x`` for terms, atoms, databases, views, sources
and collections (property-tested in
``tests/property/test_core_roundtrip.py``). The boxed API stays the public
surface of the library; these adapters are the *only* way model objects
cross into the ID-space fast paths, which keeps the interning invariants in
one reviewable place.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.exceptions import SourceError
from repro.core.factset import IFactSet
from repro.core.iatoms import IAtom
from repro.core.symbols import SymbolTable, global_table


# -- terms ---------------------------------------------------------------------

def to_core_term(table: SymbolTable, term) -> int:
    """Intern a boxed :class:`Constant`/:class:`Variable` to a term ID."""
    from repro.model.terms import Constant

    if isinstance(term, Constant):
        return table.constant(term.value)
    return table.variable(term.name)


def from_core_term(table: SymbolTable, tid: int):
    """The boxed term behind a term ID."""
    from repro.model.terms import Constant, Variable

    if tid < 0:
        return Variable(table.variable_name(tid))
    return Constant(table.constant_value(tid))


# -- atoms and facts -----------------------------------------------------------

def to_core_atom(table: SymbolTable, atom) -> IAtom:
    """Intern a boxed :class:`Atom` to a hash-consed :class:`IAtom`."""
    rid = table.relation(atom.relation)
    return table.iatom(rid, tuple(to_core_term(table, a) for a in atom.args))


def from_core_atom(table: SymbolTable, iatom: IAtom):
    """The boxed :class:`Atom` behind an :class:`IAtom`."""
    from repro.model.atoms import Atom

    return Atom(
        table.relation_name(iatom.relation),
        tuple(from_core_term(table, tid) for tid in iatom.args),
    )


def fact_of_atom(table: SymbolTable, atom) -> int:
    """Intern a ground boxed atom straight to a fact ID."""
    rid = table.relation(atom.relation)
    return table.fact(rid, (table.constant(a.value) for a in atom.args))


def atom_of_fact(table: SymbolTable, fid: int):
    """The boxed ground :class:`Atom` behind a fact ID."""
    from repro.model.atoms import Atom
    from repro.model.terms import Constant

    rid, *cids = table.fact_tuple(fid)
    return Atom(
        table.relation_name(rid),
        tuple(Constant(table.constant_value(c)) for c in cids),
    )


# -- databases -----------------------------------------------------------------

def to_core_database(table: SymbolTable, database) -> IFactSet:
    """Intern a :class:`GlobalDatabase` to an :class:`IFactSet`."""
    return IFactSet(
        table, {fact_of_atom(table, f) for f in database.facts()}
    )


def from_core_database(table: SymbolTable, facts: IFactSet):
    """The boxed :class:`GlobalDatabase` behind an :class:`IFactSet`."""
    from repro.model.database import GlobalDatabase

    return GlobalDatabase(atom_of_fact(table, fid) for fid in facts.ids())


def database_of_grouped(table: SymbolTable, grouped):
    """The boxed :class:`GlobalDatabase` behind a grouped candidate.

    *grouped* maps relation IDs to argument-ID tuples (the shape produced by
    :func:`repro.tableaux.core.ground_atoms_grouped`). Used to materialize
    consistency witnesses — a cold path taken at most once per search.
    """
    from repro.model.atoms import Atom
    from repro.model.database import GlobalDatabase
    from repro.model.terms import Constant

    atoms = []
    for rid, arg_tuples in grouped.items():
        name = table.relation_name(rid)
        for args in arg_tuples:
            atoms.append(
                Atom(name, tuple(Constant(table.constant_value(c)) for c in args))
            )
    return GlobalDatabase(atoms)


# -- views, sources, collections -----------------------------------------------

def to_core_view(table: SymbolTable, view):
    """Intern a builtin-free :class:`ConjunctiveQuery` to a :class:`CoreView`.

    Raises :class:`~repro.exceptions.SourceError` when the view's body
    mentions built-in predicates — those stay on the boxed path.
    """
    from repro.core.views import CoreView

    if view.builtin_body():
        raise SourceError(
            f"view {view} uses built-ins; the interned fast path only "
            "supports relational bodies"
        )
    return CoreView(
        to_core_atom(table, view.head),
        tuple(to_core_atom(table, b) for b in view.body),
    )


def from_core_view(table: SymbolTable, core_view):
    """The boxed :class:`ConjunctiveQuery` behind a :class:`CoreView`."""
    from repro.queries.conjunctive import ConjunctiveQuery

    return ConjunctiveQuery(
        from_core_atom(table, core_view.head),
        tuple(from_core_atom(table, b) for b in core_view.body),
    )


def to_core_source(table: SymbolTable, source):
    """Intern a :class:`SourceDescriptor` to a :class:`CoreSource`."""
    from repro.core.views import CoreSource

    extension = frozenset(
        tuple(table.constant(a.value) for a in f.args)
        for f in source.extension
    )
    return CoreSource(
        source.name,
        to_core_view(table, source.view),
        extension,
        source.completeness_bound,
        source.soundness_bound,
    )


def from_core_source(table: SymbolTable, core_source):
    """The boxed :class:`SourceDescriptor` behind a :class:`CoreSource`."""
    from repro.model.atoms import Atom
    from repro.model.terms import Constant
    from repro.sources.descriptor import SourceDescriptor

    view = from_core_view(table, core_source.view)
    local = view.head.relation
    extension = [
        Atom(local, tuple(Constant(table.constant_value(c)) for c in args))
        for args in core_source.extension
    ]
    return SourceDescriptor(
        view,
        extension,
        core_source.completeness_bound,
        core_source.soundness_bound,
        name=core_source.name,
    )


def to_core_collection(table: SymbolTable, collection):
    """Intern a :class:`SourceCollection` to a :class:`CoreCollection`."""
    from repro.core.views import CoreCollection

    return CoreCollection(
        table, [to_core_source(table, s) for s in collection]
    )


def from_core_collection(table: SymbolTable, core_collection):
    """The boxed :class:`SourceCollection` behind a :class:`CoreCollection`."""
    from repro.sources.collection import SourceCollection

    return SourceCollection(
        from_core_source(table, s) for s in core_collection
    )
