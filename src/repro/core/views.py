"""ID-level conjunctive views and the poss(S) predicate over IFactSets.

The CONSISTENCY search tests thousands of candidate databases against every
source's declared bounds. In the boxed model each test evaluates the view
(:meth:`repro.queries.conjunctive.ConjunctiveQuery.apply`) and intersects
frozensets of :class:`~repro.model.atoms.Atom`; here the same semantics run
over integers: bodies are :class:`~repro.core.iatoms.IAtom` patterns,
candidate databases are :class:`~repro.core.factset.IFactSet`, and the
intended content φ(D) is a set of head-argument ID tuples.

Built-in predicates are *not* supported at this level — the boundary
(:func:`repro.core.adapters.to_core_view`) refuses views with builtin body
atoms, and callers fall back to the boxed path (the consistency checker
already rejects builtins before reaching the core search).

The soundness/completeness arithmetic mirrors
:mod:`repro.sources.measures` exactly, including the edge conventions
(``φ(D) = ∅`` ⇒ completeness 1; ``v = ∅`` ⇒ soundness 1), so
``CoreCollection.admits`` agrees with the boxed
:meth:`repro.sources.collection.SourceCollection.admits` on every builtin-free
collection — asserted differentially in ``tests/core/``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.iatoms import IAtom
from repro.core.factset import IFactSet
from repro.core.symbols import SymbolTable

#: A candidate database in grouped form: relation ID → argument-ID tuples.
#: The quotient search grounds straight into this shape, so a candidate
#: never touches the symbol table at all (no per-candidate interning).
GroupedFacts = Mapping[int, "Sequence[Tuple[int, ...]]"]

_EMPTY: Tuple[Tuple[int, ...], ...] = ()


def _order_body(body: Sequence[IAtom]) -> Tuple[IAtom, ...]:
    """Greedy join order: fewest unbound variables first, then smaller arity."""
    remaining = list(body)
    bound: Set[int] = set()
    ordered: List[IAtom] = []
    while remaining:
        best = min(
            remaining,
            key=lambda a: (
                sum(1 for t in a.args if t < 0 and t not in bound),
                a.arity,
            ),
        )
        remaining.remove(best)
        ordered.append(best)
        bound.update(t for t in best.args if t < 0)
    return tuple(ordered)


class CoreView:
    """A builtin-free conjunctive view in ID space: ``head ← body``."""

    __slots__ = ("head", "body", "_ordered")

    def __init__(self, head: IAtom, body: Sequence[IAtom]):
        self.head = head
        self.body: Tuple[IAtom, ...] = tuple(body)
        self._ordered = _order_body(self.body)

    def apply(self, facts: IFactSet) -> Set[Tuple[int, ...]]:
        """``φ(D)`` as a set of head-argument constant-ID tuples."""
        return self.apply_grouped(facts.grouped())

    def apply_grouped(self, grouped: GroupedFacts) -> Set[Tuple[int, ...]]:
        """``φ(D)`` over a grouped candidate (relation ID → arg tuples)."""
        out: Set[Tuple[int, ...]] = set()
        ordered = self._ordered
        head_args = self.head.args
        n = len(ordered)

        def extend(index: int, binding: Dict[int, int]) -> None:
            if index == n:
                out.add(
                    tuple(
                        binding[t] if t < 0 else t for t in head_args
                    )
                )
                return
            pattern = ordered[index].args
            for args in grouped.get(ordered[index].relation, _EMPTY):
                local: Optional[Dict[int, int]] = binding
                added: List[int] = []
                for p, c in zip(pattern, args):
                    if p >= 0:
                        if p != c:
                            local = None
                            break
                    else:
                        seen = local.get(p)
                        if seen is None:
                            local[p] = c
                            added.append(p)
                        elif seen != c:
                            local = None
                            break
                if local is not None:
                    extend(index + 1, local)
                for p in added:
                    del binding[p]

        extend(0, {})
        return out

    def __repr__(self) -> str:
        return f"CoreView({self.head!r} <- {list(self.body)!r})"


class CoreSource:
    """⟨φ, v, c, s⟩ in ID space; the extension is a set of head ID tuples."""

    __slots__ = (
        "name",
        "view",
        "extension",
        "completeness_bound",
        "soundness_bound",
        "_c_num",
        "_c_den",
        "_s_num",
        "_s_den",
        "_ext_len",
    )

    def __init__(
        self,
        name: str,
        view: CoreView,
        extension: FrozenSet[Tuple[int, ...]],
        completeness_bound: Fraction,
        soundness_bound: Fraction,
    ):
        self.name = name
        self.view = view
        self.extension = extension
        self.completeness_bound = completeness_bound
        self.soundness_bound = soundness_bound
        # Bounds as integer pairs: the satisfied_by hot loop compares by
        # cross-multiplication, never constructing a Fraction per candidate.
        self._c_num = completeness_bound.numerator
        self._c_den = completeness_bound.denominator
        self._s_num = soundness_bound.numerator
        self._s_den = soundness_bound.denominator
        self._ext_len = len(extension)

    def completeness(self, facts: IFactSet) -> Fraction:
        """``c_D(S) = |v ∩ φ(D)| / |φ(D)|`` (Definition 2.1 conventions)."""
        intended = self.view.apply(facts)
        if not intended:
            return Fraction(1)
        return Fraction(len(self.extension & intended), len(intended))

    def soundness(self, facts: IFactSet) -> Fraction:
        """``s_D(S) = |v ∩ φ(D)| / |v|`` (Definition 2.2 conventions)."""
        if not self.extension:
            return Fraction(1)
        intended = self.view.apply(facts)
        return Fraction(len(self.extension & intended), len(self.extension))

    def satisfied_by(self, facts: IFactSet) -> bool:
        """Both declared bounds hold against *facts* (one φ(D) evaluation)."""
        return self.satisfied_by_grouped(facts.grouped())

    def satisfied_by_grouped(self, grouped: GroupedFacts) -> bool:
        """The same predicate over a grouped candidate, Fraction-free:
        ``overlap/|φ(D)| >= num/den`` is tested as
        ``overlap * den >= num * |φ(D)|``.
        """
        intended = self.view.apply_grouped(grouped)
        overlap = len(self.extension & intended)
        if intended and overlap * self._c_den < self._c_num * len(intended):
            return False
        if self._ext_len and overlap * self._s_den < self._s_num * self._ext_len:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"CoreSource({self.name!r}, |v|={len(self.extension)}, "
            f"c>={self.completeness_bound}, s>={self.soundness_bound})"
        )


class CoreCollection:
    """An ordered tuple of core sources with the poss(S) predicate."""

    __slots__ = ("table", "sources", "_eval_order")

    def __init__(self, table: SymbolTable, sources: Sequence[CoreSource]):
        self.table = table
        self.sources: Tuple[CoreSource, ...] = tuple(sources)
        # admits() is a conjunction, so evaluation order is free: test the
        # cheapest views (fewest body atoms) first to fail fast.
        self._eval_order: Tuple[CoreSource, ...] = tuple(
            source
            for _, source in sorted(
                enumerate(self.sources),
                key=lambda pair: (len(pair[1].view.body), pair[0]),
            )
        )

    def __len__(self) -> int:
        return len(self.sources)

    def __iter__(self):
        return iter(self.sources)

    def admits(self, facts: IFactSet) -> bool:
        """``D ∈ poss(S)`` over the interned representation."""
        return self.admits_grouped(facts.grouped())

    def admits_grouped(self, grouped: GroupedFacts) -> bool:
        """``D ∈ poss(S)`` over a grouped candidate (the search hot path)."""
        for source in self._eval_order:
            if not source.satisfied_by_grouped(grouped):
                return False
        return True

    def __repr__(self) -> str:
        inner = ", ".join(s.name for s in self.sources)
        return f"CoreCollection([{inner}])"
