"""Source collections S = {S_1, ..., S_n} (Section 3).

A collection aggregates source descriptors, exposes the global schema
``sch(S)`` (relation names occurring in the view definitions), the Lemma 3.1
search-space bound, and the defining predicate of ``poss(S)``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import SourceError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.schema import GlobalSchema
from repro.model.terms import Constant
from repro.sources.descriptor import SourceDescriptor


class SourceCollection:
    """An ordered, immutable collection of source descriptors.

    >>> from repro.queries import identity_view
    >>> from repro.model import fact
    >>> col = SourceCollection([
    ...     SourceDescriptor(identity_view("V1", "R", 1),
    ...                      [fact("V1", "a")], "1/2", "1/2"),
    ... ])
    >>> len(col)
    1
    """

    __slots__ = ("sources", "_core")

    def __init__(self, sources: Iterable[SourceDescriptor]):
        self.sources: Tuple[SourceDescriptor, ...] = tuple(sources)
        self._core = None
        names = [s.name for s in self.sources]
        if len(set(names)) != len(names):
            duplicated = sorted({n for n in names if names.count(n) > 1})
            raise SourceError(f"duplicate source names: {', '.join(duplicated)}")

    def __len__(self) -> int:
        return len(self.sources)

    def __iter__(self) -> Iterator[SourceDescriptor]:
        return iter(self.sources)

    def __getitem__(self, index: int) -> SourceDescriptor:
        return self.sources[index]

    def by_name(self, name: str) -> SourceDescriptor:
        """Look a source up by name."""
        for s in self.sources:
            if s.name == name:
                return s
        raise SourceError(f"no source named {name!r}")

    # -- interned core ----------------------------------------------------------

    def core(self):
        """The interned :class:`~repro.core.views.CoreCollection` for this
        collection (builtin-free views only).

        Computed once against the process-wide symbol table and cached —
        the collection is immutable, so repeated consistency checks share
        one interning pass. Raises
        :class:`~repro.exceptions.SourceError` when a view mentions
        built-ins. The cache never crosses process boundaries (term IDs
        are process-local), so it is dropped on pickling.
        """
        if self._core is None:
            from repro.core.adapters import to_core_collection
            from repro.core.symbols import global_table

            self._core = to_core_collection(global_table(), self)
        return self._core

    def __getstate__(self):
        return (self.sources,)

    def __setstate__(self, state):
        self.sources = state[0]
        self._core = None

    # -- schema & domain --------------------------------------------------------

    def schema(self) -> GlobalSchema:
        """``sch(S)``: global relation names occurring in the view bodies."""
        schema = GlobalSchema()
        for s in self.sources:
            for atom in s.view.relational_body():
                schema.add(atom.relation, atom.arity)
        return schema

    def extension_constants(self) -> Set[Constant]:
        """All constants occurring in view extensions."""
        out: Set[Constant] = set()
        for s in self.sources:
            for f in s.extension:
                out.update(f.args)
        return out

    def view_constants(self) -> Set[Constant]:
        """All constants occurring in view definitions."""
        out: Set[Constant] = set()
        for s in self.sources:
            out |= s.view.constants()
        return out

    def all_constants(self) -> Set[Constant]:
        """Constants from both extensions and view definitions."""
        return self.extension_constants() | self.view_constants()

    # -- paper quantities ---------------------------------------------------------

    def total_extension_size(self) -> int:
        """``p = Σ |v_i|``."""
        return sum(s.size() for s in self.sources)

    def max_body_size(self) -> int:
        """``m = max_i |body(φ_i)|`` (0 for an empty collection)."""
        return max((s.view.body_size() for s in self.sources), default=0)

    def lemma31_size_bound(self) -> int:
        """Lemma 3.1: a consistent collection has a possible database with at
        most ``max_i |body(φ_i)| · Σ |v_i|`` facts."""
        return self.max_body_size() * self.total_extension_size()

    def lemma31_constant_bound(self) -> int:
        """``m · p · k``: enough constants for the Theorem 3.2 NP witness."""
        return self.lemma31_size_bound() * max(
            self.schema().max_arity(),
            max((s.view.head.arity for s in self.sources), default=0),
        )

    # -- the poss(S) predicate ----------------------------------------------------

    def admits(self, database: GlobalDatabase) -> bool:
        """``D ∈ poss(S)``: every source's declared bounds hold w.r.t. D."""
        return all(s.satisfied_by(database) for s in self.sources)

    def violations(self, database: GlobalDatabase) -> List[str]:
        """Human-readable list of bound violations of *database* (empty when
        the database is possible). Useful in tests and audits."""
        problems = []
        for s in self.sources:
            c = s.completeness(database)
            if c < s.completeness_bound:
                problems.append(
                    f"{s.name}: completeness {c} < declared {s.completeness_bound}"
                )
            snd = s.soundness(database)
            if snd < s.soundness_bound:
                problems.append(
                    f"{s.name}: soundness {snd} < declared {s.soundness_bound}"
                )
        return problems

    # -- structure ---------------------------------------------------------------

    def all_identity(self) -> bool:
        """True when every view is an identity view (§5.1 special case)."""
        return all(s.is_identity() for s in self.sources)

    def identity_relation(self) -> Optional[str]:
        """When all views are identities over one global relation, its name.

        Returns ``None`` if views differ or are not identities — the §5.1
        algorithms require this to be non-None.
        """
        if not self.sources or not self.all_identity():
            return None
        relations = {s.view.body[0].relation for s in self.sources}
        if len(relations) != 1:
            return None
        arities = {s.view.body[0].arity for s in self.sources}
        if len(arities) != 1:
            return None
        return relations.pop()

    def extended(self, *extra: SourceDescriptor) -> "SourceCollection":
        """A new collection with additional sources appended."""
        return SourceCollection(self.sources + tuple(extra))

    def __repr__(self) -> str:
        inner = ", ".join(s.name for s in self.sources)
        return f"SourceCollection([{inner}])"
