"""Source model (Sections 2.2–2.3): descriptors, collections, measures."""

from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor, as_bound
from repro.sources.measures import (
    completeness,
    completeness_of_extension,
    is_complete,
    is_exact,
    is_sound,
    precision,
    recall,
    soundness,
    soundness_of_extension,
)
from repro.sources.quality import (
    clopper_pearson_lower,
    completeness_from_fd,
    estimate_completeness,
    estimate_soundness,
    intended_size_from_fd,
    required_sample_size,
)

__all__ = [
    "SourceDescriptor",
    "SourceCollection",
    "as_bound",
    "completeness",
    "soundness",
    "completeness_of_extension",
    "soundness_of_extension",
    "is_sound",
    "is_complete",
    "is_exact",
    "recall",
    "precision",
    "clopper_pearson_lower",
    "estimate_soundness",
    "estimate_completeness",
    "required_sample_size",
    "intended_size_from_fd",
    "completeness_from_fd",
]
