"""Completeness and soundness measures (Definitions 2.1 and 2.2).

Measures are exact rationals (:class:`fractions.Fraction`), not floats: the
consistency checker compares them against declared lower bounds, and float
rounding at the boundary (e.g. 1/3 vs declared 0.3333333333333333) would make
the decision procedure unreliable.

Edge conventions (the paper leaves |φ(D)| = 0 and |v| = 0 implicit):

* completeness with ``φ(D) = ∅`` is 1 — an empty intended content is fully
  covered by anything;
* soundness with ``v = ∅`` is 1 — an empty extension contains no wrong facts.

These are the unique conventions under which "sound ⇔ s = 1" and
"complete ⇔ c = 1" (Section 2.2's qualitative notions) hold in all cases.
"""

from __future__ import annotations

from fractions import Fraction
from typing import FrozenSet, Iterable, Set

from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.queries.conjunctive import ConjunctiveQuery


def completeness_of_extension(
    extension: Iterable[Atom], intended: Iterable[Atom]
) -> Fraction:
    """``|v ∩ φ(D)| / |φ(D)|`` given the materialized sets (Definition 2.1)."""
    v = frozenset(extension)
    phi = frozenset(intended)
    if not phi:
        return Fraction(1)
    return Fraction(len(v & phi), len(phi))


def soundness_of_extension(
    extension: Iterable[Atom], intended: Iterable[Atom]
) -> Fraction:
    """``|v ∩ φ(D)| / |v|`` given the materialized sets (Definition 2.2)."""
    v = frozenset(extension)
    phi = frozenset(intended)
    if not v:
        return Fraction(1)
    return Fraction(len(v & phi), len(v))


def completeness(
    view: ConjunctiveQuery, extension: Iterable[Atom], database: GlobalDatabase
) -> Fraction:
    """``c_D(S)`` for a source with view *view* and extension *extension*."""
    return completeness_of_extension(extension, view.apply(database))


def soundness(
    view: ConjunctiveQuery, extension: Iterable[Atom], database: GlobalDatabase
) -> Fraction:
    """``s_D(S)`` for a source with view *view* and extension *extension*."""
    return soundness_of_extension(extension, view.apply(database))


def is_sound(
    view: ConjunctiveQuery, extension: Iterable[Atom], database: GlobalDatabase
) -> bool:
    """Qualitative soundness: ``v ⊆ φ(D)`` (Section 2.2)."""
    return frozenset(extension) <= view.apply(database)


def is_complete(
    view: ConjunctiveQuery, extension: Iterable[Atom], database: GlobalDatabase
) -> bool:
    """Qualitative completeness: ``v ⊇ φ(D)`` (Section 2.2)."""
    return frozenset(extension) >= view.apply(database)


def is_exact(
    view: ConjunctiveQuery, extension: Iterable[Atom], database: GlobalDatabase
) -> bool:
    """Both sound and complete: ``v = φ(D)``."""
    return frozenset(extension) == view.apply(database)


def recall(returned: Iterable, correct: Iterable) -> Fraction:
    """Information-retrieval recall; identical in form to completeness.

    The paper (Section 2.2) notes recall ↔ completeness, precision ↔
    soundness; these aliases make that correspondence executable.
    """
    return completeness_of_extension(returned, correct)


def precision(returned: Iterable, correct: Iterable) -> Fraction:
    """Information-retrieval precision; identical in form to soundness."""
    return soundness_of_extension(returned, correct)
