"""Source descriptors ⟨φ, v, c, s⟩ (Section 2.3).

A data source is described by a view definition φ (its *intended* content),
a view extension v (its *actual* content), and lower bounds c, s ∈ [0, 1] on
its completeness and soundness. Bounds are stored as exact
:class:`fractions.Fraction` values.
"""

from __future__ import annotations

from fractions import Fraction
from math import ceil
from numbers import Rational, Real
from typing import FrozenSet, Iterable, Union

from repro.exceptions import ArityError, BoundError, SourceError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.queries.conjunctive import ConjunctiveQuery
from repro.sources import measures

BoundLike = Union[int, float, str, Fraction]


def as_bound(value: BoundLike) -> Fraction:
    """Coerce *value* to an exact Fraction in [0, 1].

    Accepts ints, Fractions, strings like ``"1/3"`` or ``"0.5"``, and floats.
    Floats are converted via ``Fraction(str(value))`` so that the human
    intent of ``0.1`` is one-tenth, not the binary double nearest to it.
    """
    if isinstance(value, Fraction):
        bound = value
    elif isinstance(value, bool):
        raise BoundError(f"bound must be a number in [0, 1], got {value!r}")
    elif isinstance(value, int):
        bound = Fraction(value)
    elif isinstance(value, float):
        bound = Fraction(str(value))
    elif isinstance(value, str):
        try:
            bound = Fraction(value)
        except (ValueError, ZeroDivisionError) as exc:
            raise BoundError(f"cannot parse bound {value!r}") from exc
    elif isinstance(value, Rational):
        bound = Fraction(value.numerator, value.denominator)
    else:
        raise BoundError(f"bound must be a number in [0, 1], got {value!r}")
    if not 0 <= bound <= 1:
        raise BoundError(f"bound outside [0, 1]: {bound}")
    return bound


class SourceDescriptor:
    """⟨φ, v, c, s⟩: view definition, extension, completeness and soundness bounds.

    >>> from repro.queries import identity_view
    >>> from repro.model import fact
    >>> s1 = SourceDescriptor(identity_view("V1", "R", 1),
    ...                       [fact("V1", "a"), fact("V1", "b")], 0.5, 0.5)
    >>> s1.min_sound_count()
    1
    """

    __slots__ = ("view", "extension", "completeness_bound", "soundness_bound", "name")

    def __init__(
        self,
        view: ConjunctiveQuery,
        extension: Iterable[Atom],
        completeness_bound: BoundLike,
        soundness_bound: BoundLike,
        name: str = None,
    ):
        self.view = view
        self.extension: FrozenSet[Atom] = frozenset(extension)
        self.completeness_bound = as_bound(completeness_bound)
        self.soundness_bound = as_bound(soundness_bound)
        self.name = name if name is not None else view.head_relation()
        self._validate()

    def _validate(self) -> None:
        head = self.view.head
        for f in self.extension:
            if not f.is_ground():
                raise SourceError(f"view extension must contain facts, got {f}")
            if f.relation != head.relation:
                raise SourceError(
                    f"extension fact {f} is not over the view's local relation "
                    f"{head.relation}"
                )
            if f.arity != head.arity:
                raise ArityError(
                    f"extension fact {f} has arity {f.arity}, view head has "
                    f"{head.arity}"
                )

    # -- derived quantities ---------------------------------------------------

    def size(self) -> int:
        """``k_i = |v_i]``: the extension's cardinality."""
        return len(self.extension)

    def min_sound_count(self) -> int:
        """``⌈s_i · |v_i|⌉``: the least number of extension facts that must be
        correct in any possible database (inequality (3) of Section 4)."""
        return ceil(self.soundness_bound * self.size())

    def max_intended_size(self, sound_count: int) -> int:
        """``m_i = ⌊t_i / c_i⌋``: the largest |φ_i(D)| allowed when
        *sound_count* extension facts are correct (inequality (4)).

        With ``c_i = 0`` the completeness constraint is vacuous; we signal
        that with ``None`` (no bound).
        """
        if self.completeness_bound == 0:
            return None
        return int(Fraction(sound_count) / self.completeness_bound)

    # -- measures against a concrete database ----------------------------------

    def intended_content(self, database: GlobalDatabase) -> FrozenSet[Atom]:
        """``φ(D)``: what the source *should* contain for database D."""
        return self.view.apply(database)

    def completeness(self, database: GlobalDatabase) -> Fraction:
        """``c_D(S)`` (Definition 2.1)."""
        return measures.completeness(self.view, self.extension, database)

    def soundness(self, database: GlobalDatabase) -> Fraction:
        """``s_D(S)`` (Definition 2.2)."""
        return measures.soundness(self.view, self.extension, database)

    def satisfied_by(self, database: GlobalDatabase) -> bool:
        """Does *database* honour both declared bounds? (Section 3's constraint)"""
        return (
            self.completeness(database) >= self.completeness_bound
            and self.soundness(database) >= self.soundness_bound
        )

    def is_identity(self) -> bool:
        """True when the view is an identity view (Corollary 3.4 setting)."""
        return self.view.is_identity()

    # -- misc -----------------------------------------------------------------

    def with_bounds(
        self, completeness_bound: BoundLike = None, soundness_bound: BoundLike = None
    ) -> "SourceDescriptor":
        """A copy with one or both bounds replaced."""
        return SourceDescriptor(
            self.view,
            self.extension,
            completeness_bound if completeness_bound is not None else self.completeness_bound,
            soundness_bound if soundness_bound is not None else self.soundness_bound,
            self.name,
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceDescriptor)
            and self.view == other.view
            and self.extension == other.extension
            and self.completeness_bound == other.completeness_bound
            and self.soundness_bound == other.soundness_bound
        )

    def __hash__(self) -> int:
        return hash(
            (self.view, self.extension, self.completeness_bound, self.soundness_bound)
        )

    def __repr__(self) -> str:
        return (
            f"SourceDescriptor({self.name!r}, |v|={self.size()}, "
            f"c>={self.completeness_bound}, s>={self.soundness_bound})"
        )
