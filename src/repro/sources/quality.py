"""Estimating soundness/completeness bounds (Section 2.2 discussion).

The paper observes that in practice (c, s) are *estimated*: accounting
systems audit samples of records at a desired confidence level, and in the
climatology example the exact size of the complete database is computable
(number of stations × number of months) because a functional dependency with
known finite determining domains fixes |φ(D)| a priori.

This module provides those two estimation routes:

* :func:`estimate_soundness` — audit a random sample of the extension with a
  correctness oracle and return a one-sided lower confidence bound (exact
  Clopper–Pearson via the Beta distribution).
* :func:`completeness_from_fd` / :func:`intended_size_from_fd` — derive the
  intended-content size from a functional dependency A_1..A_l → A_{l+1}..A_k
  with known determining-attribute domains, giving a *deterministic*
  completeness lower bound |v ∩ sound| / |φ(D)|.
* :func:`required_sample_size` — the classical sample-size calculation the
  auditing methodology uses.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from typing import Callable, Iterable, Optional, Sequence

from scipy import stats

from repro.exceptions import SourceError
from repro.model.atoms import Atom


def clopper_pearson_lower(successes: int, trials: int, confidence: float) -> float:
    """Exact one-sided lower confidence bound for a binomial proportion.

    ``P(p >= bound) >= confidence`` for the true proportion p given
    *successes* out of *trials*. Returns 0.0 when successes == 0.
    """
    if trials <= 0:
        raise SourceError("sample size must be positive")
    if not 0 <= successes <= trials:
        raise SourceError(f"successes {successes} outside [0, {trials}]")
    if not 0 < confidence < 1:
        raise SourceError(f"confidence must be in (0, 1): {confidence}")
    if successes == 0:
        return 0.0
    alpha = 1.0 - confidence
    return float(stats.beta.ppf(alpha, successes, trials - successes + 1))


def estimate_soundness(
    extension: Iterable[Atom],
    oracle: Callable[[Atom], bool],
    sample_size: int,
    confidence: float = 0.95,
    rng: Optional[random.Random] = None,
) -> float:
    """Audit-sample soundness estimation.

    Draws *sample_size* facts (without replacement when possible) from the
    extension, asks the *oracle* whether each is correct, and returns the
    Clopper–Pearson lower confidence bound on the soundness — a defensible
    value for the descriptor's ``s`` parameter.
    """
    facts = sorted(extension)
    if not facts:
        return 1.0  # an empty source is vacuously sound
    rng = rng if rng is not None else random.Random()
    if sample_size >= len(facts):
        sample = facts
    else:
        sample = rng.sample(facts, sample_size)
    correct = sum(1 for f in sample if oracle(f))
    return clopper_pearson_lower(correct, len(sample), confidence)


def required_sample_size(confidence: float, margin: float, p_guess: float = 0.5) -> int:
    """Normal-approximation sample size for estimating a proportion.

    ``n = z² p(1-p) / margin²`` — the standard auditing formula (Kaplan &
    Krishnan's methodology referenced by the paper infers sample sizes from
    the desired confidence in this way).
    """
    if not 0 < confidence < 1:
        raise SourceError(f"confidence must be in (0, 1): {confidence}")
    if not 0 < margin < 1:
        raise SourceError(f"margin must be in (0, 1): {margin}")
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    return max(1, math.ceil(z * z * p_guess * (1.0 - p_guess) / (margin * margin)))


def intended_size_from_fd(determining_domain_sizes: Sequence[int]) -> int:
    """|φ(D)| under a functional dependency with known determining domains.

    For ``R(A_1..A_k)`` with FD ``A_1..A_l → A_{l+1}..A_k`` and finite
    domains for the determining attributes, the complete relation has exactly
    ``∏ |dom(A_j)|`` tuples (the climatology case: stations × months).
    """
    if any(d < 0 for d in determining_domain_sizes):
        raise SourceError("domain sizes must be non-negative")
    size = 1
    for d in determining_domain_sizes:
        size *= d
    return size


def completeness_from_fd(
    sound_fact_count: int, determining_domain_sizes: Sequence[int]
) -> Fraction:
    """A deterministic completeness lower bound from the FD argument.

    *sound_fact_count* correct facts out of an intended content of exactly
    ``∏ |dom(A_j)|`` tuples give completeness ``≥ sound_fact_count / |φ(D)|``.
    """
    total = intended_size_from_fd(determining_domain_sizes)
    if total == 0:
        return Fraction(1)
    if sound_fact_count < 0:
        raise SourceError("sound fact count must be non-negative")
    return min(Fraction(1), Fraction(sound_fact_count, total))


def estimate_completeness(
    extension_size: int,
    intended_size: int,
    estimated_soundness: float,
) -> float:
    """Completeness estimate when |φ(D)| is known and soundness estimated.

    ``c ≈ s·|v| / |φ(D)|``: only the sound fraction of the extension counts
    toward coverage of the intended content.
    """
    if intended_size <= 0:
        return 1.0
    if extension_size < 0:
        raise SourceError("extension size must be non-negative")
    if not 0 <= estimated_soundness <= 1:
        raise SourceError(f"soundness outside [0, 1]: {estimated_soundness}")
    return min(1.0, estimated_soundness * extension_size / intended_size)
