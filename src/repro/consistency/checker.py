"""The CONSISTENCY decision procedure for general view definitions (§3).

Strategy (exponential by necessity — Theorem 3.2 proves NP-completeness):

1. **Identity fast path** — when every view is an identity over one global
   relation, delegate to the signature-block dynamic program.
2. **Canonical freeze** — for each allowable sound-subset combination U
   (Theorem 4.1's 𝒰), build the tableau T^U(S), freeze its variables to
   distinct fresh constants, and test the resulting database against the
   poss(S) predicate. Any hit is a genuine witness.
3. **Quotient search** — when freezing misses, enumerate homomorphic images
   of T^U(S): valuations of its variables over the constant pool (extension
   and view constants plus canonically-ordered fresh constants). Lemma 3.1's
   proof shows a consistent collection always has a witness of this shape,
   so exhausting the quotients of every U is a *complete* decision
   procedure.

Views whose bodies mention built-in predicates are rejected here (freezing
cannot invent constants satisfying arithmetic constraints); decide those
over an explicit finite domain with
:func:`repro.confidence.worlds.is_consistent_over`.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, List, Optional, Sequence, Set

from repro.exceptions import SourceError
from repro.model.database import GlobalDatabase
from repro.model.terms import Constant, FreshConstantFactory, Variable
from repro.model.valuation import Valuation
from repro.sources.collection import SourceCollection
from repro.tableaux.construction import allowable_combinations, template_for_combination
from repro.tableaux.tableau import Tableau
from repro.consistency.identity import check_identity
from repro.consistency.result import ConsistencyResult

#: Default cap on quotient valuations examined per combination.
DEFAULT_MAX_QUOTIENTS = 200_000
#: Default cap on allowable combinations examined.
DEFAULT_MAX_COMBINATIONS = 100_000


def _reject_builtins(collection: SourceCollection) -> None:
    for source in collection:
        if source.view.builtin_body():
            raise SourceError(
                f"view of source {source.name} uses built-ins; decide "
                "consistency over an explicit finite domain instead "
                "(repro.confidence.worlds.is_consistent_over)"
            )


def quotient_valuations(
    variables: Sequence[Variable], constants: Sequence[Constant]
) -> Iterator[Valuation]:
    """All valuations of *variables* over *constants* plus fresh constants,
    canonical up to renaming of the fresh part.

    Fresh constants are introduced in restricted-growth order (a variable may
    map to fresh constant #j only if #0..#j−1 are already used), so each
    identification pattern is enumerated exactly once.
    """
    variables = sorted(variables)
    factory = FreshConstantFactory(taken=constants, prefix="_q")
    fresh_pool: List[Constant] = [factory.fresh() for _ in range(len(variables))]

    def extend(index: int, images: List[Constant], used_fresh: int) -> Iterator[Valuation]:
        if index == len(variables):
            yield Valuation(dict(zip(variables, images)))
            return
        for c in constants:
            yield from extend(index + 1, images + [c], used_fresh)
        for j in range(used_fresh + 1):
            if j < len(fresh_pool):
                yield from extend(
                    index + 1, images + [fresh_pool[j]], max(used_fresh, j + 1)
                )

    yield from extend(0, [], 0)


def check_consistency(
    collection: SourceCollection,
    max_quotients: int = DEFAULT_MAX_QUOTIENTS,
    max_combinations: int = DEFAULT_MAX_COMBINATIONS,
) -> ConsistencyResult:
    """Decide whether ``poss(S) ≠ ∅``, producing a witness when consistent.

    A negative result with ``decisive=False`` means a resource cap was hit
    before the search space was exhausted; raise the caps to settle it.

    The generic search runs over the interned representation
    (:mod:`repro.consistency.coresearch`); it visits combinations and
    quotient valuations in the same order as the preserved boxed baseline
    :func:`check_consistency_boxed`, so verdicts, witnesses, counters and
    truncation points are identical.
    """
    if not collection.sources:
        return ConsistencyResult(
            consistent=True, witness=GlobalDatabase(), method="empty-collection"
        )
    if collection.identity_relation() is not None:
        return check_identity(collection)
    _reject_builtins(collection)

    from repro.consistency.coresearch import core_check_consistency

    return core_check_consistency(collection, max_quotients, max_combinations)


def check_consistency_boxed(
    collection: SourceCollection,
    max_quotients: int = DEFAULT_MAX_QUOTIENTS,
    max_combinations: int = DEFAULT_MAX_COMBINATIONS,
) -> ConsistencyResult:
    """The pre-interning object-level search, kept for benchmarks and
    differential tests (``tests/core/``, ``benchmarks/bench_e17_core.py``).

    Semantically identical to :func:`check_consistency`; every candidate
    database here is a frozenset of boxed atoms and every ``poss(S)`` test
    evaluates views over :class:`~repro.model.atoms.Atom` objects.
    """
    if not collection.sources:
        return ConsistencyResult(
            consistent=True, witness=GlobalDatabase(), method="empty-collection"
        )
    if collection.identity_relation() is not None:
        return check_identity(collection)
    _reject_builtins(collection)

    base_constants = sorted(collection.all_constants())
    combinations_tried = 0
    truncated = False

    # Pass 1: canonical freeze of every combination (cheap, often decisive).
    frozen_attempts: List[Tableau] = []
    for combination in allowable_combinations(collection):
        combinations_tried += 1
        if combinations_tried > max_combinations:
            truncated = True
            break
        template = template_for_combination(collection, combination)
        tableau = template.tableaux[0]
        frozen, _ = tableau.freeze(base_constants)
        witness = GlobalDatabase(frozen.atoms)
        if collection.admits(witness):
            return ConsistencyResult(
                consistent=True,
                witness=witness,
                method="canonical-freeze",
                combinations_tried=combinations_tried,
            )
        frozen_attempts.append(tableau)

    # Pass 2: complete quotient search over each combination's tableau.
    quotients_tried = 0
    for tableau in frozen_attempts:
        for valuation in quotient_valuations(
            sorted(tableau.variables()), base_constants
        ):
            quotients_tried += 1
            if quotients_tried > max_quotients:
                truncated = True
                break
            witness = GlobalDatabase(tableau.substitute(valuation).atoms)
            if collection.admits(witness):
                return ConsistencyResult(
                    consistent=True,
                    witness=witness,
                    method="quotient-search",
                    combinations_tried=combinations_tried,
                )
        if truncated:
            break

    return ConsistencyResult(
        consistent=False,
        decisive=not truncated,
        method="exhausted" if not truncated else "truncated",
        combinations_tried=combinations_tried,
    )


def is_consistent(collection: SourceCollection) -> bool:
    """Convenience wrapper; raises on an indecisive (truncated) negative."""
    result = check_consistency(collection)
    if not result.consistent and not result.decisive:
        raise SourceError(
            "consistency search truncated by resource caps; call "
            "check_consistency with higher limits"
        )
    return result.consistent
