"""Lemma 3.1 search-space bounds and the canonical constant pool dom_0.

Lemma 3.1: if poss(S) ≠ ∅ there is a possible database with at most
``m·p`` facts, where ``m = max_i |body(φ_i)|`` and ``p = Σ_i |v_i|``; such a
database involves at most ``m·p·k`` constants (k the maximum arity). The
NP membership argument of Theorem 3.2 fixes a constant pool dom_0 of that
size, containing every constant from the view extensions.
"""

from __future__ import annotations

from typing import List, Set

from repro.model.terms import Constant, FreshConstantFactory
from repro.sources.collection import SourceCollection


def size_bound(collection: SourceCollection) -> int:
    """``max_i |body(φ_i)| · Σ_i |v_i|`` — the Lemma 3.1 fact-count bound."""
    return collection.lemma31_size_bound()


def constant_bound(collection: SourceCollection) -> int:
    """``m·p·k`` — enough constants for a bounded witness (Theorem 3.2 i)."""
    return collection.lemma31_constant_bound()


def canonical_domain(collection: SourceCollection, extra: int = None) -> List[Constant]:
    """The pool dom_0: all extension/view constants plus fresh ones.

    *extra* overrides the number of fresh constants added (defaults to
    filling dom_0 up to the ``m·p·k`` bound, but never fewer than one fresh
    constant per view variable — the quotient search needs that many at most).
    """
    known: Set[Constant] = collection.all_constants()
    if extra is None:
        variables = set()
        for source in collection:
            variables |= source.view.variables()
        extra = max(constant_bound(collection) - len(known), len(variables))
    factory = FreshConstantFactory(taken=known, prefix="_d")
    fresh = [factory.fresh() for _ in range(max(0, extra))]
    return sorted(known) + fresh


def verify_witness(collection: SourceCollection, witness) -> bool:
    """Check a claimed witness: in poss(S) *and* within the size bound."""
    return collection.admits(witness) and len(witness) <= size_bound(collection)
