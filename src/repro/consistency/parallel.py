"""Parallel consistency checking over independent source groups.

Two sources *interact* only through the global relations their view bodies
mention: a database assigns each relation its extension independently, so a
collection splits into connected components of the "shares a body relation"
graph, and ``poss(S)`` is the product of the components' possible-world
sets. Consequently S is consistent iff every component is, and a witness
for S is the union of per-component witnesses.

Each component's decision is an independent task — the same shape as the
confidence engine's counting tasks — so this module reuses the engine's
executors (:mod:`repro.confidence.engine.executors`) to run the component
checks across worker processes. The merge is deterministic: components are
ordered by their smallest source name, results are combined in that order.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.model.database import GlobalDatabase
from repro.sources.collection import SourceCollection
from repro.confidence.engine.executors import make_executor
from repro.consistency.checker import check_consistency
from repro.consistency.result import ConsistencyResult


def independent_groups(collection: SourceCollection) -> List[SourceCollection]:
    """Split a collection into relation-disjoint source groups.

    Connected components of the graph joining sources whose view bodies
    share a global relation; ordered by smallest source name so the split
    (and everything downstream) is deterministic.
    """
    sources = list(collection)
    parent = list(range(len(sources)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    # Union-find keyed by interned relation IDs: one dict probe per body
    # atom on ints instead of strings (relation names intern once, up
    # front, in the process-wide symbol table).
    from repro.core.symbols import global_table

    intern_relation = global_table().relation
    by_relation: Dict[int, int] = {}
    for index, source in enumerate(sources):
        for atom in source.view.relational_body():
            rid = intern_relation(atom.relation)
            if rid in by_relation:
                union(index, by_relation[rid])
            else:
                by_relation[rid] = index

    components: Dict[int, List[int]] = {}
    for index in range(len(sources)):
        components.setdefault(find(index), []).append(index)
    groups = [
        SourceCollection([sources[i] for i in members])
        for members in components.values()
    ]
    groups.sort(key=lambda g: min(s.name for s in g))
    return groups


def _check_group(group: SourceCollection) -> ConsistencyResult:
    """Worker body: decide one independent group (picklable, top level)."""
    return check_consistency(group)


def check_consistency_parallel(
    collection: SourceCollection,
    workers: int = 0,
    executor=None,
) -> ConsistencyResult:
    """Decide CONSISTENCY by checking independent source groups in parallel.

    Semantics match :func:`~repro.consistency.checker.check_consistency`:
    consistent iff every group is, with the union of group witnesses; the
    first (in group order) inconsistent group decides a negative verdict,
    and its decisiveness carries over. With one group (or no parallelism
    requested) this is plain ``check_consistency``.
    """
    groups = independent_groups(collection)
    if len(groups) <= 1:
        return check_consistency(collection)

    own_executor = executor is None
    executor = executor if executor is not None else make_executor(workers)
    try:
        results = executor.map(_check_group, groups)
    finally:
        if own_executor:
            executor.close()

    combinations = sum(r.combinations_tried for r in results)
    method = f"independent-groups[{len(groups)}]"
    witness: Optional[GlobalDatabase] = GlobalDatabase()
    for result in results:
        if not result.consistent:
            return ConsistencyResult(
                consistent=False,
                decisive=result.decisive,
                method=f"{method}:{result.method}",
                combinations_tried=combinations,
            )
        witness = witness.union(result.witness)
    return ConsistencyResult(
        consistent=True,
        witness=witness,
        decisive=True,
        method=method,
        combinations_tried=combinations,
    )
