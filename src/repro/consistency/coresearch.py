"""The interned CONSISTENCY search (§3/§4 over term IDs).

This is the hot half of :mod:`repro.consistency.checker`: the same
freeze-then-quotient decision procedure, but every candidate database is a
grouped map of relation ID → argument-ID tuples and every ``poss(S)`` test
is an integer join
(:meth:`repro.core.views.CoreCollection.admits_grouped`). Candidates are
ground directly into that shape (:func:`repro.tableaux.core.ground_atoms_grouped`),
so the enumeration path never constructs a model object and never interns a
transient fact into the process-wide table (enforced by
``tools/check_no_boxed_hotpath.py``).

Fidelity to the boxed search is exact:

* fresh constants reuse the boxed factories (prefixes ``_frz`` / ``_q``
  against the same taken sets), so witnesses are equal as fact sets;
* combinations and quotient valuations are visited in the boxed order, so
  resource-cap truncation points and reported counters are identical.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.adapters import database_of_grouped
from repro.core.symbols import global_table
from repro.model.database import GlobalDatabase
from repro.model.terms import FreshConstantFactory
from repro.tableaux.construction import allowable_combinations, template_for_combination
from repro.tableaux.core import ground_atoms_grouped, quotient_valuations_ids
from repro.consistency.result import ConsistencyResult


def core_check_consistency(
    collection,
    max_quotients: int,
    max_combinations: int,
) -> ConsistencyResult:
    """The generic (non-identity, builtin-free) search, over interned IDs.

    Mirrors passes 1 and 2 of the boxed
    :func:`repro.consistency.checker.check_consistency_boxed` exactly — same
    visit order, same counters, same truncation semantics — with every
    candidate ``poss(S)`` membership test running on integer argument
    tuples.
    """
    table = global_table()
    core_collection = collection.core()
    intern_relation = table.relation
    intern_constant = table.constant
    base_constants = sorted(collection.all_constants())
    base_cids: Tuple[int, ...] = tuple(
        intern_constant(c.value) for c in base_constants
    )
    combinations_tried = 0
    truncated = False

    # Pass 1: canonical freeze of every combination (cheap, often decisive).
    frozen_attempts: List = []
    for combination in allowable_combinations(collection):
        combinations_tried += 1
        if combinations_tried > max_combinations:
            truncated = True
            break
        template = template_for_combination(collection, combination)
        tableau = template.tableaux[0]
        frozen, _ = tableau.freeze(base_constants)
        grouped: Dict[int, Set[Tuple[int, ...]]] = {}
        for f in frozen.atoms:
            args = tuple(intern_constant(a.value) for a in f.args)
            grouped.setdefault(intern_relation(f.relation), set()).add(args)
        if core_collection.admits_grouped(grouped):
            return ConsistencyResult(
                consistent=True,
                witness=GlobalDatabase(frozen.atoms),
                method="canonical-freeze",
                combinations_tried=combinations_tried,
            )
        frozen_attempts.append(tableau)

    # Pass 2: complete quotient search over each combination's tableau.
    quotients_tried = 0
    for tableau in frozen_attempts:
        variables = sorted(tableau.variables())
        vids: Tuple[int, ...] = tuple(table.variable(v.name) for v in variables)
        factory = FreshConstantFactory(taken=base_constants, prefix="_q")
        fresh_pool: Tuple[int, ...] = tuple(
            intern_constant(factory.fresh().value) for _ in range(len(variables))
        )
        pattern = tableau.core()
        for valuation in quotient_valuations_ids(vids, base_cids, fresh_pool):
            quotients_tried += 1
            if quotients_tried > max_quotients:
                truncated = True
                break
            candidate = ground_atoms_grouped(pattern, valuation)
            if core_collection.admits_grouped(candidate):
                return ConsistencyResult(
                    consistent=True,
                    witness=database_of_grouped(table, candidate),
                    method="quotient-search",
                    combinations_tried=combinations_tried,
                )
        if truncated:
            break

    return ConsistencyResult(
        consistent=False,
        decisive=not truncated,
        method="exhausted" if not truncated else "truncated",
        combinations_tried=combinations_tried,
    )
