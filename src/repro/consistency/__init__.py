"""CONSISTENCY of source collections (Section 3)."""

from repro.consistency.bounds import (
    canonical_domain,
    constant_bound,
    size_bound,
    verify_witness,
)
from repro.consistency.checker import (
    check_consistency,
    is_consistent,
    quotient_valuations,
)
from repro.consistency.identity import check_identity
from repro.consistency.parallel import (
    check_consistency_parallel,
    independent_groups,
)
from repro.consistency.result import ConsistencyResult

__all__ = [
    "ConsistencyResult",
    "check_consistency",
    "check_consistency_parallel",
    "check_identity",
    "independent_groups",
    "is_consistent",
    "quotient_valuations",
    "size_bound",
    "constant_bound",
    "canonical_domain",
    "verify_witness",
]
