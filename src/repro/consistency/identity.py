"""Consistency for identity-view collections (Corollary 3.4 setting).

When every view is the identity over one global relation R, a fact outside
every view extension can only inflate |D(R)| — hurting every completeness
ratio while helping nothing — so poss(S) is non-empty iff it contains a
subset of ∪v_i. Facts with the same membership signature are
interchangeable, so a dynamic program over signature blocks whose state is
(per-source sound counts, total size) decides consistency in time polynomial
in the extension sizes for a fixed number of sources (the problem stays
NP-complete in general: the number of signatures can grow with n).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SourceError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.sources.collection import SourceCollection
from repro.confidence.blocks import IdentityInstance
from repro.consistency.result import ConsistencyResult

State = Tuple[Tuple[int, ...], int]


def check_identity(
    collection: SourceCollection, clamp: bool = True
) -> ConsistencyResult:
    """Decide CONSISTENCY for an identity-view collection, with witness.

    *clamp* enables the state-space reduction (total-size pruning and
    sound-count saturation); disabling it is only useful for the E10
    ablation benchmark — the verdict is identical either way.

    Raises :class:`~repro.exceptions.SourceError` when the collection is not
    of the identity form; use the general checker instead.
    """
    if collection.identity_relation() is None:
        raise SourceError("check_identity requires identity views over one relation")

    # Domain = constants actually appearing in extensions (restriction is
    # complete: see module docstring). An empty-extension collection needs a
    # nonempty domain only if some soundness bound forces facts — it cannot,
    # because min_sound <= |v_i| = 0 — so the empty database suffices there.
    instance = IdentityInstance(collection, sorted(collection.extension_constants()))

    n = instance.n_sources
    covered = sum(block.size for block in instance.blocks)

    # State-space reduction (exactness preserved for the *decision*):
    # 1. any database larger than total_max violates some completeness bound
    #    even with every claimed fact correct, so prune on total;
    # 2. sound counts saturate: once t_i covers both its soundness floor and
    #    c_i·total_max, larger values change no feasibility outcome — clamp.
    from math import ceil, floor

    total_max = covered
    for i in range(n):
        c = instance.completeness_bounds[i]
        if c > 0:
            k_i = instance.extension_sizes[i]
            total_max = min(total_max, floor(Fraction(k_i) / c))
    if clamp:
        saturation = tuple(
            max(
                instance.min_sound[i],
                ceil(instance.completeness_bounds[i] * total_max),
            )
            for i in range(n)
        )
    else:
        total_max = covered
        saturation = tuple(
            instance.extension_sizes[i] for i in range(n)
        )

    start: State = ((0,) * n, 0)
    # parents[state] = (previous_state, block_index, chosen_count)
    parents: Dict[State, Optional[Tuple[State, int, int]]] = {start: None}
    layer: Dict[State, None] = {start: None}
    for j, block in enumerate(instance.blocks):
        next_layer: Dict[State, None] = {}
        for (sound, total) in layer:
            for chosen in range(block.size + 1):
                new_total = total + chosen
                if new_total > total_max:
                    break
                new_sound = tuple(
                    min(
                        sound[i] + (chosen if i in block.signature else 0),
                        saturation[i],
                    )
                    for i in range(n)
                )
                state = (new_sound, new_total)
                if state not in parents:
                    parents[state] = ((sound, total), j, chosen)
                next_layer[state] = None
        layer = next_layer

    feasible = [
        state
        for state in layer
        if instance.state_is_final_feasible(state[0], state[1])
    ]
    if not feasible:
        return ConsistencyResult(
            consistent=False, decisive=True, method="identity-dp",
            combinations_tried=len(parents),
        )

    # Prefer the smallest witness.
    target = min(feasible, key=lambda s: s[1])
    counts: List[int] = [0] * len(instance.blocks)
    state = target
    while parents[state] is not None:
        previous, block_index, chosen = parents[state]
        counts[block_index] += chosen
        state = previous
    facts: List[Atom] = []
    for block, count in zip(instance.blocks, counts):
        facts.extend(block.facts[:count])
    witness = GlobalDatabase(facts)
    return ConsistencyResult(
        consistent=True, witness=witness, decisive=True,
        method="identity-dp", combinations_tried=len(parents),
    )
