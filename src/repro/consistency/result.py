"""Result object returned by the consistency deciders."""

from __future__ import annotations

from typing import Optional

from repro.model.database import GlobalDatabase


class ConsistencyResult:
    """Outcome of a CONSISTENCY decision.

    Attributes
    ----------
    consistent:
        Whether a possible database was found (``poss(S) ≠ ∅``).
    witness:
        A member of poss(S) when one was found, else ``None``. The witness
        always satisfies Lemma 3.1's size bound.
    decisive:
        ``True`` when the verdict is definitive. A negative verdict from a
        truncated search (resource limits hit) sets this to ``False``.
    method:
        Which strategy produced the verdict (``"identity-dp"``,
        ``"canonical-freeze"``, ``"quotient-search"``, ``"exhausted"``).
    combinations_tried:
        Number of allowable sound-subset combinations examined.
    """

    __slots__ = ("consistent", "witness", "decisive", "method", "combinations_tried")

    def __init__(
        self,
        consistent: bool,
        witness: Optional[GlobalDatabase] = None,
        decisive: bool = True,
        method: str = "",
        combinations_tried: int = 0,
    ):
        self.consistent = consistent
        self.witness = witness
        self.decisive = decisive
        self.method = method
        self.combinations_tried = combinations_tried

    def __bool__(self) -> bool:
        return self.consistent

    def __repr__(self) -> str:
        return (
            f"ConsistencyResult(consistent={self.consistent}, "
            f"decisive={self.decisive}, method={self.method!r}, "
            f"combinations_tried={self.combinations_tried})"
        )
